"""SUSS reproduction: Speeding Up TCP Slow-Start (SIGCOMM 2024).

A discrete-event TCP simulation library reproducing the paper's system:
the SUSS slow-start accelerator (:mod:`repro.core`) integrated into CUBIC,
the network and TCP substrates it needs (:mod:`repro.net`,
:mod:`repro.tcp`, :mod:`repro.cc`), and the experiment harnesses that
regenerate every table and figure of the paper's evaluation
(:mod:`repro.experiments`).

Quickstart::

    from repro.sim import Simulator
    from repro.net import build_path, bdp_bytes
    from repro.tcp import open_transfer

    sim = Simulator()
    net = build_path(sim, bottleneck_rate=12_500_000, rtt=0.1,
                     buffer_bytes=bdp_bytes(12_500_000, 0.1))
    xfer = open_transfer(sim, net.servers[0], net.clients[0], flow_id=1,
                         size_bytes=2_000_000, cc="cubic+suss")
    sim.run(until=30.0)
    print(xfer.fct)
"""

__version__ = "1.0.0"

# Importing the subpackages registers all congestion-control algorithms.
from repro import cc as _cc  # noqa: F401
from repro import core as _core  # noqa: F401

__all__ = ["__version__"]
