"""Seeded random-number streams for reproducible experiments.

Every stochastic component (netem jitter, random loss, bandwidth variation,
flow start times) draws from its own named stream so that adding randomness
to one component never perturbs another.  Streams are derived from a master
seed with stable hashing, so ``RngRegistry(seed=7).stream("loss")`` produces
the same sequence on every platform and run.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a master seed and stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache for named, independently seeded RNG streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the RNG stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    def reseed(self, seed: int) -> None:
        """Reset the registry to a new master seed, discarding all streams."""
        self.seed = seed
        self._streams.clear()
