"""Generator-based simulation processes.

Event callbacks are ideal for protocol machinery, but experiment scripts
often read better as sequential processes ("wait 2 s, start a flow, wait
for it, start the next").  :func:`spawn` runs a generator as such a
process: the generator yields either a delay in seconds (float/int) or
another :class:`Process` to join.

Example::

    def scenario(sim):
        yield 2.0                      # sleep 2 simulated seconds
        child = spawn(sim, worker(sim))
        yield child                    # join the child process
        print("done at", sim.now)

    spawn(sim, scenario(sim))
    sim.run()
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Union

from repro.sim.engine import Simulator

Yieldable = Union[float, int, "Process"]


class Process:
    """Handle for a spawned generator process."""

    def __init__(self, sim: Simulator,
                 generator: Generator[Yieldable, Any, Any]) -> None:
        self.sim = sim
        self.generator = generator
        self.finished = False
        self.result: Any = None
        self._waiters: List["Process"] = []

    # ------------------------------------------------------------------
    def _step(self, value: Any = None) -> None:
        try:
            yielded = self.generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        if isinstance(yielded, Process):
            if yielded.finished:
                self.sim.schedule(0.0, self._step, yielded.result)
            else:
                yielded._waiters.append(self)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise ValueError("cannot sleep a negative duration")
            self.sim.schedule(float(yielded), self._step, None)
        else:
            raise TypeError(
                f"process yielded {yielded!r}; expected a delay or Process")

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        for waiter in self._waiters:
            self.sim.schedule(0.0, waiter._step, result)
        self._waiters.clear()


def spawn(sim: Simulator,
          generator: Generator[Yieldable, Any, Any]) -> Process:
    """Start ``generator`` as a process at the current simulation time."""
    process = Process(sim, generator)
    sim.schedule(0.0, process._step, None)
    return process
