"""Array-backed fast engine backend.

:class:`FastSimulator` is a drop-in backend for
:class:`repro.sim.engine.Simulator` that produces the *bit-for-bit* same
event stream — same firing order, same eids, same provenance, same
sanitizer semantics, same error messages — while spending roughly a third
of the classic engine's time per event.  ``tests/test_engine_equivalence.py``
is the proof: golden-trace digests (which include eids) are byte-identical
across backends for a seed × scenario × CC matrix.

Where the time goes (and why this layout)
-----------------------------------------
The classic engine pays, per event: one ``EventHandle`` object
construction, one ``(when, eid, handle)`` tuple, one ``itertools.count``
call, several ``self``-attribute stores (clock, counters, provenance) and
bound-method dispatch for ``schedule``.  Measured on the benchmark
workload that is ~790 ns/event.  This backend removes each of those
costs:

* **Plain-list event records** ``[when, eid, status, callback, args,
  parent_eid, origin_eid]`` serve as both the heap entry and the handle
  returned to callers.  ``heapq`` compares lists in C: ``when`` first,
  then the unique monotonic ``eid`` — exactly the classic FIFO
  tie-break — and never reaches the non-comparable elements.  A list
  subclass with ``cancel()``/``pending`` methods was measured ~2× slower
  per event than plain lists (generic ``type.__call__`` construction),
  which is why cancellation lives on the simulator
  (:meth:`cancel_event` / :meth:`event_pending`) instead of the handle.
* **Closure core.** The hot methods (``schedule``, ``schedule_at``,
  ``run``, …) are built by :meth:`_install` as closures over shared
  nonlocal cells (clock, eid source, provenance pair).  Cell access
  compiles to ``LOAD_DEREF``/``STORE_DEREF`` — faster than ``self``
  attribute access — and assigning the closures as *instance*
  attributes skips bound-method creation on every call.
* **Single-slot fast path.** The common schedule-one-fire-one pattern
  (link serialisation, RTO re-arm) never touches the heap: one record
  is parked in a ``slot`` cell; the pop side compares ``heap[0] <
  slot`` (a C list comparison, FIFO-safe because eids are unique) to
  pick the true minimum.
* **Derived counters.** ``pending_events`` / ``events_processed`` are
  derived from the eid high-water mark, heap length, and two
  cancellation counters, so the per-event loop maintains *no* counters
  at all.  Both remain O(1) reads.
* **Specialised loops.** ``run()`` with no sanitizer, no profiler and no
  ``max_events`` uses a minimal dispatch loop; any instrumented run
  falls back to a generic loop with the classic engine's exact check
  ordering.  Setting :attr:`sanitizer` or :attr:`obs` re-installs the
  closures so the specialisation stays correct.

An explicit preallocated free-list for event records was evaluated and
rejected: records double as caller-visible handles, so recycling a fired
record while a caller still holds it would alias two events onto one
handle (`event_pending` would lie).  CPython's small-list free-list
already makes the allocation ~40 ns; correctness wins.

Record status values: ``0`` pending, ``1`` fired, ``2`` cancelled.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List, Optional

from repro.analysis.sanitize import SimSanitizer
from repro.core.units import Seconds
from repro.obs.runtime import add_engine_events
from repro.obs.tracer import Observability

from repro.sim.engine import (
    _FROM_ENV,
    SimulationError,
    Simulator,
    _resolve_obs,
    _resolve_sanitizer,
)

#: Event record layout (plain list, also the caller-visible handle):
#: ``[when, eid, status, callback, args, parent_eid, origin_eid]``.
REC_WHEN, REC_EID, REC_STATUS, REC_CALLBACK, REC_ARGS, REC_PARENT, REC_ORIGIN = range(7)


def _raise_bad_delay(delay: Any) -> None:
    """Raise the classic engine's exact error for a NaN/negative delay."""
    if delay != delay:
        raise SimulationError(
            f"invalid delay {delay!r}: NaN is not a schedulable delay")
    raise SimulationError(f"cannot schedule into the past (delay={delay})")


def _raise_bad_when(when: Any, now: float) -> None:
    """Raise the classic engine's exact error for a NaN/past target time."""
    if when != when:
        raise SimulationError(
            f"invalid target time {when!r}: NaN is not a schedulable time")
    raise SimulationError(
        f"cannot schedule into the past (when={when}, now={now})"
    )


def _counting_run(run: Callable[..., None],
                  get_processed: Callable[[], int]) -> Callable[..., None]:
    """Wrap a specialised ``run`` closure with run-telemetry accounting.

    The delta of the derived processed counter is added to the process
    counters once per ``run()`` call — the closure hot loop itself stays
    untouched, mirroring the classic engine's end-of-run add.
    """
    def counted_run(until: Optional[Seconds] = None,
                    max_events: Optional[int] = None) -> None:
        before = get_processed()
        try:
            run(until, max_events)
        finally:
            add_engine_events(get_processed() - before)
    return counted_run


class FastSimulator(Simulator):
    """Fast array-backed engine backend (see module docstring).

    Constructed through ``Simulator(backend="fast")`` (or the
    ``REPRO_ENGINE`` environment variable); direct construction works
    too.  The public API matches :class:`~repro.sim.engine.Simulator`
    except that :meth:`schedule` returns an opaque record instead of an
    :class:`~repro.sim.engine.EventHandle` — use
    :meth:`~repro.sim.engine.Simulator.cancel_event` /
    :meth:`~repro.sim.engine.Simulator.event_pending` (both backends) or
    the ``event_*`` accessors in :mod:`repro.sim.engine` instead of
    handle attributes.
    """

    def __init__(self, sanitizer: Optional[SimSanitizer] = _FROM_ENV,
                 obs: Optional[Observability] = _FROM_ENV,
                 backend: Optional[str] = None) -> None:
        if backend not in (None, "fast"):
            raise SimulationError(
                f"FastSimulator is the {'fast'!r} backend, got backend={backend!r}")
        self._heap: List[list] = []
        self._sanitizer = _resolve_sanitizer(sanitizer)
        self._obs = _resolve_obs(obs)
        if self._obs is not None:
            # Duck-typed provenance binding, same as the classic engine.
            self._obs.provenance = self
        self._install(now=0.0, eid_src=0, cancelled_q=0, cancelled_total=0,
                      cur_eid=0, cur_origin=0, slot=None)

    # ------------------------------------------------------------------
    # closure factory
    # ------------------------------------------------------------------
    def _install(self, now: Seconds, eid_src: int, cancelled_q: int,
                 cancelled_total: int, cur_eid: int, cur_origin: int,
                 slot: Optional[list]) -> None:
        """(Re)build the hot closures around the given engine state.

        Called at construction and whenever :attr:`sanitizer` / :attr:`obs`
        change, because the closures specialise on whether those hooks are
        present.  All mutable engine state lives in the nonlocal cells
        below; ``_snapshot`` reads it back out for the next install.
        """
        heap = self._heap
        san = self._sanitizer
        obs = self._obs
        running = False

        # -------------------------------------------------- scheduling
        if san is None:
            def schedule(delay: Seconds, callback: Callable[..., None],
                         *args: Any) -> list:
                nonlocal eid_src, slot
                if not delay >= 0.0:  # False for NaN and negatives alike
                    _raise_bad_delay(delay)
                eid_src = eid = eid_src + 1
                rec = [now + delay, eid, 0, callback, args, cur_eid, cur_origin]
                if slot is None:
                    slot = rec
                else:
                    heappush(heap, rec)
                return rec

            def schedule_at(when: Seconds, callback: Callable[..., None],
                            *args: Any) -> list:
                nonlocal eid_src, slot
                if not when >= now:  # False for NaN and the past alike
                    _raise_bad_when(when, now)
                eid_src = eid = eid_src + 1
                rec = [when, eid, 0, callback, args, cur_eid, cur_origin]
                if slot is None:
                    slot = rec
                else:
                    heappush(heap, rec)
                return rec
        else:
            def schedule(delay: Seconds, callback: Callable[..., None],
                         *args: Any) -> list:
                nonlocal eid_src, slot
                if not delay >= 0.0:
                    _raise_bad_delay(delay)
                when = now + delay
                san.check_schedule(now, when)
                eid_src = eid = eid_src + 1
                rec = [when, eid, 0, callback, args, cur_eid, cur_origin]
                if slot is None:
                    slot = rec
                else:
                    heappush(heap, rec)
                return rec

            def schedule_at(when: Seconds, callback: Callable[..., None],
                            *args: Any) -> list:
                nonlocal eid_src, slot
                if not when >= now:
                    _raise_bad_when(when, now)
                san.check_schedule(now, when)
                eid_src = eid = eid_src + 1
                rec = [when, eid, 0, callback, args, cur_eid, cur_origin]
                if slot is None:
                    slot = rec
                else:
                    heappush(heap, rec)
                return rec

        # -------------------------------------------------- cancellation
        def cancel_event(rec: list) -> None:
            nonlocal cancelled_q, cancelled_total
            if rec[2] == 0:
                rec[2] = 2
                cancelled_q += 1
                cancelled_total += 1

        def event_pending(rec: list) -> bool:
            return rec[2] == 0

        # -------------------------------------------------- execution
        def _run_generic(until: Optional[Seconds],
                         max_events: Optional[int]) -> None:
            """Classic-ordered loop for sanitized/profiled/bounded runs."""
            nonlocal now, slot, cur_eid, cur_origin, cancelled_q, running
            profiler = obs.profiler if obs is not None else None
            fired = 0
            try:
                while True:
                    s = slot
                    if s is not None:
                        if heap and heap[0] < s:
                            rec = heap[0]
                            from_heap = True
                        else:
                            rec = s
                            from_heap = False
                    elif heap:
                        rec = heap[0]
                        from_heap = True
                    else:
                        break
                    if rec[2]:
                        # Cancelled entries are discarded before the
                        # ``until`` check, exactly like the classic loop.
                        if from_heap:
                            heappop(heap)
                        else:
                            slot = None
                        cancelled_q -= 1
                        continue
                    when = rec[0]
                    if until is not None and when > until:
                        break
                    if max_events is not None and fired >= max_events:
                        break
                    if from_heap:
                        heappop(heap)
                    else:
                        slot = None
                    if san is not None:
                        san.note_fire(when)
                    now = when
                    rec[2] = 1
                    cur_eid = rec[1]
                    cur_origin = rec[6]
                    if profiler is None:
                        rec[3](*rec[4])
                    else:
                        profiler.fire(rec[3], rec[4])
                    fired += 1
            finally:
                running = False
                cur_eid = 0
                cur_origin = 0
            if until is not None and now < until:
                now = until

        if san is None:
            def run(until: Optional[Seconds] = None,
                    max_events: Optional[int] = None) -> None:
                nonlocal now, slot, cur_eid, cur_origin, cancelled_q, running
                if running:
                    raise SimulationError("Simulator.run is not reentrant")
                running = True
                if max_events is not None or (
                        obs is not None and obs.profiler is not None):
                    _run_generic(until, max_events)
                    return
                if until is not None:
                    try:
                        while True:
                            s = slot
                            if s is not None:
                                if heap and heap[0] < s:
                                    rec = heap[0]
                                    from_heap = True
                                else:
                                    rec = s
                                    from_heap = False
                            elif heap:
                                rec = heap[0]
                                from_heap = True
                            else:
                                break
                            if rec[2]:
                                if from_heap:
                                    heappop(heap)
                                else:
                                    slot = None
                                cancelled_q -= 1
                                continue
                            if rec[0] > until:
                                break
                            if from_heap:
                                heappop(heap)
                            else:
                                slot = None
                            now = rec[0]
                            rec[2] = 1
                            cur_eid = rec[1]
                            cur_origin = rec[6]
                            rec[3](*rec[4])
                    finally:
                        running = False
                        cur_eid = 0
                        cur_origin = 0
                    if now < until:
                        now = until
                    return
                # Hot path: drain to empty with direct dispatch.
                try:
                    while True:
                        s = slot
                        if s is not None:
                            if heap and heap[0] < s:
                                rec = heappop(heap)
                            else:
                                rec = s
                                slot = None
                        elif heap:
                            rec = heappop(heap)
                        else:
                            break
                        if rec[2]:
                            cancelled_q -= 1
                            continue
                        now = rec[0]
                        rec[2] = 1
                        cur_eid = rec[1]
                        cur_origin = rec[6]
                        rec[3](*rec[4])
                finally:
                    running = False
                    cur_eid = 0
                    cur_origin = 0
        else:
            def run(until: Optional[Seconds] = None,
                    max_events: Optional[int] = None) -> None:
                nonlocal running
                if running:
                    raise SimulationError("Simulator.run is not reentrant")
                running = True
                _run_generic(until, max_events)

        def step() -> bool:
            nonlocal now, slot, cur_eid, cur_origin, cancelled_q
            profiler = obs.profiler if obs is not None else None
            while True:
                s = slot
                if s is not None:
                    if heap and heap[0] < s:
                        rec = heappop(heap)
                    else:
                        rec = s
                        slot = None
                elif heap:
                    rec = heappop(heap)
                else:
                    return False
                if rec[2]:
                    cancelled_q -= 1
                    continue
                when = rec[0]
                if san is not None:
                    san.note_fire(when)
                now = when
                rec[2] = 1
                cur_eid = rec[1]
                cur_origin = rec[6]
                try:
                    if profiler is None:
                        rec[3](*rec[4])
                    else:
                        profiler.fire(rec[3], rec[4])
                finally:
                    cur_eid = 0
                    cur_origin = 0
                return True

        def clear() -> None:
            nonlocal slot, cancelled_q, cancelled_total
            # Mark dropped records cancelled so handles report the truth
            # and a later cancel_event() cannot skew the counters.
            newly = 0
            for rec in heap:
                if rec[2] == 0:
                    rec[2] = 2
                    newly += 1
            if slot is not None:
                if slot[2] == 0:
                    slot[2] = 2
                    newly += 1
                slot = None
            heap.clear()
            cancelled_total += newly
            cancelled_q = 0

        # -------------------------------------------------- state bridge
        def _snapshot() -> tuple:
            if running:
                raise SimulationError(
                    "cannot reconfigure the fast engine while run() is active")
            return (now, eid_src, cancelled_q, cancelled_total,
                    cur_eid, cur_origin, slot)

        def _get_now() -> Seconds:
            return now

        def _get_cur_eid() -> int:
            return cur_eid

        def _get_origin() -> int:
            return cur_origin

        def _set_origin(value: int) -> None:
            nonlocal cur_origin
            cur_origin = value

        def _get_pending() -> int:
            return len(heap) + (slot is not None) - cancelled_q

        def _get_processed() -> int:
            return (eid_src - cancelled_total
                    - (len(heap) + (slot is not None) - cancelled_q))

        # Closures are assigned as *instance* attributes: calls skip both
        # the descriptor protocol and bound-method creation.
        self.schedule = schedule
        self.schedule_at = schedule_at
        self.cancel_event = cancel_event
        self.event_pending = event_pending
        self.run = _counting_run(run, _get_processed)
        self.step = step
        self.clear = clear
        self._snapshot = _snapshot
        self._get_now = _get_now
        self._get_cur_eid = _get_cur_eid
        self._get_origin = _get_origin
        self._set_origin = _set_origin
        self._get_pending = _get_pending
        self._get_processed = _get_processed

    # ------------------------------------------------------------------
    # bridged read-only views of the closure cells
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        return "fast"

    @property
    def now(self) -> Seconds:
        """Current simulation time in seconds."""
        return self._get_now()

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far (cancelled ones excluded)."""
        return self._get_processed()

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled entries excluded).  O(1)."""
        return self._get_pending()

    @property
    def current_eid(self) -> int:
        """eid of the currently executing event (0 outside any event)."""
        return self._get_cur_eid()

    @property
    def _sched_origin(self) -> int:
        # Property (not a plain attribute) so Observability.emit's
        # promotion write lands in the closure cell the schedule/run
        # closures actually read.
        return self._get_origin()

    @_sched_origin.setter
    def _sched_origin(self, value: int) -> None:
        self._set_origin(value)

    # ------------------------------------------------------------------
    # hook reconfiguration (re-specialises the closures)
    # ------------------------------------------------------------------
    @property
    def sanitizer(self) -> Optional[SimSanitizer]:
        """Runtime invariant checker; assigning re-installs the hot path."""
        return self._sanitizer

    @sanitizer.setter
    def sanitizer(self, value: Optional[SimSanitizer]) -> None:
        state = self._snapshot()
        self._sanitizer = value
        self._install(*state)

    @property
    def obs(self) -> Optional[Observability]:
        """Observability bundle; assigning re-installs the hot path."""
        return self._obs

    @obs.setter
    def obs(self, value: Optional[Observability]) -> None:
        state = self._snapshot()
        self._obs = value
        if value is not None:
            value.provenance = self
        self._install(*state)

    def run_until(self, when: Seconds) -> None:
        """Alias for ``run(until=when)``."""
        self.run(until=when)
