"""Discrete-event simulation core: event loop, timers, seeded RNG streams."""

from repro.sim.engine import EventHandle, SimulationError, Simulator
from repro.sim.process import Process, spawn
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "EventHandle",
    "SimulationError",
    "Simulator",
    "Process",
    "spawn",
    "RngRegistry",
    "derive_seed",
]
