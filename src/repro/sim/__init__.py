"""Discrete-event simulation core: event loop, timers, seeded RNG streams."""

from repro.sim.engine import (
    BACKENDS,
    EventHandle,
    EventRef,
    SimulationError,
    Simulator,
    event_cancelled,
    event_eid,
    event_fired,
    event_origin_eid,
    event_parent_eid,
    event_time,
)
from repro.sim.fastengine import FastSimulator
from repro.sim.process import Process, spawn
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "BACKENDS",
    "EventHandle",
    "EventRef",
    "FastSimulator",
    "SimulationError",
    "Simulator",
    "event_cancelled",
    "event_eid",
    "event_fired",
    "event_origin_eid",
    "event_parent_eid",
    "event_time",
    "Process",
    "spawn",
    "RngRegistry",
    "derive_seed",
]
