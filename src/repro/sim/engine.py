"""Discrete-event simulation engine.

The engine is a classic calendar queue built on a binary heap.  Everything
else in the repository (links, routers, TCP endpoints, experiment harnesses)
schedules work through a :class:`Simulator` instance, which guarantees:

* events fire in non-decreasing time order;
* events scheduled for the same instant fire in scheduling order (FIFO),
  which makes runs fully deterministic for a fixed seed;
* cancelled events are skipped without disturbing the ordering of the rest.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.analysis.sanitize import SimSanitizer, from_env
from repro.obs.tracer import Observability
from repro.obs.tracer import from_env as obs_from_env

#: constructor sentinel: "no sanitizer/obs argument given, consult the
#: environment (REPRO_SANITIZE / REPRO_TRACE / REPRO_PROFILE)".  Passing
#: sanitizer=None or obs=None explicitly opts out even in instrumented
#: runs (unit tests that drive links directly, bypassing Host.transmit
#: accounting).
_FROM_ENV: Any = object()


class SimulationError(ValueError):
    """Raised for invalid uses of the simulation engine.

    Subclasses :class:`ValueError` because the most common instance —
    an invalid delay or target time — is an argument error.
    """


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation.

    A handle stays valid after the event fires; cancelling a fired event is
    a harmless no-op so callers do not need to track firing themselves.
    """

    __slots__ = ("time", "callback", "args", "_cancelled", "_fired", "_sim")

    def __init__(self, time: float, callback: Callable[..., None],
                 args: Tuple[Any, ...],
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if not self._cancelled and not self._fired and self._sim is not None:
            self._sim._pending -= 1
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting to fire."""
        return not self._cancelled and not self._fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<EventHandle t={self.time:.6f} {state} {getattr(self.callback, '__name__', self.callback)}>"


class Simulator:
    """Event loop with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run()

    The clock starts at ``0.0`` and only advances when :meth:`run` (or
    :meth:`run_until` / :meth:`step`) processes events.
    """

    def __init__(self, sanitizer: Optional[SimSanitizer] = _FROM_ENV,
                 obs: Optional[Observability] = _FROM_ENV) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._counter = itertools.count()
        self._running = False
        self._processed = 0
        self._pending = 0
        #: runtime invariant checker; defaults to one created from the
        #: ``REPRO_SANITIZE`` environment variable (None when disabled).
        #: Pass ``sanitizer=None`` to opt out explicitly.  Other layers
        #: (net, tcp) consult this attribute for their hooks.
        self.sanitizer: Optional[SimSanitizer] = (
            from_env() if sanitizer is _FROM_ENV else sanitizer)
        #: observability bundle (tracer/metrics/profiler); defaults to one
        #: created from ``REPRO_TRACE`` / ``REPRO_PROFILE`` (None when
        #: neither is set).  Other layers (net, tcp, cc, core) consult
        #: this attribute for their emit hooks; with ``obs=None`` every
        #: hook site is a single pointer test.
        self.obs: Optional[Observability] = (
            obs_from_env() if obs is _FROM_ENV else obs)

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far (cancelled ones excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled entries excluded).

        O(1): a live counter maintained by schedule/cancel/fire, not a
        heap scan — monitoring code may poll this in hot loops.
        """
        return self._pending

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay != delay:  # NaN: would poison the heap ordering silently
            raise SimulationError(
                f"invalid delay {delay!r}: NaN is not a schedulable delay")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation time ``when``."""
        if when != when:  # NaN compares false against everything below
            raise SimulationError(
                f"invalid target time {when!r}: NaN is not a schedulable time")
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past (when={when}, now={self._now})"
            )
        if self.sanitizer is not None:
            # After the engine's own argument checks, so callers always see
            # SimulationError for NaN/past; the sanitizer adds the inf check.
            self.sanitizer.check_schedule(self._now, when)
        handle = EventHandle(when, callback, args, sim=self)
        heapq.heappush(self._heap, (when, next(self._counter), handle))
        self._pending += 1
        return handle

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        profiler = self.obs.profiler if self.obs is not None else None
        while self._heap:
            when, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if self.sanitizer is not None:
                self.sanitizer.note_fire(when)
            self._now = when
            handle._fired = True
            self._pending -= 1
            self._processed += 1
            if profiler is None:
                handle.callback(*handle.args)
            else:
                profiler.fire(handle.callback, handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        ``until`` is an absolute simulation time; events at exactly ``until``
        still fire.  When the run stops because of ``until``, the clock is
        advanced to ``until`` even if no event fired there, so repeated
        ``run(until=...)`` calls behave like a progressing wall clock.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        fired = 0
        # Resolved once per run: profiling is decided before the loop so
        # the unprofiled hot path keeps its direct callback dispatch.
        profiler = self.obs.profiler if self.obs is not None else None
        try:
            while self._heap:
                when, _, handle = self._heap[0]
                if handle.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and when > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                heapq.heappop(self._heap)
                if self.sanitizer is not None:
                    self.sanitizer.note_fire(when)
                self._now = when
                handle._fired = True
                self._pending -= 1
                self._processed += 1
                if profiler is None:
                    handle.callback(*handle.args)
                else:
                    profiler.fire(handle.callback, handle.args)
                fired += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def run_until(self, when: float) -> None:
        """Alias for ``run(until=when)``."""
        self.run(until=when)

    def clear(self) -> None:
        """Drop all pending events (the clock is left where it is)."""
        for _, _, handle in self._heap:
            # Mark dropped events cancelled so their handles report the
            # truth and a later cancel() cannot skew the pending counter.
            handle._cancelled = True
        self._heap.clear()
        self._pending = 0
