"""Discrete-event simulation engine.

The engine is a classic calendar queue built on a binary heap.  Everything
else in the repository (links, routers, TCP endpoints, experiment harnesses)
schedules work through a :class:`Simulator` instance, which guarantees:

Backends
--------
``Simulator(...)`` is a backend factory: ``Simulator(backend="fast")``
(the default, also selectable with ``REPRO_ENGINE=fast|classic``) returns
a :class:`repro.sim.fastengine.FastSimulator` — an array/closure-backed
core that is ~3× faster per event and produces a bit-for-bit identical
event stream (eids, provenance, FIFO ties, error messages).  This module
implements the ``"classic"`` backend, which doubles as the readable
reference semantics and the differential-testing oracle
(``tests/test_engine_equivalence.py``).  Because the fast backend returns
plain-list records instead of :class:`EventHandle` objects, portable code
uses :meth:`Simulator.cancel_event` / :meth:`Simulator.event_pending` and
the module-level ``event_*`` accessors rather than handle attributes.

* events fire in non-decreasing time order;
* events scheduled for the same instant fire in scheduling order (FIFO),
  which makes runs fully deterministic for a fixed seed;
* cancelled events are skipped without disturbing the ordering of the rest.

Causal provenance
-----------------
Every scheduled event is assigned a monotonically increasing *event id*
(``eid``, starting at 1; 0 is the root context outside any event) and
remembers the eid of the event during whose execution it was scheduled
(:attr:`EventHandle.parent_eid`).  In addition each event inherits,
through :meth:`Simulator.schedule`, the eid of its nearest ancestor
event that emitted at least one trace record (its *origin*): the
observability layer stamps ``(current_eid, origin)`` onto every
:class:`~repro.obs.records.TraceRecord` and then promotes the current
event to be the origin of everything it schedules from then on.  The
result is that a record's ``parent_eid`` always names an event with
records *in the same trace*, so a SUSS decision can be walked back
through the ACK that clocked it — across silent plumbing events such as
link serialisation — to the data send that provoked the ACK.  Because
eids are assigned in scheduling order, they are as deterministic as the
event stream itself (``jobs=1`` and ``jobs=N`` campaign runs agree
event for event, eids included).
"""

from __future__ import annotations

import heapq
import itertools
import os
from typing import Any, Callable, List, Optional, Tuple, Union

from repro.analysis.sanitize import SimSanitizer, from_env
from repro.core.units import Seconds
from repro.obs.runtime import add_engine_events
from repro.obs.tracer import Observability
from repro.obs.tracer import from_env as obs_from_env

#: constructor sentinel: "no sanitizer/obs argument given, consult the
#: environment (REPRO_SANITIZE / REPRO_TRACE / REPRO_PROFILE)".  Passing
#: sanitizer=None or obs=None explicitly opts out even in instrumented
#: runs (unit tests that drive links directly, bypassing Host.transmit
#: accounting).
_FROM_ENV: Any = object()

#: Valid engine backends: ``"fast"`` (array/closure core, the default —
#: see :mod:`repro.sim.fastengine`) and ``"classic"`` (this module's
#: object-per-event reference implementation).  Both produce bit-for-bit
#: identical event streams; ``tests/test_engine_equivalence.py`` holds
#: them to that.
BACKENDS = ("fast", "classic")

_DEFAULT_BACKEND = "fast"


def _resolve_sanitizer(value: Optional[SimSanitizer]) -> Optional[SimSanitizer]:
    """Apply the ``_FROM_ENV`` sentinel convention for ``sanitizer=``."""
    return from_env() if value is _FROM_ENV else value


def _resolve_obs(value: Optional[Observability]) -> Optional[Observability]:
    """Apply the ``_FROM_ENV`` sentinel convention for ``obs=``."""
    return obs_from_env() if value is _FROM_ENV else value


def _resolve_backend(backend: Optional[str]) -> str:
    """Pick the engine backend: explicit argument > ``REPRO_ENGINE`` > default."""
    if backend is None:
        backend = os.environ.get("REPRO_ENGINE", "").strip().lower() or _DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise SimulationError(
            f"unknown engine backend {backend!r}: expected one of {BACKENDS}")
    return backend


class SimulationError(ValueError):
    """Raised for invalid uses of the simulation engine.

    Subclasses :class:`ValueError` because the most common instance —
    an invalid delay or target time — is an argument error.
    """


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation.

    A handle stays valid after the event fires; cancelling a fired event is
    a harmless no-op so callers do not need to track firing themselves.

    ``eid`` is the event's engine-assigned identity (monotonic, unique
    within one Simulator); ``parent_eid`` is the eid of the event whose
    callback scheduled this one (0 when scheduled from outside any
    event, e.g. simulation setup); ``origin_eid`` is the eid of the
    nearest ancestor event that emitted a trace record — the causal
    parent the observability layer stamps onto records.
    """

    __slots__ = ("time", "callback", "args", "eid", "parent_eid",
                 "origin_eid", "_cancelled", "_fired", "_sim")

    def __init__(self, time: Seconds, callback: Callable[..., None],
                 args: Tuple[Any, ...],
                 sim: Optional["Simulator"] = None,
                 eid: int = 0, parent_eid: int = 0, origin_eid: int = 0):
        self.time = time
        self.callback = callback
        self.args = args
        self.eid = eid
        self.parent_eid = parent_eid
        self.origin_eid = origin_eid
        self._cancelled = False
        self._fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if not self._cancelled and not self._fired and self._sim is not None:
            self._sim._pending -= 1
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting to fire."""
        return not self._cancelled and not self._fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<EventHandle t={self.time:.6f} {state} {getattr(self.callback, '__name__', self.callback)}>"


class Simulator:
    """Event loop with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run()

    The clock starts at ``0.0`` and only advances when :meth:`run` (or
    :meth:`run_until` / :meth:`step`) processes events.
    """

    def __new__(cls, sanitizer: Optional[SimSanitizer] = _FROM_ENV,
                obs: Optional[Observability] = _FROM_ENV,
                backend: Optional[str] = None) -> "Simulator":
        # Backend dispatch happens here (not in a factory function) so the
        # whole codebase keeps constructing ``Simulator(...)`` unchanged.
        # Subclasses (including FastSimulator itself) bypass the dispatch.
        if cls is Simulator and _resolve_backend(backend) == "fast":
            from repro.sim.fastengine import FastSimulator
            return object.__new__(FastSimulator)
        return object.__new__(cls)

    def __init__(self, sanitizer: Optional[SimSanitizer] = _FROM_ENV,
                 obs: Optional[Observability] = _FROM_ENV,
                 backend: Optional[str] = None) -> None:
        if backend not in (None, "classic"):
            # ``Simulator(backend="fast")`` never lands here (``__new__``
            # redirects to FastSimulator); anything else is a typo.
            _resolve_backend(backend)
            raise SimulationError(
                f"classic Simulator constructed with backend={backend!r}")
        self._now: Seconds = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        # eid 0 is reserved for the root context (outside any event), so
        # event ids start at 1.  The counter doubles as the same-instant
        # FIFO tie-break, which keeps eids in scheduling order.
        self._counter = itertools.count(1)
        self._running = False
        self._processed = 0
        self._pending = 0
        #: eid of the event whose callback is currently executing (0
        #: outside any event).  ``_sched_origin`` is the causal origin
        #: newly scheduled events inherit: the current event's nearest
        #: record-emitting ancestor until this event emits its first
        #: record, the event's own eid afterwards (Observability.emit
        #: performs that promotion and stamps records' ``parent_eid``
        #: from this pair — the engine's per-event cost is exactly these
        #: two assignments).
        self.current_eid = 0
        self._sched_origin = 0
        #: runtime invariant checker; defaults to one created from the
        #: ``REPRO_SANITIZE`` environment variable (None when disabled).
        #: Pass ``sanitizer=None`` to opt out explicitly.  Other layers
        #: (net, tcp) consult this attribute for their hooks.
        self.sanitizer: Optional[SimSanitizer] = _resolve_sanitizer(sanitizer)
        #: observability bundle (tracer/metrics/profiler); defaults to one
        #: created from ``REPRO_TRACE`` / ``REPRO_PROFILE`` (None when
        #: neither is set).  Other layers (net, tcp, cc, core) consult
        #: this attribute for their emit hooks; with ``obs=None`` every
        #: hook site is a single pointer test.
        self.obs: Optional[Observability] = _resolve_obs(obs)
        if self.obs is not None:
            # Bind this engine as the bundle's provenance source so every
            # record it emits carries (eid, parent_eid).  The attribute is
            # duck-typed — obs stays a dependency-free leaf layer.
            self.obs.provenance = self

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Which engine backend this instance is (``"classic"`` here)."""
        return "classic"

    @property
    def now(self) -> Seconds:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far (cancelled ones excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled entries excluded).

        O(1): a live counter maintained by schedule/cancel/fire, not a
        heap scan — monitoring code may poll this in hot loops.
        """
        return self._pending

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: Seconds, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay != delay:  # NaN: would poison the heap ordering silently
            raise SimulationError(
                f"invalid delay {delay!r}: NaN is not a schedulable delay")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, when: Seconds, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation time ``when``."""
        if when != when:  # NaN compares false against everything below
            raise SimulationError(
                f"invalid target time {when!r}: NaN is not a schedulable time")
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past (when={when}, now={self._now})"
            )
        if self.sanitizer is not None:
            # After the engine's own argument checks, so callers always see
            # SimulationError for NaN/past; the sanitizer adds the inf check.
            self.sanitizer.check_schedule(self._now, when)
        eid = next(self._counter)
        handle = EventHandle(when, callback, args, self, eid,
                             self.current_eid, self._sched_origin)
        heapq.heappush(self._heap, (when, eid, handle))
        self._pending += 1
        return handle

    # ------------------------------------------------------------------
    # backend-portable handle operations
    # ------------------------------------------------------------------
    # The fast backend returns plain-list records from ``schedule`` instead
    # of EventHandle objects, so code that must work on either backend
    # cancels/polls through the simulator rather than the handle.  These
    # are the classic implementations; FastSimulator installs closures of
    # the same names.

    def cancel_event(self, handle: EventHandle) -> None:
        """Backend-portable :meth:`EventHandle.cancel`.  Idempotent."""
        handle.cancel()

    def event_pending(self, handle: EventHandle) -> bool:
        """Backend-portable :attr:`EventHandle.pending`."""
        return handle.pending

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        profiler = self.obs.profiler if self.obs is not None else None
        while self._heap:
            when, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if self.sanitizer is not None:
                self.sanitizer.note_fire(when)
            self._now = when
            handle._fired = True
            self._pending -= 1
            self._processed += 1
            self.current_eid = handle.eid
            self._sched_origin = handle.origin_eid
            try:
                if profiler is None:
                    handle.callback(*handle.args)
                else:
                    profiler.fire(handle.callback, handle.args)
            finally:
                self.current_eid = 0
                self._sched_origin = 0
            return True
        return False

    def run(self, until: Optional[Seconds] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        ``until`` is an absolute simulation time; events at exactly ``until``
        still fire.  When the run stops because of ``until``, the clock is
        advanced to ``until`` even if no event fired there, so repeated
        ``run(until=...)`` calls behave like a progressing wall clock.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        fired = 0
        # Resolved once per run: profiling/sanitizing are decided before
        # the loop and the heap access is bound to locals, so the
        # default hot path keeps its direct callback dispatch.
        profiler = self.obs.profiler if self.obs is not None else None
        sanitizer = self.sanitizer
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                when, _, handle = heap[0]
                if handle._cancelled:
                    heappop(heap)
                    continue
                if until is not None and when > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                heappop(heap)
                if sanitizer is not None:
                    sanitizer.note_fire(when)
                self._now = when
                handle._fired = True
                self._pending -= 1
                self._processed += 1
                self.current_eid = handle.eid
                self._sched_origin = handle.origin_eid
                if profiler is None:
                    handle.callback(*handle.args)
                else:
                    profiler.fire(handle.callback, handle.args)
                fired += 1
        finally:
            self._running = False
            self.current_eid = 0
            self._sched_origin = 0
            # One process-counter add per run(), not per event: run-level
            # telemetry sees engine throughput at zero hot-loop cost.
            add_engine_events(fired)
        if until is not None and self._now < until:
            self._now = until

    def run_until(self, when: Seconds) -> None:
        """Alias for ``run(until=when)``."""
        self.run(until=when)

    def clear(self) -> None:
        """Drop all pending events (the clock is left where it is)."""
        for _, _, handle in self._heap:
            # Mark dropped events cancelled so their handles report the
            # truth and a later cancel() cannot skew the pending counter.
            handle._cancelled = True
        self._heap.clear()
        self._pending = 0


# ----------------------------------------------------------------------
# backend-portable handle introspection
# ----------------------------------------------------------------------
#: A scheduled-event reference: a classic :class:`EventHandle` or a fast
#: backend plain-list record (``[when, eid, status, callback, args,
#: parent_eid, origin_eid]``; status 0 pending / 1 fired / 2 cancelled).
EventRef = Union[EventHandle, list]


def event_time(handle: EventRef) -> Seconds:
    """Scheduled fire time of an event from either backend."""
    return handle[0] if type(handle) is list else handle.time


def event_eid(handle: EventRef) -> int:
    """Engine-assigned event id of an event from either backend."""
    return handle[1] if type(handle) is list else handle.eid


def event_parent_eid(handle: EventRef) -> int:
    """eid of the event whose callback scheduled this one (0 = root)."""
    return handle[5] if type(handle) is list else handle.parent_eid


def event_origin_eid(handle: EventRef) -> int:
    """eid of the nearest record-emitting ancestor event (0 = root)."""
    return handle[6] if type(handle) is list else handle.origin_eid


def event_fired(handle: EventRef) -> bool:
    """True once the event's callback has run."""
    return handle[2] == 1 if type(handle) is list else handle.fired


def event_cancelled(handle: EventRef) -> bool:
    """True once the event has been cancelled."""
    return handle[2] == 2 if type(handle) is list else handle.cancelled
