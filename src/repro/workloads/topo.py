"""Topogen scenarios as workloads — the seam the campaign layer uses.

The layering DAG lets ``campaign`` import ``workloads`` but not ``net``,
so this module re-exports the :mod:`repro.net.topogen` surface the job
builders need (spec resolution, the registered catalogue) and adds the
workload-side glue: launching a spec's foreground flows on a built
topology, mirroring :func:`repro.workloads.flows.launch_flows` for
dumbbells.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Union

from repro.metrics.collector import Telemetry
from repro.net.topogen import (  # noqa: F401  (re-exported seam)
    TOPO_SCENARIOS,
    BuiltTopology,
    TopologySpec,
    build_topology,
    get_topo_scenario,
    registered_specs,
    routing_table_json,
    spf_routes,
)
from repro.sim.engine import Simulator
from repro.tcp.connection import Transfer, open_transfer
from repro.workloads.flows import FlowSpec
from repro.workloads.mixes import MIXES, MixTraffic, place_cross_traffic  # noqa: F401


def resolve_topo(scenario: Union[str, TopologySpec, Mapping]) -> TopologySpec:
    """A registered name, a spec object, or a canonical dict -> spec."""
    if isinstance(scenario, TopologySpec):
        return scenario
    if isinstance(scenario, str):
        return get_topo_scenario(scenario)
    return TopologySpec.from_dict(scenario)


def launch_topo_flows(sim: Simulator, built: BuiltTopology,
                      specs: Sequence[FlowSpec],
                      telemetry: Optional[Telemetry] = None
                      ) -> Dict[int, Transfer]:
    """Schedule every spec'd transfer on the topology's flow paths.

    ``pair_index`` selects which of the spec's declared
    :class:`~repro.net.topogen.spec.FlowPath` pairs carries the flow
    (defaulting to spec order, like the dumbbell launcher).  Telemetry,
    when given, attaches to the *first* flow's bottleneck queue.
    """
    paths = built.spec.flows
    if telemetry is not None and paths:
        telemetry.attach_queue(built.flow_queue)
    transfers: Dict[int, Transfer] = {}
    for order, spec in enumerate(specs):
        pair = spec.pair_index if spec.pair_index is not None else order
        if not 0 <= pair < len(paths):
            raise ValueError(
                f"spec {spec.flow_id} wants flow path {pair}, but "
                f"{built.spec.name} declares {len(paths)} flow paths")
        path = paths[pair]
        transfers[spec.flow_id] = open_transfer(
            sim, built.hosts[path.server], built.hosts[path.client],
            spec.flow_id, spec.size_bytes, spec.cc,
            start_time=spec.start_time, telemetry=telemetry)
    return transfers
