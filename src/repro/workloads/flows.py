"""Flow specifications and launch helpers.

A :class:`FlowSpec` describes one download (size, congestion control,
start time); :func:`launch_flows` instantiates specs onto a built dumbbell,
one spec per server/client pair.  Helpers build the paper's recurring
multi-flow patterns: staggered joiners (Figs. 2 and 15) and the
large-flow-vs-small-flows stability workload (Fig. 16, Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.units import MB, Bytes, Seconds
from repro.metrics.collector import Telemetry
from repro.net.topology import Dumbbell
from repro.sim.engine import Simulator
from repro.tcp.connection import Transfer, open_transfer


@dataclass(frozen=True)
class FlowSpec:
    """One download to run in a scenario."""

    flow_id: int
    size_bytes: Bytes
    cc: str
    start_time: Seconds = 0.0
    pair_index: Optional[int] = None  # which server/client pair; default flow order


def launch_flows(sim: Simulator, net: Dumbbell, specs: Sequence[FlowSpec],
                 telemetry: Optional[Telemetry] = None) -> Dict[int, Transfer]:
    """Create and schedule every spec'd transfer on the dumbbell."""
    if telemetry is not None:
        telemetry.attach_queue(net.bottleneck_queue)
    transfers: Dict[int, Transfer] = {}
    for order, spec in enumerate(specs):
        pair = spec.pair_index if spec.pair_index is not None else order
        if not 0 <= pair < len(net.servers):
            raise ValueError(f"spec {spec.flow_id} wants pair {pair}, "
                             f"but the network has {len(net.servers)} pairs")
        transfers[spec.flow_id] = open_transfer(
            sim, net.servers[pair], net.clients[pair], spec.flow_id,
            spec.size_bytes, spec.cc, start_time=spec.start_time,
            telemetry=telemetry)
    return transfers


def staggered_joiners(n_flows: int, size_bytes: Bytes, cc: str,
                      interval: Seconds = 2.0, first_start: Seconds = 0.0
                      ) -> List[FlowSpec]:
    """Flows starting ``interval`` seconds apart (Fig. 2 / Fig. 15 pattern)."""
    return [FlowSpec(flow_id=i + 1, size_bytes=size_bytes, cc=cc,
                     start_time=first_start + i * interval)
            for i in range(n_flows)]


def stability_workload(large_size: Bytes, large_cc: str, small_size: Bytes,
                       small_cc: str, n_small: int = 12,
                       small_interval: Seconds = 2.0,
                       small_first_start: Seconds = 2.0) -> List[FlowSpec]:
    """Fig. 16 / Table 1: one large flow plus sequential small flows.

    The large flow is flow 1 on pair 0; small flows are numbered from 2 and
    cycle over the remaining pairs (the local testbed has five pairs, so
    twelve small flows reuse pairs 1-4 in turn, each pair keeping its own
    RTT as in the paper's figure).
    """
    specs = [FlowSpec(flow_id=1, size_bytes=large_size, cc=large_cc,
                      start_time=0.0, pair_index=0)]
    for i in range(n_small):
        specs.append(FlowSpec(
            flow_id=i + 2, size_bytes=small_size, cc=small_cc,
            start_time=small_first_start + i * small_interval,
            pair_index=1 + (i % 4)))
    return specs
