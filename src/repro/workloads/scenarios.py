"""Scenario catalogue: the paper's testbeds as simulation path models.

**Internet-scale testbed** (Section 6.1): seven servers — one stand-alone
NZ campus server plus Google (US-East, Tokyo, Singapore) and Oracle
(US-West, Sydney, London) data centers — crossed with four last-hop link
types (5G, wired, WiFi, 4G).  Clients are in Sweden for 5G/wired and in
New Zealand for WiFi/4G (Fig. 18 caption).  That yields the 28 testing
scenarios of Figs. 17-18.

Path parameters are plausible public-internet values for the named city
pairs; per Appendix B, wireless last hops carry bandwidth variation and
jitter (4G > WiFi > 5G > wired), and Oracle paths are modelled with
shallower effective buffers than Google paths, which is what makes loss
"noticeable in testing scenarios using Oracle servers and high-speed
links" (Section 6.3).

**Local testbed**: five client-server pairs over two routers in a dumbbell
with a 50 Mbps netem-shaped bottleneck (Figs. 2, 15, 16, Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.units import MBPS, Bytes, BytesPerSec, Seconds
from repro.net.netem import (
    BandwidthProfile,
    ConstantBandwidth,
    JitterModel,
    LossModel,
    RandomWalkBandwidth,
)
from repro.net.topology import Dumbbell, bdp_bytes, build_dumbbell, build_path
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

#: Client location per last-hop link type (paper Fig. 18).
CLIENT_LOCATION = {"5g": "sweden", "wired": "sweden",
                   "wifi": "nz", "4g": "nz"}

#: Last-hop link models: (mean rate B/s, bandwidth-variation span,
#: jitter std seconds, buffer in BDP multiples).
LINK_TYPES: Dict[str, Tuple[float, float, float, float]] = {
    "wired": (100 * MBPS, 0.00, 0.0003, 1.0),
    "5g": (200 * MBPS, 0.25, 0.002, 1.5),
    "wifi": (40 * MBPS, 0.40, 0.005, 2.0),
    "4g": (30 * MBPS, 0.50, 0.008, 3.0),
}

#: Servers: base two-way propagation RTT (seconds) to each client location,
#: and a buffer-depth scale factor (Oracle paths run shallower).
SERVERS: Dict[str, Dict[str, float]] = {
    "nz-campus": {"sweden": 0.280, "nz": 0.015, "buffer_scale": 1.0},
    "google-us-east": {"sweden": 0.110, "nz": 0.150, "buffer_scale": 1.5},
    "google-tokyo": {"sweden": 0.260, "nz": 0.170, "buffer_scale": 1.5},
    "google-singapore": {"sweden": 0.180, "nz": 0.140, "buffer_scale": 1.5},
    "oracle-us-west": {"sweden": 0.160, "nz": 0.130, "buffer_scale": 0.6},
    "oracle-sydney": {"sweden": 0.300, "nz": 0.035, "buffer_scale": 0.6},
    "oracle-london": {"sweden": 0.030, "nz": 0.280, "buffer_scale": 0.6},
}

#: Azure servers: the paper also deployed on Microsoft Azure but omitted
#: those results for space ("we did observe similar results with
#: Microsoft Azure", Section 6.1).  Provided here as extra scenarios —
#: not part of the 28-scenario Fig. 17/18 matrix.
AZURE_SERVERS: Dict[str, Dict[str, float]] = {
    "azure-dublin": {"sweden": 0.045, "nz": 0.290, "buffer_scale": 1.2},
    "azure-virginia": {"sweden": 0.115, "nz": 0.155, "buffer_scale": 1.2},
}

SERVER_NAMES: List[str] = list(SERVERS)
LINK_NAMES: List[str] = list(LINK_TYPES)


@dataclass(frozen=True)
class PathScenario:
    """One internet-scale download path (server x last-hop link type)."""

    name: str
    server: str
    link_type: str
    client_location: str
    rtt: Seconds          # base two-way propagation delay
    btl_bw: BytesPerSec   # mean bottleneck bandwidth
    bw_variation: float   # RandomWalkBandwidth span; 0 disables variation
    jitter: Seconds       # per-packet jitter std
    loss_rate: float      # random (non-congestion) loss probability
    buffer_bdp: float     # bottleneck buffer in BDP multiples

    @property
    def bdp(self) -> Bytes:
        return bdp_bytes(self.btl_bw, self.rtt)

    @property
    def buffer_bytes(self) -> Bytes:
        return max(int(self.buffer_bdp * self.bdp), 3000)

    def bandwidth_profile(self, rng: Optional[RngRegistry] = None
                          ) -> BandwidthProfile:
        if self.bw_variation <= 0:
            return ConstantBandwidth(self.btl_bw)
        stream = (rng or RngRegistry(0)).stream(f"bw:{self.name}")
        return RandomWalkBandwidth(self.btl_bw, span=self.bw_variation,
                                   rng=stream)

    def build(self, sim: Simulator, rng: Optional[RngRegistry] = None
              ) -> Dumbbell:
        """Instantiate this scenario's network in ``sim``."""
        rng = rng or RngRegistry(0)
        jitter = (JitterModel(self.jitter, rng.stream(f"jitter:{self.name}"))
                  if self.jitter > 0 else None)
        loss = (LossModel(self.loss_rate, rng.stream(f"loss:{self.name}"))
                if self.loss_rate > 0 else None)
        return build_path(sim, self.bandwidth_profile(rng), self.rtt,
                          self.buffer_bytes, jitter=jitter, loss=loss)


def _make_scenarios(servers: Dict[str, Dict[str, float]]
                    ) -> Dict[str, PathScenario]:
    scenarios: Dict[str, PathScenario] = {}
    for server, info in servers.items():
        for link, (rate, variation, jitter, buffer_bdp) in LINK_TYPES.items():
            location = CLIENT_LOCATION[link]
            name = f"{server}/{link}"
            scenarios[name] = PathScenario(
                name=name, server=server, link_type=link,
                client_location=location, rtt=info[location],
                btl_bw=rate, bw_variation=variation, jitter=jitter,
                loss_rate=0.0,
                buffer_bdp=buffer_bdp * info["buffer_scale"])
    return scenarios


#: All 28 scenarios of Figs. 17-18, keyed "server/link".
INTERNET_SCENARIOS: Dict[str, PathScenario] = _make_scenarios(SERVERS)

#: Azure scenarios (tested but unpublished in the paper; see AZURE_SERVERS).
AZURE_SCENARIOS: Dict[str, PathScenario] = _make_scenarios(AZURE_SERVERS)


def get_scenario(server: str, link_type: str) -> PathScenario:
    """Look up one of the 28 internet scenarios."""
    key = f"{server}/{link_type}"
    if key not in INTERNET_SCENARIOS:
        raise KeyError(f"unknown scenario {key!r}; servers={SERVER_NAMES}, "
                       f"links={LINK_NAMES}")
    return INTERNET_SCENARIOS[key]


#: The headline scenario of Figs. 9-10: NZ 4G client, Google US-East server.
#: The paper's trace exits slow start around cwnd ≈ 1300 packets, which
#: pins this particular path's BDP: ~75 Mbit/s of 4G downlink at ~200 ms.
FIG9_SCENARIO = replace(get_scenario("google-us-east", "4g"),
                        name="google-us-east/4g-fig9", rtt=0.200,
                        btl_bw=75 * MBPS, bw_variation=0.35)
#: The Fig. 11/12 scenarios: Tokyo server, all four link types.
FIG11_SCENARIOS = [get_scenario("google-tokyo", link)
                   for link in ("5g", "wired", "wifi", "4g")]
#: Fig. 13: Google US-East -> Sydney (both endpoints in data centers).
FIG13_SCENARIO = replace(get_scenario("google-us-east", "wired"),
                         name="google-us-east/sydney-dc", rtt=0.150,
                         btl_bw=300 * MBPS, bw_variation=0.0,
                         jitter=0.0002, buffer_bdp=1.0)
#: Fig. 14: Oracle London -> 5G client in Sweden.  Section 6.3 notes loss
#: is noticeable on Oracle + high-speed-link paths; the shallow effective
#: buffer is what makes slow start's final doubling overflow there.
FIG14_SCENARIO = replace(get_scenario("oracle-london", "5g"),
                         name="oracle-london/5g-fig14", buffer_bdp=0.45)


# ----------------------------------------------------------------------
# local testbed (dumbbell, Figs. 2, 15, 16, Table 1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LocalTestbedConfig:
    """The paper's five-pair dumbbell shaped with netem."""

    bottleneck_mbps: float = 50.0
    rtts: Tuple[Seconds, ...] = (0.050, 0.050, 0.050, 0.050, 0.050)
    buffer_bdp: float = 1.0
    reference_rtt: Optional[Seconds] = None  # BDP sizing RTT; default max(rtts)
    jitter: Seconds = 0.0

    @property
    def btl_bw(self) -> BytesPerSec:
        return self.bottleneck_mbps * MBPS

    @property
    def buffer_bytes(self) -> Bytes:
        ref = self.reference_rtt if self.reference_rtt is not None else max(self.rtts)
        return max(int(self.buffer_bdp * bdp_bytes(self.btl_bw, ref)), 3000)

    def build(self, sim: Simulator, rng: Optional[RngRegistry] = None
              ) -> Dumbbell:
        rng = rng or RngRegistry(0)
        jitter = (JitterModel(self.jitter, rng.stream("jitter:local"))
                  if self.jitter > 0 else None)
        return build_dumbbell(sim, len(self.rtts), self.btl_bw,
                              list(self.rtts), self.buffer_bytes,
                              jitter=jitter)
