"""Workloads: flow specs, launch helpers, and the paper's scenario catalogue."""

from repro.workloads.crosstraffic import CrossTraffic
from repro.workloads.flows import (
    MB,
    FlowSpec,
    launch_flows,
    stability_workload,
    staggered_joiners,
)
from repro.workloads.scenarios import (
    FIG9_SCENARIO,
    FIG11_SCENARIOS,
    FIG13_SCENARIO,
    FIG14_SCENARIO,
    INTERNET_SCENARIOS,
    LINK_NAMES,
    LINK_TYPES,
    MBPS,
    SERVER_NAMES,
    SERVERS,
    LocalTestbedConfig,
    PathScenario,
    get_scenario,
)

__all__ = [
    "CrossTraffic",
    "MB",
    "FlowSpec",
    "launch_flows",
    "stability_workload",
    "staggered_joiners",
    "FIG9_SCENARIO",
    "FIG11_SCENARIOS",
    "FIG13_SCENARIO",
    "FIG14_SCENARIO",
    "INTERNET_SCENARIOS",
    "LINK_NAMES",
    "LINK_TYPES",
    "MBPS",
    "SERVER_NAMES",
    "SERVERS",
    "LocalTestbedConfig",
    "PathScenario",
    "get_scenario",
]
