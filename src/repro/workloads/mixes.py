"""Traffic mixes and per-scenario cross-traffic placement.

A :class:`TrafficMix` is a named recipe for background load: a flow-size
sampler plus an arrival shape.  Three mixes cover the internet-traffic
archetypes the topogen scenario classes need:

* **web** — heavy-tailed object sizes (lognormal; mice with an elephant
  tail), one flow per Poisson arrival;
* **video** — long transfers (multi-megabyte log-uniform segments) at a
  low arrival rate: a few elephants that occupy the pipe;
* **rpc** — request bursts: each Poisson arrival launches a short
  back-to-back *train* of small flows, the incast-flavoured pattern of
  RPC fan-outs.

:class:`MixTraffic` generalises :class:`repro.workloads.crosstraffic.CrossTraffic`
from "one dumbbell pair" to *any* server/client host pair, which is what
topogen's per-scenario :class:`~repro.net.topogen.spec.CrossTrafficPlan`
placement needs; :func:`place_cross_traffic` instantiates every plan of
a built topology with independently derived RNG streams.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.units import Bytes, BytesPerSec, Seconds
from repro.metrics import Telemetry
from repro.net.node import Host
from repro.net.topogen.build import BuiltTopology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.connection import Transfer, open_transfer


def _log_uniform(rng: random.Random, lo: int, hi: int) -> int:
    u = rng.random()
    return int(lo * math.exp(u * math.log(hi / lo)))


def _web_size(rng: random.Random) -> int:
    # Lognormal HTTP-object sizes, clamped: median ~25 KB, long tail.
    size = int(rng.lognormvariate(math.log(25_000.0), 1.6))
    return min(max(size, 1_000), 20_000_000)


def _video_size(rng: random.Random) -> int:
    # DASH-style segments: 2-16 MB log-uniform.
    return _log_uniform(rng, 2_000_000, 16_000_000)


def _rpc_size(rng: random.Random) -> int:
    # Small request/response bodies: 2-64 KB log-uniform.
    return _log_uniform(rng, 2_000, 64_000)


@dataclass(frozen=True)
class TrafficMix:
    """One named background-traffic recipe.

    ``mean_size`` is the analytical mean of the size sampler (used to
    convert a target load into an arrival rate); ``burst`` is how many
    flows each arrival launches (RPC trains; 1 for web/video).
    """

    name: str
    sample_size: Callable[[random.Random], int]
    mean_size: float
    burst: int = 1

    def arrival_rate(self, target_load: float,
                     bottleneck_rate: BytesPerSec) -> float:
        """Poisson arrival rate (arrivals/sec) for the requested load."""
        return (target_load * bottleneck_rate
                / (self.mean_size * self.burst))


def _lognormal_mean(median: float, sigma: float) -> float:
    return median * math.exp(sigma * sigma / 2.0)


def _log_uniform_mean(lo: float, hi: float) -> float:
    return (hi - lo) / math.log(hi / lo)


MIXES: Dict[str, TrafficMix] = {
    "web": TrafficMix("web", _web_size,
                      mean_size=_lognormal_mean(25_000.0, 1.6)),
    "video": TrafficMix("video", _video_size,
                        mean_size=_log_uniform_mean(2e6, 16e6)),
    "rpc": TrafficMix("rpc", _rpc_size,
                      mean_size=_log_uniform_mean(2e3, 64e3), burst=4),
}


def get_mix(name: str) -> TrafficMix:
    if name not in MIXES:
        known = ", ".join(sorted(MIXES))
        raise KeyError(f"unknown traffic mix {name!r}; known: {known}")
    return MIXES[name]


class MixTraffic:
    """Poisson (possibly bursty) background flows on one host pair.

    Like :class:`repro.workloads.crosstraffic.CrossTraffic` but bound to
    explicit :class:`~repro.net.node.Host` endpoints instead of a
    dumbbell pair index, and parameterised by a named mix.  The RNG must
    be injected (determinism: derive a stream per generator from the
    experiment's :class:`~repro.sim.rng.RngRegistry`).
    """

    def __init__(self, sim: Simulator, server: Host, client: Host,
                 mix: TrafficMix, target_load: float,
                 bottleneck_rate: BytesPerSec, rng: random.Random,
                 cc: str = "cubic", flow_id_base: int = 10_000,
                 telemetry: Optional[Telemetry] = None) -> None:
        if not 0 < target_load < 1:
            raise ValueError("target_load must be in (0, 1)")
        if rng is None:
            raise ValueError(
                "MixTraffic needs an injected random.Random; derive one "
                "from the experiment's RngRegistry so arrival/size "
                "streams stay independent of other stochastic components")
        self.sim = sim
        self.server = server
        self.client = client
        self.mix = mix
        self.target_load = target_load
        self.cc = cc
        self.rng = rng
        self.telemetry = telemetry
        self.arrival_rate = mix.arrival_rate(target_load, bottleneck_rate)
        self.flows: List[Transfer] = []
        self._next_id = flow_id_base
        self._stopped = False

    def start(self) -> None:
        """Begin generating arrivals."""
        self._schedule_next()

    def stop(self) -> None:
        """Stop new arrivals (flows in flight run to completion)."""
        self._stopped = True

    @property
    def completed_flows(self) -> int:
        return sum(1 for f in self.flows if f.completed)

    def offered_bytes(self) -> Bytes:
        return sum(f.sender.total_bytes for f in self.flows)

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        if self._stopped:
            return
        gap: Seconds = self.rng.expovariate(self.arrival_rate)
        self.sim.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        if self._stopped:
            return
        for _ in range(self.mix.burst):
            self._next_id += 1
            self.flows.append(open_transfer(
                self.sim, self.server, self.client, flow_id=self._next_id,
                size_bytes=self.mix.sample_size(self.rng), cc=self.cc,
                telemetry=self.telemetry))
        self._schedule_next()


def place_cross_traffic(built: BuiltTopology, rng: RngRegistry,
                        load_scale: float = 1.0, cc: str = "cubic",
                        telemetry: Optional[Telemetry] = None
                        ) -> List[MixTraffic]:
    """Instantiate (and start) every cross-traffic plan of a topology.

    Each plan gets its own derived RNG stream
    (``xtraf:<spec>:<i>:<server>-><client>``) and a flow-id block of
    10 000, so generators never collide with foreground flows (ids
    1..n) or each other.  ``load_scale`` multiplies every plan's load —
    campaign jobs use it to sweep load without re-speccing the topology
    (a scale of 0 places nothing).
    """
    generators: List[MixTraffic] = []
    if load_scale <= 0.0:
        return generators
    spec = built.spec
    for i, plan in enumerate(spec.cross_traffic):
        load = min(plan.load * load_scale, 0.95)
        bottleneck = built.bottleneck_link(plan.server, plan.client)
        stream = rng.stream(
            f"xtraf:{spec.name}:{i}:{plan.server}->{plan.client}")
        generator = MixTraffic(
            built.sim, built.hosts[plan.server], built.hosts[plan.client],
            get_mix(plan.mix), load, bottleneck.bandwidth.mean_rate(),
            stream, cc=cc, flow_id_base=10_000 * (i + 1),
            telemetry=telemetry)
        generator.start()
        generators.append(generator)
    return generators
