"""Flow-size distributions for internet-like traffic mixes.

The paper's motivation leans on measured flow-size distributions
(Jurkiewicz et al. [19]): most TCP flows are small — web pages, images,
short videos — and those flows live almost entirely in slow start.  This
module provides samplers for composing such mixes:

* :func:`web_object_sizes` — lognormal, typical of HTTP object sizes;
* :func:`heavy_tailed_flow_sizes` — bounded Pareto, the classic
  mice-and-elephants internet mix;
* :class:`EmpiricalCdf` — sample any measured CDF given as breakpoints,
  with :data:`CAMPUS_FLOW_CDF` approximating the campus-traffic shape the
  paper cites (median in the tens of kilobytes, a long elephant tail).
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Callable, Dict, List, Sequence, Tuple


def web_object_sizes(n: int, rng: random.Random,
                     median: float = 25_000.0, sigma: float = 1.6,
                     max_size: int = 50_000_000) -> List[int]:
    """Lognormal HTTP-object sizes (bytes), clamped to ``max_size``."""
    if n <= 0:
        raise ValueError("n must be positive")
    mu = math.log(median)
    return [min(max(int(rng.lognormvariate(mu, sigma)), 100), max_size)
            for _ in range(n)]


def heavy_tailed_flow_sizes(n: int, rng: random.Random,
                            alpha: float = 1.2, minimum: int = 10_000,
                            maximum: int = 100_000_000) -> List[int]:
    """Bounded-Pareto flow sizes (bytes): many mice, few elephants."""
    if n <= 0:
        raise ValueError("n must be positive")
    if not minimum < maximum:
        raise ValueError("minimum must be below maximum")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    lo, hi = float(minimum), float(maximum)
    ratio = (lo / hi) ** alpha
    sizes = []
    for _ in range(n):
        u = rng.random()
        x = (-(u * (1.0 - ratio) - 1.0)) ** (-1.0 / alpha) * lo
        sizes.append(int(min(max(x, lo), hi)))
    return sizes


class EmpiricalCdf:
    """Inverse-transform sampler over a piecewise-linear CDF.

    ``points`` are (value, cumulative_probability) pairs, sorted by
    probability, starting at probability 0 and ending at 1.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        probs = [p for _, p in points]
        if probs[0] != 0.0 or probs[-1] != 1.0:
            raise ValueError("CDF must start at probability 0 and end at 1")
        if probs != sorted(probs):
            raise ValueError("CDF probabilities must be non-decreasing")
        values = [v for v, _ in points]
        if values != sorted(values):
            raise ValueError("CDF values must be non-decreasing")
        self.values = values
        self.probs = probs

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        idx = bisect.bisect_left(self.probs, u)
        idx = min(max(idx, 1), len(self.probs) - 1)
        p0, p1 = self.probs[idx - 1], self.probs[idx]
        v0, v1 = self.values[idx - 1], self.values[idx]
        if p1 == p0:
            return v1
        frac = (u - p0) / (p1 - p0)
        return v0 + frac * (v1 - v0)

    def sample_many(self, n: int, rng: random.Random) -> List[float]:
        """Batched inverse-transform draws — the million-flow fast path.

        Consumes exactly ``n`` values from ``rng``'s ``random()`` stream,
        in the same order as ``n`` successive :meth:`sample` calls, so a
        batched fleet and a one-at-a-time fleet built from the same seed
        see identical sizes (property-tested).  The speedup comes from
        hoisting the attribute lookups and the bound methods out of the
        per-draw loop.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        probs, values = self.probs, self.values
        top = len(probs) - 1
        bisect_left = bisect.bisect_left
        uniform = rng.random
        out: List[float] = []
        append = out.append
        for _ in range(n):
            u = uniform()
            idx = bisect_left(probs, u)
            idx = min(max(idx, 1), top)
            p0, p1 = probs[idx - 1], probs[idx]
            v0, v1 = values[idx - 1], values[idx]
            if p1 == p0:
                append(v1)
            else:
                append(v0 + (u - p0) / (p1 - p0) * (v1 - v0))
        return out

    def sample_sizes(self, n: int, rng: random.Random) -> List[int]:
        return [max(int(v), 1) for v in self.sample_many(n, rng)]


#: Approximate campus internet flow-size CDF (log-domain breakpoints),
#: matching the qualitative shape of Jurkiewicz et al.: ~50% of flows
#: under 30 kB, ~90% under 1 MB, a heavy tail to 100 MB.
CAMPUS_FLOW_CDF = EmpiricalCdf([
    (1_000, 0.00),
    (10_000, 0.25),
    (30_000, 0.50),
    (100_000, 0.70),
    (300_000, 0.82),
    (1_000_000, 0.90),
    (3_000_000, 0.95),
    (10_000_000, 0.98),
    (30_000_000, 0.995),
    (100_000_000, 1.00),
])


#: named flow-size samplers, each ``(n, rng) -> List[int]`` — the mix
#: vocabulary shared by the flowsim driver and the CLI.  All three are
#: batch samplers already; ``sample_many`` keeps the empirical-CDF entry
#: on the same fast path.
SIZE_SAMPLERS: Dict[str, Callable[[int, random.Random], List[int]]] = {
    "web": web_object_sizes,
    "heavy_tailed": heavy_tailed_flow_sizes,
    "campus": CAMPUS_FLOW_CDF.sample_sizes,
}


def sample_flow_sizes(dist: str, n: int, rng: random.Random) -> List[int]:
    """Draw ``n`` flow sizes from the named distribution (see
    :data:`SIZE_SAMPLERS`)."""
    try:
        sampler = SIZE_SAMPLERS[dist]
    except KeyError:
        raise KeyError(f"unknown size distribution {dist!r}; "
                       f"known: {', '.join(sorted(SIZE_SAMPLERS))}") from None
    return sampler(n, rng)
