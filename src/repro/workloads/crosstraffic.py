"""Cross-traffic generation: background flows sharing the bottleneck.

The paper's internet-scale measurements run over live paths with organic
cross traffic; the local testbed creates it explicitly with competing
flows.  :class:`CrossTraffic` produces a Poisson stream of short TCP
downloads (web-like, heavy-tailed sizes) on a designated dumbbell pair,
loading the bottleneck to a configurable fraction of its capacity so
foreground experiments can be stressed realistically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.metrics import Telemetry
from repro.net.topology import Dumbbell
from repro.sim.engine import Simulator
from repro.tcp.connection import Transfer, open_transfer

#: flow-size distribution: log-uniform between these bounds (bytes)
MIN_FLOW = 30_000
MAX_FLOW = 3_000_000


@dataclass
class CrossTraffic:
    """Poisson arrivals of short flows on one dumbbell pair.

    Args:
        sim: simulation engine.
        net: the dumbbell to load.
        pair_index: which server/client pair carries the cross traffic.
        target_load: desired mean offered load as a fraction of
            ``bottleneck_rate``.
        bottleneck_rate: bottleneck capacity in bytes/second.
        cc: congestion control used by cross flows.
        rng: seeded RNG (required: determinism demands an injected,
            independently seeded stream; see ``repro.sim.rng``).
        flow_id_base: cross flows are numbered from here.
    """

    sim: Simulator
    net: Dumbbell
    pair_index: int
    target_load: float
    bottleneck_rate: float
    cc: str = "cubic"
    rng: Optional[random.Random] = None
    flow_id_base: int = 10_000
    telemetry: Optional[Telemetry] = None

    def __post_init__(self) -> None:
        if not 0 < self.target_load < 1:
            raise ValueError("target_load must be in (0, 1)")
        if self.rng is None:
            raise ValueError(
                "CrossTraffic needs an injected random.Random; derive one "
                "from the experiment's RngRegistry (e.g. "
                "rng.stream('crosstraffic')) so arrival/size streams stay "
                "independent of other stochastic components")
        self._next_id = self.flow_id_base
        self.flows: List[Transfer] = []
        # Mean size of the log-uniform distribution.
        import math
        self._mean_size = (MAX_FLOW - MIN_FLOW) / math.log(MAX_FLOW / MIN_FLOW)
        #: mean arrival rate (flows/second) for the requested load
        self.arrival_rate = (self.target_load * self.bottleneck_rate
                             / self._mean_size)
        self._stopped = False

    def start(self) -> None:
        """Begin generating arrivals."""
        self._schedule_next()

    def stop(self) -> None:
        """Stop generating new arrivals (existing flows run to completion)."""
        self._stopped = True

    @property
    def completed_flows(self) -> int:
        return sum(1 for f in self.flows if f.completed)

    def offered_bytes(self) -> int:
        return sum(f.sender.total_bytes for f in self.flows)

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        if self._stopped:
            return
        gap = self.rng.expovariate(self.arrival_rate)
        self.sim.schedule(gap, self._launch)

    def _sample_size(self) -> int:
        import math
        u = self.rng.random()
        return int(MIN_FLOW * math.exp(u * math.log(MAX_FLOW / MIN_FLOW)))

    def _launch(self) -> None:
        if self._stopped:
            return
        self._next_id += 1
        server = self.net.servers[self.pair_index]
        client = self.net.clients[self.pair_index]
        transfer = open_transfer(self.sim, server, client,
                                 flow_id=self._next_id,
                                 size_bytes=self._sample_size(),
                                 cc=self.cc, telemetry=self.telemetry)
        self.flows.append(transfer)
        self._schedule_next()
