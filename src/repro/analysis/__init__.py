"""Static analysis and runtime sanitization for the reproduction.

Two fragile invariants hold the whole reproduction together: bit-for-bit
determinism (the figure harnesses and the content-addressed campaign
cache assume identical results for identical seeds) and strict layering
(SUSS stays behind the ``tcp_congestion_ops``-style ``repro.cc`` API).
This package makes both enforceable:

* :mod:`repro.analysis.lint` — AST determinism rules (DET0xx);
* :mod:`repro.analysis.layering` — import-graph DAG checker (LAY0xx);
* :mod:`repro.analysis.units` — flow-sensitive unit/dimension checker
  (UNIT0xx) anchored on the :mod:`repro.core.units` annotations;
* :mod:`repro.analysis.sanitize` — runtime invariant checks (SAN0xx),
  wired into the engine/net/tcp layers behind ``REPRO_SANITIZE=1``;
* :mod:`repro.analysis.cli` — the ``repro lint`` subcommand.

``repro.analysis.sanitize`` imports nothing from other repro layers, so
even :mod:`repro.sim` may depend on it without inverting the layer DAG.
"""

from repro.analysis.findings import (
    RULES,
    Finding,
    explain,
    render_json,
    render_text,
)
from repro.analysis.layering import (
    DEFAULT_LAYER_DAG,
    check_layering,
    find_package_roots,
)
from repro.analysis.lint import applicable_rules, lint_paths, lint_source
from repro.analysis.units import (
    applicable_unit_rules,
    check_units_paths,
    check_units_source,
    check_units_sources,
)
from repro.analysis.sanitize import (
    ENV_VAR,
    SanitizeError,
    SimSanitizer,
    from_env,
    sanitize_enabled,
)

__all__ = [
    "RULES",
    "Finding",
    "explain",
    "render_json",
    "render_text",
    "DEFAULT_LAYER_DAG",
    "check_layering",
    "find_package_roots",
    "applicable_rules",
    "lint_paths",
    "lint_source",
    "applicable_unit_rules",
    "check_units_paths",
    "check_units_source",
    "check_units_sources",
    "ENV_VAR",
    "SanitizeError",
    "SimSanitizer",
    "from_env",
    "sanitize_enabled",
]
