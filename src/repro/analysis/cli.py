"""Entry point for ``repro lint``: determinism, layering and unit checks.

Runs the AST determinism rules and the flow-sensitive unit checker over
every ``.py`` file under the given paths and, for each ``repro`` package
found among them (e.g. ``src``), the import-graph layering checker.
Exit status is 0 for a clean tree and 1 when there are findings, so CI
can gate on it directly.  ``--explain RULE`` prints the catalogue entry
for any DET/LAY/SAN/UNIT code and exits.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.analysis.findings import (
    Finding,
    explain,
    render_json,
    render_text,
    sort_findings,
)
from repro.analysis.layering import check_layering, find_package_roots
from repro.analysis.lint import lint_paths
from repro.analysis.units import check_units_paths


def run_lint(paths: List[str], layering: bool = True,
             units: bool = True) -> List[Finding]:
    """All findings for ``paths``: determinism, layering and unit rules."""
    findings = list(lint_paths(paths))
    if units:
        findings.extend(check_units_paths(paths))
    if layering:
        for root in find_package_roots([Path(p) for p in paths]):
            findings.extend(check_layering(root))
    return sort_findings(findings)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism/layering/unit linter for the SUSS "
                    "reproduction")
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint "
                             "(default: src tests)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON")
    parser.add_argument("--no-layering", action="store_true",
                        help="skip the import-graph layering check")
    parser.add_argument("--no-units", action="store_true",
                        help="skip the unit/dimension checker")
    parser.add_argument("--explain", metavar="RULE",
                        help="print the catalogue entry for a rule ID "
                             "(e.g. DET003, UNIT002) and exit")
    args = parser.parse_args(argv)

    if args.explain:
        try:
            print(explain(args.explain))
        except KeyError as exc:
            print(exc.args[0])
            return 2
        return 0

    paths = [p for p in args.paths if Path(p).exists()]
    missing = sorted(set(args.paths) - set(paths))
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    findings = run_lint(paths, layering=not args.no_layering,
                        units=not args.no_units)
    if args.as_json:
        print(render_json(findings))
    elif findings:
        print(render_text(findings))
    else:
        print("repro lint: clean")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
