"""AST-based determinism linter for the simulation codebase.

The reproduction's figure/table harnesses and the content-addressed
campaign cache both assume bit-for-bit determinism: the same seed must
produce the same result on every run and platform.  These rules make the
known ways of breaking that assumption un-mergeable:

``DET001``
    Wall-clock access (``time.time``, ``time.monotonic``,
    ``datetime.now``, ...).  Only the campaign layer (worker timeouts,
    progress/ETA reporting) may observe real time; simulation code must
    use ``Simulator.now``.
``DET002``
    Calls to the ``random`` module's global functions (``random.random``,
    ``random.choice``, ...) or ``from random import <function>``.  The
    global RNG is shared process-wide state; components must take an
    injected ``random.Random`` stream (see :mod:`repro.sim.rng`).
``DET003``
    ``random.Random()`` with no seed — seeded from the OS, differs every
    run.
``DET004``
    Default-seeded RNG fallbacks: ``rng or random.Random(0)``,
    ``def f(rng=random.Random(0))``, ``lambda: random.Random(0)``.  Two
    components left un-wired silently share identical random streams,
    which is how correlated loss/jitter bugs creep in unnoticed.
``DET005``
    Mutable default arguments — shared across calls, so state leaks
    between otherwise independent simulation runs.
``DET006``
    ``==`` / ``!=`` against simulated time (``sim.now``).  Float time
    accumulates rounding error; equality comparisons flip with seed or
    platform.  Compare with tolerances or orderings instead.

A finding on a specific line can be suppressed with ``# noqa: DET00x``
(or a bare ``# noqa``) when the usage is deliberate.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.analysis.findings import Finding

#: dotted names whose *call* constitutes wall-clock access
WALL_CLOCK_CALLS: Set[str] = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.sleep",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<rules>[A-Z0-9, ]+))?", re.IGNORECASE)

PathLike = Union[str, Path]


def applicable_rules(path: PathLike) -> Set[str]:
    """Determinism rules that apply to ``path`` (exemptions by location).

    * ``repro/campaign/`` owns real-time concerns (worker timeouts,
      progress/ETA), ``repro/analysis/`` is tooling, ``repro/obs/``
      owns profiling (measuring wall time is its job; profiler output
      must never feed back into simulation results or trace digests),
      and ``repro/validate/`` times the perf-gate micro-benchmarks —
      all four are exempt from DET001.
    * ``tests/`` drive simulations from outside, time test runs, and
      assert exact event times on hand-built schedules, so they are
      exempt from DET001, DET002 and DET006.

    Everything else — including fixture trees handed to
    :func:`lint_paths` by the test suite — gets the full rule set.
    """
    rules = {"DET001", "DET002", "DET003", "DET004", "DET005", "DET006"}
    parts = Path(path).parts
    name = Path(path).name
    in_tests = "tests" in parts or name.startswith(("test_", "conftest"))
    if ("campaign" in parts or "analysis" in parts or "obs" in parts
            or "validate" in parts):
        rules.discard("DET001")
    if in_tests:
        rules.difference_update({"DET001", "DET002", "DET006"})
    return rules


def _noqa_rules(line: str) -> Optional[Set[str]]:
    """Rule IDs suppressed on ``line`` (empty set = suppress everything)."""
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    listed = match.group("rules")
    if not listed:
        return set()
    return {rule.strip().upper() for rule in listed.split(",") if rule.strip()}


class _AliasCollector(ast.NodeVisitor):
    """Map local names to the qualified stdlib names they were imported as."""

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to a qualified dotted name, or None."""
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    chain.append(node.id)
    chain.reverse()
    chain[0] = aliases.get(chain[0], chain[0])
    return ".".join(chain)


def _is_random_random(node: ast.AST, aliases: Dict[str, str]) -> bool:
    return (isinstance(node, ast.Call)
            and _dotted(node.func, aliases) == "random.Random")


def _constant_args_only(call: ast.Call) -> bool:
    return (not call.keywords
            and all(isinstance(a, ast.Constant) for a in call.args))


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str, rules: Set[str],
                 aliases: Dict[str, str]) -> None:
        self.path = path
        self.rules = rules
        self.aliases = aliases
        self.findings: List[Finding] = []

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.rules:
            self.findings.append(Finding(
                rule=rule, path=self.path, line=node.lineno,
                col=node.col_offset, message=message))

    # -- DET002 (import form) ------------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and not node.level:
            bad = [a.name for a in node.names if a.name != "Random"]
            if bad:
                self._report(
                    "DET002", node,
                    f"importing {', '.join(bad)} from random binds the shared "
                    f"global RNG; inject a seeded random.Random stream instead")
        self.generic_visit(node)

    # -- calls: DET001 / DET002 / DET003 -------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func, self.aliases)
        if dotted in WALL_CLOCK_CALLS:
            self._report(
                "DET001", node,
                f"wall-clock call {dotted}() in simulation code; use the "
                f"simulator's virtual clock (campaign/ is the only real-time layer)")
        elif dotted is not None and dotted.startswith("random."):
            if dotted == "random.Random":
                if not node.args and not node.keywords:
                    self._report(
                        "DET003", node,
                        "random.Random() without a seed is seeded from the OS; "
                        "pass an explicit derived seed (see repro.sim.rng)")
            elif "." not in dotted[len("random."):]:
                self._report(
                    "DET002", node,
                    f"{dotted}() draws from the process-global RNG; inject a "
                    f"seeded random.Random stream instead")
        self.generic_visit(node)

    # -- DET004: default-seeded fallbacks ------------------------------
    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        if isinstance(node.op, ast.Or):
            for value in node.values[1:]:
                if (_is_random_random(value, self.aliases)
                        and _constant_args_only(value)):
                    self._report(
                        "DET004", value,
                        "fallback to a fixed-seed random.Random hides a missing "
                        "rng injection; require the rng (or fail loudly)")
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        if (_is_random_random(node.body, self.aliases)
                and _constant_args_only(node.body)):
            self._report(
                "DET004", node,
                "default factory producing a fixed-seed random.Random; "
                "every un-wired instance shares an identical stream")
        self.generic_visit(node)

    # -- DET004 (parameter defaults) + DET005 --------------------------
    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
            if _is_random_random(default, self.aliases):
                self._report(
                    "DET004", default,
                    "random.Random as a parameter default is created once and "
                    "shared by every call; require an injected rng")
            elif isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self._report(
                    "DET005", default,
                    "mutable default argument is shared across calls")
            elif (isinstance(default, ast.Call)
                  and isinstance(default.func, ast.Name)
                  and default.func.id in {"list", "dict", "set"}
                  and not default.args and not default.keywords):
                self._report(
                    "DET005", default,
                    f"{default.func.id}() default argument is shared across calls")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- DET006: float equality against simulated time ------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            for operand in [node.left] + node.comparators:
                if self._is_sim_time(operand):
                    self._report(
                        "DET006", node,
                        "== / != against simulated time is float-fragile; "
                        "compare with <=/>= or an explicit tolerance")
                    break
        self.generic_visit(node)

    @staticmethod
    def _is_sim_time(node: ast.AST) -> bool:
        return ((isinstance(node, ast.Attribute) and node.attr in {"now", "_now"})
                or (isinstance(node, ast.Name) and node.id == "now"))


def lint_source(source: str, path: PathLike,
                rules: Optional[Set[str]] = None) -> List[Finding]:
    """Lint one file's source text; ``path`` is used for rule scoping."""
    rel = str(path)
    if rules is None:
        rules = applicable_rules(path)
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        return [Finding(rule="DET000", path=rel, line=exc.lineno or 1,
                        col=exc.offset or 0,
                        message=f"syntax error: {exc.msg}")]
    collector = _AliasCollector()
    collector.visit(tree)
    visitor = _DeterminismVisitor(rel, rules, collector.aliases)
    visitor.visit(tree)
    lines = source.splitlines()
    kept: List[Finding] = []
    for finding in visitor.findings:
        line = lines[finding.line - 1] if finding.line - 1 < len(lines) else ""
        suppressed = _noqa_rules(line)
        if suppressed is not None and (not suppressed or finding.rule in suppressed):
            continue
        kept.append(finding)
    return kept


def iter_python_files(paths: Sequence[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.extend(f for f in p.rglob("*.py")
                         if "__pycache__" not in f.parts
                         and not any(part.startswith(".") for part in f.parts))
        elif p.suffix == ".py":
            files.append(p)
    return sorted(set(files))


def lint_paths(paths: Sequence[PathLike]) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(lint_source(file.read_text(encoding="utf-8"), file))
    return findings
