"""Annotation-driven, flow-sensitive unit/dimension checker (UNIT0xx).

Every simulator quantity is a plain ``float`` at runtime; this pass
recovers their physical dimensions statically.  Signatures annotated
with the aliases from :mod:`repro.core.units` (``Seconds``, ``Bytes``,
``BytesPerSec``, ...) anchor an abstract interpretation over each
function body: dimensions flow through assignments, arithmetic,
attribute reads, returns and calls, and the rules below flag the
mixed-unit arithmetic the DET/LAY/SAN families cannot see:

``UNIT001``
    Adding, subtracting or comparing values of different dimensions
    (``rtt + size_bytes``, ``dt_at <= capacity_bytes``).
``UNIT002``
    A multiply/divide whose result is dimensionally malformed —
    squared time or bytes (``rtt / btl_bw``), or a product that mixes
    two encodings of one dimension (seconds·millis, bits·bytes).
``UNIT003``
    Passing a value of one dimension to a parameter annotated with
    another (``f(rtt)`` where ``f`` expects ``Bytes``).
``UNIT004``
    A raw conversion literal (``* 8``, ``* 1000``, ``/ 1e6``,
    ``* 125_000``) applied to a dimensioned value where a named
    constant from :mod:`repro.core.units` exists.
``UNIT005``
    A ``return`` whose inferred dimension contradicts the function's
    annotated return unit.
``UNIT006``
    A public signature in an annotated module (one that imports
    :mod:`repro.core.units`) with a quantity-named parameter or field
    (``rtt``, ``*_bytes``, ``interval``, ...) left as a bare
    ``float``/``int`` or unannotated.

Inference is deliberately optimistic: anything unresolved is *unknown*
and unknown mixes with everything silently, so a finding always traces
back to two explicit annotations (or a named constant) in conflict.
Ratios of like quantities (``size_bytes / mss``) become dimensionless
and stay permissive — a dimensionless value may carry an implicit unit
(segments) that the algebra cannot see.  Byte·segment products are
likewise dropped to unknown rather than flagged: ``segments *
wire_segment`` is how the closed-form models convert window units.

Findings suppress exactly like the determinism rules: ``# noqa:
UNIT00x`` on the offending line, which the zero-findings CI gate
requires to carry a justification comment.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple, Union

from repro.analysis.findings import Finding
from repro.analysis.lint import _AliasCollector, _dotted, _noqa_rules

PathLike = Union[str, Path]

# --------------------------------------------------------------------------
# Dimension algebra
# --------------------------------------------------------------------------
# A dimension is a canonical sorted tuple of (atom, exponent) pairs with
# zero exponents removed; the empty tuple is dimensionless.  Conversion
# constants carry *ratio* dimensions (MILLIS_PER_SECOND is ms/sec), so
# ordinary exponent cancellation makes well-formed conversions
# (``rtt * MILLIS_PER_SECOND`` -> ms) type out naturally.

Dim = Tuple[Tuple[str, int], ...]

SCALAR: Dim = ()


def _dim(**atoms: int) -> Dim:
    return tuple(sorted((a, e) for a, e in atoms.items() if e))


SEC = _dim(sec=1)
MS = _dim(ms=1)
BYTE = _dim(byte=1)
BIT = _dim(bit=1)
SEG = _dim(segment=1)
BYTES_PER_SEC = _dim(byte=1, sec=-1)
BITS_PER_SEC = _dim(bit=1, sec=-1)
PER_SEC = _dim(sec=-1)

#: annotation alias name -> dimension (the vocabulary of repro.core.units).
UNIT_ALIAS_DIMS: Dict[str, Dim] = {
    "Seconds": SEC,
    "Millis": MS,
    "Bytes": BYTE,
    "Bits": BIT,
    "Segments": SEG,
    "BytesPerSec": BYTES_PER_SEC,
    "BitsPerSec": BITS_PER_SEC,
    "PerSecond": PER_SEC,
}

#: repro.core.units constant name -> dimension of its value.
UNIT_CONSTANT_DIMS: Dict[str, Dim] = {
    "MBPS": BYTES_PER_SEC,          # bytes/sec per (dimensionless) Mbit/s
    "BITS_PER_BYTE": _dim(bit=1, byte=-1),
    "MB": BYTE,
    "MBIT": BIT,
    "MILLIS_PER_SECOND": _dim(ms=1, sec=-1),
    "MSS": BYTE,
}

_DIM_NAMES: Dict[Dim, str] = {dim: name for name, dim in UNIT_ALIAS_DIMS.items()}


def dim_name(dim: Dim) -> str:
    """Human name for a dimension (alias name when one exists)."""
    if dim == SCALAR:
        return "dimensionless"
    named = _DIM_NAMES.get(dim)
    if named is not None:
        return named
    return "*".join(atom if exp == 1 else f"{atom}^{exp}" for atom, exp in dim)


def _combine(a: Dim, b: Dim, sign: int) -> Dim:
    exps: Dict[str, int] = dict(a)
    for atom, exp in b:
        exps[atom] = exps.get(atom, 0) + sign * exp
    return tuple(sorted((atom, exp) for atom, exp in exps.items() if exp))


def _malformed(dim: Dim) -> Optional[str]:
    """Why ``dim`` cannot be a sensible simulator quantity, or None."""
    atoms = dict(dim)
    for atom, exp in atoms.items():
        if abs(exp) >= 2:
            return f"carries {atom}^{exp}"
    if "sec" in atoms and "ms" in atoms:
        return "mixes seconds with milliseconds"
    if "bit" in atoms and "byte" in atoms:
        return "mixes bits with bytes"
    return None


def _opaque(dim: Dim) -> bool:
    """Dimensions the checker refuses to reason about (drop to unknown).

    Byte*segment products are the closed-form models' window-unit
    conversions (``segments * wire_segment``); treating them as errors
    would flag correct physics.
    """
    atoms = dict(dim)
    return "segment" in atoms and ("byte" in atoms or "bit" in atoms)


# --------------------------------------------------------------------------
# Quantity-name heuristics (UNIT006)
# --------------------------------------------------------------------------

#: exact parameter/field names that denote dimensioned quantities.
QUANTITY_NAMES: Set[str] = {
    "rtt", "srtt", "min_rtt", "mo_rtt", "delay", "jitter", "duration",
    "timeout", "interval", "guard", "dt_bat", "dt_at", "fct",
    "rate", "bandwidth", "bw", "btl_bw",
    "nbytes", "mss",
}

#: name suffixes that denote dimensioned quantities.
QUANTITY_SUFFIXES: Tuple[str, ...] = (
    "_rtt", "_time", "_seconds", "_bytes", "_rate", "_delay",
    "_duration", "_interval", "_bw", "_segments",
)

#: quantity-shaped names that are dimensionless ratios/probabilities or
#: rates with no alias in the vocabulary (per-event probabilities).
QUANTITY_EXEMPT: Set[str] = {"loss_rate", "drop_rate", "retransmit_rate"}


def is_quantity_name(name: str) -> bool:
    if name in QUANTITY_EXEMPT:
        return False
    return name in QUANTITY_NAMES or name.endswith(QUANTITY_SUFFIXES)


ALL_UNIT_RULES: Set[str] = {
    "UNIT001", "UNIT002", "UNIT003", "UNIT004", "UNIT005", "UNIT006",
}


def applicable_unit_rules(path: PathLike) -> Set[str]:
    """Unit rules applying to ``path``.

    Tests build deliberately degenerate values (negative rates, raw
    literals standing in for traces) and drive internals out of
    context, so the whole family is scoped to non-test code.
    """
    parts = Path(path).parts
    name = Path(path).name
    if "tests" in parts or name.startswith(("test_", "conftest")):
        return set()
    return set(ALL_UNIT_RULES)


# --------------------------------------------------------------------------
# Pass 1: module/class/function tables
# --------------------------------------------------------------------------


class FuncSig(NamedTuple):
    """What call-site checking needs to know about one function."""

    params: Tuple[Tuple[str, Optional[Dim]], ...]
    ret: Optional[Dim]
    ret_class: Optional[str]


class ClassInfo:
    """Per-class dimension knowledge: fields, properties, methods."""

    def __init__(self, name: str, bases: Tuple[str, ...]) -> None:
        self.name = name
        self.bases = bases
        self.attr_dims: Dict[str, Optional[Dim]] = {}
        self.attr_classes: Dict[str, str] = {}
        self.methods: Dict[str, FuncSig] = {}
        self.fields: List[Tuple[str, Optional[Dim]]] = []  # declaration order
        self.is_dataclass = False

    def init_sig(self) -> Optional[FuncSig]:
        if self.is_dataclass and self.fields:
            return FuncSig(tuple(self.fields), None, self.name)
        init = self.methods.get("__init__")
        if init is not None:
            return FuncSig(init.params, None, self.name)
        return None


class ModuleInfo:
    """Pass-1 knowledge about one file."""

    def __init__(self, path: str, module: str, tree: ast.Module) -> None:
        self.path = path
        self.module = module
        self.tree = tree
        self.aliases: Dict[str, str] = {}
        self.opted_in = False
        self.constants: Dict[str, Dim] = {}
        self.functions: Dict[str, FuncSig] = {}
        self.classes: Dict[str, ClassInfo] = {}


class _Index:
    """Cross-module tables shared by every per-function checker."""

    def __init__(self) -> None:
        self.modules: List[ModuleInfo] = []
        self.functions_by_qual: Dict[str, FuncSig] = {}
        self.constants_by_qual: Dict[str, Dim] = {}
        self.classes_by_name: Dict[str, Optional[ClassInfo]] = {}

    def add(self, info: ModuleInfo) -> None:
        self.modules.append(info)
        for name, sig in info.functions.items():
            self.functions_by_qual[f"{info.module}.{name}"] = sig
        for name, dim in info.constants.items():
            self.constants_by_qual[f"{info.module}.{name}"] = dim
        for name, cls in info.classes.items():
            # A bare-name collision across modules would make attribute
            # lookup a guess; refuse to guess (None poisons the name).
            if name in self.classes_by_name and self.classes_by_name[name] is not cls:
                self.classes_by_name[name] = None
            else:
                self.classes_by_name[name] = cls

    def class_named(self, name: Optional[str]) -> Optional[ClassInfo]:
        if name is None:
            return None
        return self.classes_by_name.get(name)

    def attr_dim(self, cls: ClassInfo, attr: str) -> Optional[Dim]:
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            c = stack.pop()
            if c.name in seen:
                continue
            seen.add(c.name)
            if attr in c.attr_dims:
                return c.attr_dims[attr]
            for base in c.bases:
                parent = self.class_named(base)
                if parent is not None:
                    stack.append(parent)
        return None

    def attr_class(self, cls: ClassInfo, attr: str) -> Optional[str]:
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            c = stack.pop()
            if c.name in seen:
                continue
            seen.add(c.name)
            if attr in c.attr_classes:
                return c.attr_classes[attr]
            for base in c.bases:
                parent = self.class_named(base)
                if parent is not None:
                    stack.append(parent)
        return None

    def method(self, cls: ClassInfo, name: str) -> Optional[FuncSig]:
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            c = stack.pop()
            if c.name in seen:
                continue
            seen.add(c.name)
            if name in c.methods:
                return c.methods[name]
            for base in c.bases:
                parent = self.class_named(base)
                if parent is not None:
                    stack.append(parent)
        return None


def module_name_for(path: PathLike) -> str:
    """Dotted module name for ``path`` (rooted at the ``repro`` package)."""
    p = Path(path)
    parts = list(p.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1] or ["__init__"]
    return ".".join(parts)


def _ann_expr(node: Optional[ast.AST]) -> Optional[ast.AST]:
    """Unwrap an annotation down to its dimension-bearing core."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else None)
        if base_name == "Optional":
            return _ann_expr(node.slice)
        if base_name == "Union":
            return None  # a genuine union has no single dimension
        return None  # containers: element dims are not tracked
    return node


def ann_dim(node: Optional[ast.AST]) -> Optional[Dim]:
    """Dimension declared by an annotation expression, or None."""
    core = _ann_expr(node)
    if isinstance(core, ast.Attribute):
        return UNIT_ALIAS_DIMS.get(core.attr)
    if isinstance(core, ast.Name):
        return UNIT_ALIAS_DIMS.get(core.id)
    return None


def ann_class(node: Optional[ast.AST]) -> Optional[str]:
    """Class name declared by an annotation, or None for units/builtins."""
    core = _ann_expr(node)
    name = None
    if isinstance(core, ast.Attribute):
        name = core.attr
    elif isinstance(core, ast.Name):
        name = core.id
    if name is None or name in UNIT_ALIAS_DIMS:
        return None
    if name in {"float", "int", "bool", "str", "bytes", "object", "None"}:
        return None
    return name


def _ann_is_bare_number(node: Optional[ast.AST]) -> bool:
    """True when the annotation is float/int (possibly Optional-wrapped)."""
    core = _ann_expr(node)
    return isinstance(core, ast.Name) and core.id in {"float", "int"}


def _decorator_names(node: Union[ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef]) -> Set[str]:
    names: Set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _func_sig(node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
              drop_first: bool) -> FuncSig:
    args = list(node.args.posonlyargs) + list(node.args.args)
    if drop_first and args:
        args = args[1:]
    params = tuple((a.arg, ann_dim(a.annotation)) for a in args)
    kwonly = tuple((a.arg, ann_dim(a.annotation))
                   for a in node.args.kwonlyargs)
    return FuncSig(params + kwonly, ann_dim(node.returns),
                   ann_class(node.returns))


def _collect_module(path: str, source: str) -> Optional[ModuleInfo]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return None  # the determinism pass reports DET000 for this file
    info = ModuleInfo(path, module_name_for(path), tree)
    collector = _AliasCollector()
    collector.visit(tree)
    info.aliases = collector.aliases
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "repro.core.units":
                info.opted_in = True
        elif isinstance(node, ast.Import):
            if any(alias.name == "repro.core.units" for alias in node.names):
                info.opted_in = True
    for stmt in tree.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            dim = ann_dim(stmt.annotation)
            if dim is not None:
                info.constants[stmt.target.id] = dim
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            dim = _resolved_constant_dim(stmt.value, info)
            if dim is not None:
                info.constants[stmt.targets[0].id] = dim
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[stmt.name] = _func_sig(stmt, drop_first=False)
        elif isinstance(stmt, ast.ClassDef):
            info.classes[stmt.name] = _collect_class(stmt, info)
    return info


def _resolved_constant_dim(value: ast.AST, info: ModuleInfo) -> Optional[Dim]:
    """Dimension of a module-level ``NAME = <known constant>`` alias."""
    if isinstance(value, (ast.Name, ast.Attribute)):
        qual = _dotted(value, info.aliases)
        if qual is not None:
            leaf = qual.rsplit(".", 1)[-1]
            if qual.startswith("repro.") and leaf in UNIT_CONSTANT_DIMS:
                return UNIT_CONSTANT_DIMS[leaf]
            if qual in info.constants:
                return info.constants[qual]
    return None


def _collect_class(node: ast.ClassDef, info: ModuleInfo) -> ClassInfo:
    bases = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            bases.append(base.id)
        elif isinstance(base, ast.Attribute):
            bases.append(base.attr)
    cls = ClassInfo(node.name, tuple(bases))
    cls.is_dataclass = "dataclass" in _decorator_names(node)
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            field = stmt.target.id
            dim = ann_dim(stmt.annotation)
            cls.attr_dims[field] = dim
            ref = ann_class(stmt.annotation)
            if ref is not None:
                cls.attr_classes[field] = ref
            if not (isinstance(stmt.annotation, ast.Name)
                    and stmt.annotation.id == "ClassVar"):
                cls.fields.append((field, dim))
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            decorators = _decorator_names(stmt)
            if decorators & {"property", "cached_property"}:
                cls.attr_dims[stmt.name] = ann_dim(stmt.returns)
                ref = ann_class(stmt.returns)
                if ref is not None:
                    cls.attr_classes[stmt.name] = ref
                continue
            drop_first = "staticmethod" not in decorators
            cls.methods[stmt.name] = _func_sig(stmt, drop_first=drop_first)
            if stmt.name == "__init__":
                _collect_init_attrs(stmt, cls, info)
    return cls


def _collect_init_attrs(init: ast.FunctionDef, cls: ClassInfo,
                        info: ModuleInfo) -> None:
    """Attribute dims/classes established by ``__init__`` assignments."""
    param_dims: Dict[str, Optional[Dim]] = dict(cls.methods["__init__"].params)
    param_classes: Dict[str, str] = {}
    args = list(init.args.posonlyargs) + list(init.args.args)[1:] \
        + list(init.args.kwonlyargs)
    for a in args:
        ref = ann_class(a.annotation)
        if ref is not None:
            param_classes[a.arg] = ref
    for stmt in ast.walk(init):
        target = None
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            continue
        attr = target.attr
        if isinstance(stmt, ast.AnnAssign):
            dim = ann_dim(stmt.annotation)
            if dim is not None:
                cls.attr_dims.setdefault(attr, dim)
            ref = ann_class(stmt.annotation)
            if ref is not None:
                cls.attr_classes.setdefault(attr, ref)
            continue
        if isinstance(value, ast.Name):
            if value.id in param_dims and param_dims[value.id] is not None:
                cls.attr_dims.setdefault(attr, param_dims[value.id])
            if value.id in param_classes:
                cls.attr_classes.setdefault(attr, param_classes[value.id])
        elif isinstance(value, (ast.Attribute,)):
            dim = _resolved_constant_dim(value, info)
            if dim is not None:
                cls.attr_dims.setdefault(attr, dim)


# --------------------------------------------------------------------------
# Pass 2: per-function abstract interpretation
# --------------------------------------------------------------------------


class _Res(NamedTuple):
    """Inferred dimension of an expression.

    ``dim=None`` means unknown; ``literal`` marks bare numeric literals,
    which unify with any dimension (``2.0 * rtt`` stays Seconds).
    """

    dim: Optional[Dim]
    literal: bool = False
    cls: Optional[str] = None


_UNKNOWN = _Res(None)

#: conversion literal -> (atoms it converts, suggested constants).
_CONVERSION_LITERALS: Dict[float, Tuple[Set[str], str]] = {
    8: ({"bit", "byte"}, "BITS_PER_BYTE"),
    1000: ({"sec", "ms"}, "MILLIS_PER_SECOND"),
    1_000_000: ({"byte", "bit", "sec"}, "MB / MBIT / MICROS_PER_SECOND"),
    125_000: ({"byte", "sec"}, "MBPS"),
}

#: builtins through which a dimension passes unchanged (first argument).
_PASSTHROUGH_CALLS = {"float", "int", "abs", "round", "math.floor",
                      "math.ceil", "math.fabs"}


class _FunctionChecker:
    """Infer dimensions through one function body, reporting findings."""

    def __init__(self, index: _Index, info: ModuleInfo,
                 func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
                 self_class: Optional[ClassInfo],
                 findings: List[Finding]) -> None:
        self.index = index
        self.info = info
        self.func = func
        self.self_class = self_class
        self.findings = findings
        self.ret_dim = ann_dim(func.returns)
        self.env: Dict[str, Optional[Dim]] = {}
        self.var_classes: Dict[str, str] = {}
        args = list(func.args.posonlyargs) + list(func.args.args) \
            + list(func.args.kwonlyargs)
        for a in args:
            dim = ann_dim(a.annotation)
            if dim is not None:
                self.env[a.arg] = dim
            ref = ann_class(a.annotation)
            if ref is not None:
                self.var_classes[a.arg] = ref

    # -- reporting ------------------------------------------------------
    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule, path=self.info.path, line=node.lineno,
            col=node.col_offset, message=message))

    # -- entry ----------------------------------------------------------
    def run(self) -> None:
        self._exec_body(self.func.body)

    def _exec_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    # -- statements -----------------------------------------------------
    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
        elif isinstance(stmt, ast.Assign):
            res = self.infer(stmt.value)
            for target in stmt.targets:
                self._bind(target, res)
        elif isinstance(stmt, ast.AnnAssign):
            res = self.infer(stmt.value) if stmt.value is not None else _UNKNOWN
            declared = ann_dim(stmt.annotation)
            ref = ann_class(stmt.annotation)
            bound = _Res(declared if declared is not None else res.dim,
                         cls=ref if ref is not None else res.cls)
            self._bind(stmt.target, bound)
        elif isinstance(stmt, ast.AugAssign):
            current = self.infer(_load_of(stmt.target))
            value = self.infer(stmt.value)
            res = self._binop_result(stmt.op, current, value, stmt)
            self._bind(stmt.target, res)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                res = self.infer(stmt.value)
                self._check_return(res, stmt)
        elif isinstance(stmt, ast.If):
            self.infer(stmt.test)
            before = dict(self.env)
            self._exec_body(stmt.body)
            after_body = self.env
            self.env = dict(before)
            self._exec_body(stmt.orelse)
            self.env = _merge_envs(after_body, self.env)
        elif isinstance(stmt, (ast.While,)):
            self.infer(stmt.test)
            before = dict(self.env)
            self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
            self.env = _merge_envs(before, self.env)
        elif isinstance(stmt, ast.For):
            self.infer(stmt.iter)
            self._bind(stmt.target, _UNKNOWN)
            before = dict(self.env)
            self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
            self.env = _merge_envs(before, self.env)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.infer(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, _UNKNOWN)
            self._exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_body(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = None
                self._exec_body(handler.body)
            self._exec_body(stmt.orelse)
            self._exec_body(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.infer(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self.infer(stmt.test)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = _FunctionChecker(self.index, self.info, stmt,
                                      self.self_class, self.findings)
            # A closure sees the enclosing bindings as they stand now.
            merged = dict(self.env)
            merged.update(nested.env)
            nested.env = merged
            classes = dict(self.var_classes)
            classes.update(nested.var_classes)
            nested.var_classes = classes
            nested.run()
        # pass/break/continue/global/nonlocal/import: nothing to infer.

    def _bind(self, target: ast.AST, res: _Res) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = res.dim
            if res.cls is not None:
                self.var_classes[target.id] = res.cls
            else:
                self.var_classes.pop(target.id, None)
        elif isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            self.env[f"self.{target.attr}"] = res.dim
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, _UNKNOWN)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, _UNKNOWN)
        # Subscript targets: container element dims are not tracked.

    def _check_return(self, res: _Res, node: ast.AST) -> None:
        if self.ret_dim is None or res.dim is None or res.literal:
            return
        if res.dim == SCALAR or res.dim == self.ret_dim:
            return
        if res.dim not in _DIM_NAMES:
            return  # compound inferred dims are too speculative to gate on
        self._report(
            "UNIT005", node,
            f"returns {dim_name(res.dim)} but the signature declares "
            f"{dim_name(self.ret_dim)}")

    # -- expressions ----------------------------------------------------
    def infer(self, node: Optional[ast.AST]) -> _Res:
        if node is None:
            return _UNKNOWN
        if isinstance(node, ast.Constant):
            return _Res(None, literal=True)
        if isinstance(node, ast.Name):
            return self._infer_name(node)
        if isinstance(node, ast.Attribute):
            return self._infer_attribute(node)
        if isinstance(node, ast.BinOp):
            left = self.infer(node.left)
            right = self.infer(node.right)
            return self._binop_result(node.op, left, right, node,
                                      left_node=node.left,
                                      right_node=node.right)
        if isinstance(node, ast.UnaryOp):
            inner = self.infer(node.operand)
            if isinstance(node.op, (ast.UAdd, ast.USub)):
                return inner
            return _UNKNOWN
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.Compare):
            self._check_compare(node)
            return _UNKNOWN
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.infer(value)
            return _UNKNOWN
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            a = self.infer(node.body)
            b = self.infer(node.orelse)
            if a.dim is not None and a.dim == b.dim:
                return _Res(a.dim, cls=a.cls if a.cls == b.cls else None)
            if a.dim is not None and b.literal:
                return a
            if b.dim is not None and a.literal:
                return b
            return _UNKNOWN
        if isinstance(node, ast.Subscript):
            self.infer(node.value)
            self.infer(node.slice)
            return _UNKNOWN
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self.infer(element)
            return _UNKNOWN
        if isinstance(node, ast.Dict):
            for key in node.keys:
                self.infer(key)
            for value in node.values:
                self.infer(value)
            return _UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._infer_comprehension(node)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.infer(value.value)
            return _UNKNOWN
        if isinstance(node, ast.Lambda):
            saved_env, saved_classes = dict(self.env), dict(self.var_classes)
            for a in (list(node.args.posonlyargs) + list(node.args.args)
                      + list(node.args.kwonlyargs)):
                self.env[a.arg] = None
            self.infer(node.body)
            self.env, self.var_classes = saved_env, saved_classes
            return _UNKNOWN
        if isinstance(node, ast.Starred):
            self.infer(node.value)
            return _UNKNOWN
        if isinstance(node, (ast.Await, ast.NamedExpr)):
            inner = self.infer(node.value)
            if isinstance(node, ast.NamedExpr):
                self._bind(node.target, inner)
            return inner
        return _UNKNOWN

    def _infer_comprehension(self, node: ast.AST) -> _Res:
        saved_env, saved_classes = dict(self.env), dict(self.var_classes)
        for comp in node.generators:  # type: ignore[attr-defined]
            self.infer(comp.iter)
            self._bind(comp.target, _UNKNOWN)
            for cond in comp.ifs:
                self.infer(cond)
        if isinstance(node, ast.DictComp):
            self.infer(node.key)
            self.infer(node.value)
        else:
            self.infer(node.elt)  # type: ignore[attr-defined]
        self.env, self.var_classes = saved_env, saved_classes
        return _UNKNOWN

    def _infer_name(self, node: ast.Name) -> _Res:
        name = node.id
        if name in self.env:
            return _Res(self.env[name], cls=self.var_classes.get(name))
        if name in self.info.constants:
            return _Res(self.info.constants[name])
        qual = self.info.aliases.get(name)
        if qual is not None:
            leaf = qual.rsplit(".", 1)[-1]
            if qual.startswith("repro.") and leaf in UNIT_CONSTANT_DIMS:
                return _Res(UNIT_CONSTANT_DIMS[leaf])
            if qual in self.index.constants_by_qual:
                return _Res(self.index.constants_by_qual[qual])
        if name in UNIT_CONSTANT_DIMS and self.info.opted_in:
            return _Res(UNIT_CONSTANT_DIMS[name])
        return _UNKNOWN

    def _class_of(self, node: ast.AST) -> Optional[ClassInfo]:
        if isinstance(node, ast.Name):
            if node.id == "self" and self.self_class is not None:
                return self.self_class
            return self.index.class_named(self.var_classes.get(node.id))
        if isinstance(node, ast.Attribute):
            owner = self._class_of(node.value)
            if owner is None:
                return None
            return self.index.class_named(
                self.index.attr_class(owner, node.attr))
        if isinstance(node, ast.Call):
            return self.index.class_named(self.infer(node).cls)
        return None

    def _infer_attribute(self, node: ast.Attribute) -> _Res:
        qual = _dotted(node, self.info.aliases)
        if qual is not None:
            leaf = qual.rsplit(".", 1)[-1]
            if qual.startswith("repro.") and leaf in UNIT_CONSTANT_DIMS:
                return _Res(UNIT_CONSTANT_DIMS[leaf])
            if qual in self.index.constants_by_qual:
                return _Res(self.index.constants_by_qual[qual])
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            key = f"self.{node.attr}"
            if key in self.env:
                return _Res(self.env[key])
        owner = self._class_of(node.value)
        if owner is not None:
            dim = self.index.attr_dim(owner, node.attr)
            cls = self.index.attr_class(owner, node.attr)
            return _Res(dim, cls=cls)
        self.infer(node.value)
        return _UNKNOWN

    # -- arithmetic -----------------------------------------------------
    def _binop_result(self, op: ast.operator, left: _Res, right: _Res,
                      node: ast.AST, left_node: Optional[ast.AST] = None,
                      right_node: Optional[ast.AST] = None) -> _Res:
        if isinstance(op, (ast.Add, ast.Sub)):
            return self._additive(op, left, right, node)
        if isinstance(op, (ast.Mult, ast.Div, ast.FloorDiv)):
            self._check_conversion_literal(left, right, left_node, right_node,
                                           node)
            sign = 1 if isinstance(op, ast.Mult) else -1
            if left.dim is None or right.dim is None:
                # literal * unit keeps the unit; unknown poisons it.
                if left.dim is not None and right.literal:
                    return _Res(left.dim)
                if right.dim is not None and left.literal \
                        and isinstance(op, ast.Mult):
                    return _Res(right.dim)
                return _UNKNOWN
            combined = _combine(left.dim, right.dim, sign)
            if _opaque(combined):
                return _UNKNOWN
            problem = _malformed(combined)
            if problem is not None:
                opname = "product" if sign == 1 else "quotient"
                self._report(
                    "UNIT002", node,
                    f"{opname} of {dim_name(left.dim)} and "
                    f"{dim_name(right.dim)} {problem}; no simulator "
                    f"quantity has that dimension")
                return _UNKNOWN
            return _Res(combined)
        if isinstance(op, ast.Mod):
            if left.dim is not None and left.dim == right.dim:
                return _Res(left.dim)
            return _UNKNOWN
        # Pow and bit ops: dimensions deliberately not tracked.
        return _UNKNOWN

    def _additive(self, op: ast.operator, left: _Res, right: _Res,
                  node: ast.AST) -> _Res:
        known_left = left.dim is not None and left.dim != SCALAR
        known_right = right.dim is not None and right.dim != SCALAR
        if known_left and known_right and left.dim != right.dim:
            verb = "add" if isinstance(op, ast.Add) else "subtract"
            self._report(
                "UNIT001", node,
                f"cannot {verb} {dim_name(right.dim)} {'to' if verb == 'add' else 'from'} "
                f"{dim_name(left.dim)}")
            return _UNKNOWN
        if known_left:
            return _Res(left.dim)
        if known_right:
            return _Res(right.dim)
        if left.dim == SCALAR and right.dim == SCALAR:
            return _Res(SCALAR)
        return _UNKNOWN

    def _check_compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        results = [self.infer(op) for op in operands]
        for (left, right), op in zip(zip(results, results[1:]), node.ops):
            if isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn)):
                continue
            if left.dim is None or right.dim is None:
                continue
            if SCALAR in (left.dim, right.dim):
                continue
            if left.dim != right.dim:
                self._report(
                    "UNIT001", node,
                    f"comparison mixes {dim_name(left.dim)} with "
                    f"{dim_name(right.dim)}")
                return

    def _check_conversion_literal(self, left: _Res, right: _Res,
                                  left_node: Optional[ast.AST],
                                  right_node: Optional[ast.AST],
                                  node: ast.AST) -> None:
        for lit_node, other in ((left_node, right), (right_node, left)):
            if not (isinstance(lit_node, ast.Constant)
                    and isinstance(lit_node.value, (int, float))
                    and not isinstance(lit_node.value, bool)):
                continue
            entry = _CONVERSION_LITERALS.get(lit_node.value)
            if entry is None:
                continue
            if other.dim is None or other.dim == SCALAR:
                continue
            atoms, suggestion = entry
            if atoms & {atom for atom, _ in other.dim}:
                self._report(
                    "UNIT004", node,
                    f"raw conversion literal {lit_node.value!r} applied to "
                    f"{dim_name(other.dim)}; use {suggestion} from "
                    f"repro.core.units")
                return

    # -- calls ----------------------------------------------------------
    def _infer_call(self, node: ast.Call) -> _Res:
        arg_results = [self.infer(a) for a in node.args]
        kw_results = {kw.arg: self.infer(kw.value) for kw in node.keywords
                      if kw.arg is not None}
        for kw in node.keywords:
            if kw.arg is None:
                self.infer(kw.value)
        dotted = _dotted(node.func, self.info.aliases)
        name = dotted if dotted is not None else None
        if name in _PASSTHROUGH_CALLS or (
                name is not None
                and name.split(".")[-1] in {"floor", "ceil", "fabs"}
                and name.startswith("math.")):
            if arg_results:
                return _Res(arg_results[0].dim)
            return _UNKNOWN
        if name in {"max", "min"}:
            return self._infer_min_max(node, arg_results)
        sig = self._resolve_signature(node)
        if sig is None:
            return _UNKNOWN
        self._check_call_args(node, sig, arg_results, kw_results)
        return _Res(sig.ret, cls=sig.ret_class)

    def _infer_min_max(self, node: ast.Call,
                       arg_results: List[_Res]) -> _Res:
        known = [r for r in arg_results if r.dim not in (None, SCALAR)]
        dims = {r.dim for r in known}
        if len(dims) > 1:
            pretty = ", ".join(sorted(dim_name(d) for d in dims))
            self._report(
                "UNIT001", node,
                f"comparison mixes {pretty}")
            return _UNKNOWN
        if known:
            return _Res(known[0].dim)
        return _UNKNOWN

    def _resolve_signature(self, node: ast.Call) -> Optional[FuncSig]:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.env or name in self.var_classes:
                return None  # shadowed by a local binding
            if name in self.info.functions:
                return self.info.functions[name]
            if name in self.info.classes:
                return self.info.classes[name].init_sig()
            qual = self.info.aliases.get(name)
            if qual is not None:
                if qual in self.index.functions_by_qual:
                    return self.index.functions_by_qual[qual]
                leaf = qual.rsplit(".", 1)[-1]
                cls = self.index.class_named(leaf)
                if cls is not None:
                    return cls.init_sig()
            return None
        if isinstance(func, ast.Attribute):
            owner = self._class_of(func.value)
            if owner is not None:
                return self.index.method(owner, func.attr)
            qual = _dotted(func, self.info.aliases)
            if qual is not None and qual in self.index.functions_by_qual:
                return self.index.functions_by_qual[qual]
            self.infer(func.value)
            return None
        self.infer(func)
        return None

    def _check_call_args(self, node: ast.Call, sig: FuncSig,
                         arg_results: List[_Res],
                         kw_results: Dict[str, _Res]) -> None:
        param_dims = dict(sig.params)
        if not any(isinstance(a, ast.Starred) for a in node.args):
            for (pname, pdim), res, arg_node in zip(sig.params, arg_results,
                                                    node.args):
                self._check_one_arg(pname, pdim, res, arg_node)
        for kw in node.keywords:
            if kw.arg is None or kw.arg not in param_dims:
                continue
            self._check_one_arg(kw.arg, param_dims[kw.arg],
                                kw_results[kw.arg], kw.value)

    def _check_one_arg(self, pname: str, pdim: Optional[Dim], res: _Res,
                       node: ast.AST) -> None:
        if pdim is None or res.dim is None or res.literal:
            return
        if res.dim in (SCALAR, pdim):
            return
        self._report(
            "UNIT003", node,
            f"argument for {pname!r} is {dim_name(res.dim)} but the "
            f"parameter is annotated {dim_name(pdim)}")


def _load_of(target: ast.AST) -> ast.AST:
    """A Load-context copy of an AugAssign target, for reading."""
    clone = ast.copy_location(
        ast.parse(ast.unparse(target), mode="eval").body, target)
    return clone


def _merge_envs(a: Dict[str, Optional[Dim]],
                b: Dict[str, Optional[Dim]]) -> Dict[str, Optional[Dim]]:
    """Join two branch environments: agreement survives, conflict -> unknown."""
    merged: Dict[str, Optional[Dim]] = {}
    for key in set(a) | set(b):
        va, vb = a.get(key), b.get(key)
        merged[key] = va if va == vb else None
    return merged


# --------------------------------------------------------------------------
# UNIT006: unit-less public signatures in annotated modules
# --------------------------------------------------------------------------


def _check_signatures(info: ModuleInfo, findings: List[Finding]) -> None:
    if not info.opted_in:
        return
    for stmt in info.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_func_signature(info, stmt, findings)
        elif isinstance(stmt, ast.ClassDef) and not stmt.name.startswith("_"):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _check_func_signature(info, sub, findings)
                elif isinstance(sub, ast.AnnAssign) \
                        and isinstance(sub.target, ast.Name):
                    field = sub.target.id
                    if not field.startswith("_") and is_quantity_name(field) \
                            and _unitless_annotation(sub.annotation):
                        findings.append(Finding(
                            rule="UNIT006", path=info.path, line=sub.lineno,
                            col=sub.col_offset,
                            message=f"field {field!r} looks dimensioned but "
                                    f"is annotated as a bare number; use a "
                                    f"repro.core.units alias"))


def _check_func_signature(info: ModuleInfo,
                          func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
                          findings: List[Finding]) -> None:
    name = func.name
    if name.startswith("_") and name != "__init__":
        return
    args = list(func.args.posonlyargs) + list(func.args.args) \
        + list(func.args.kwonlyargs)
    for a in args:
        if a.arg in ("self", "cls") or not is_quantity_name(a.arg):
            continue
        if a.annotation is None or _unitless_annotation(a.annotation):
            findings.append(Finding(
                rule="UNIT006", path=info.path, line=a.lineno,
                col=a.col_offset,
                message=f"parameter {a.arg!r} of {name}() looks dimensioned "
                        f"but has no unit annotation; use a "
                        f"repro.core.units alias"))


def _unitless_annotation(node: Optional[ast.AST]) -> bool:
    """Annotated, but as a bare number with no dimension information."""
    if node is None:
        return False  # handled separately (missing annotation)
    if ann_dim(node) is not None:
        return False
    return _ann_is_bare_number(node)


# --------------------------------------------------------------------------
# Public API
# --------------------------------------------------------------------------


def _build_index(sources: Sequence[Tuple[str, str]]) -> _Index:
    index = _Index()
    for path, source in sources:
        info = _collect_module(path, source)
        if info is not None:
            index.add(info)
    return index


def _check_module(index: _Index, info: ModuleInfo, rules: Set[str],
                  source: str) -> List[Finding]:
    findings: List[Finding] = []
    if "UNIT006" in rules:
        _check_signatures(info, findings)
    # Module-level functions, then methods (with their class context).
    for stmt in info.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _FunctionChecker(index, info, stmt, None, findings).run()
        elif isinstance(stmt, ast.ClassDef):
            cls = info.classes.get(stmt.name)
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _FunctionChecker(index, info, sub, cls, findings).run()
    lines = source.splitlines()
    kept: List[Finding] = []
    for finding in findings:
        if finding.rule not in rules:
            continue
        line = lines[finding.line - 1] if finding.line - 1 < len(lines) else ""
        suppressed = _noqa_rules(line)
        if suppressed is not None and (not suppressed
                                       or finding.rule in suppressed):
            continue
        kept.append(finding)
    return kept


def check_units_sources(sources: Dict[PathLike, str]) -> List[Finding]:
    """Check a set of in-memory sources (cross-file tables included)."""
    pairs = [(str(path), text) for path, text in sources.items()]
    index = _build_index(pairs)
    by_path = dict(pairs)
    findings: List[Finding] = []
    for info in index.modules:
        rules = applicable_unit_rules(info.path)
        if not rules:
            continue
        findings.extend(_check_module(index, info, rules, by_path[info.path]))
    return findings


def check_units_source(source: str, path: PathLike) -> List[Finding]:
    """Check one file's source text in isolation (test/fixture entry)."""
    return check_units_sources({path: source})


def check_units_paths(paths: Sequence[PathLike]) -> List[Finding]:
    """Check every ``.py`` file under ``paths`` with shared tables."""
    from repro.analysis.lint import iter_python_files
    sources: Dict[PathLike, str] = {}
    for file in iter_python_files(paths):
        sources[file] = file.read_text(encoding="utf-8")
    return check_units_sources(sources)
