"""Import-graph layering checker for the ``repro`` package.

DESIGN.md's "faithful split" claim rests on the same module boundaries
the paper's kernel patch respects: SUSS lives behind the
``tcp_congestion_ops``-style :mod:`repro.cc` API and never reaches into
the simulator, network, or TCP internals directly.  This checker
extracts the import graph with :mod:`ast` (including function-local
imports, which are still runtime dependencies) and enforces the declared
DAG:

* ``sim`` imports nothing above it (``analysis`` is a dependency-free
  tooling leaf that any layer may use, so the sanitizer can be wired
  into the engine without inverting the DAG);
* ``cc`` sees the TCP layer as an *API only* — type-checking imports are
  allowed, runtime imports are not (LAY003);
* ``experiments`` is never imported by core layers;
* ``campaign`` reaches ``experiments`` only through
  ``repro.experiments.runner`` (LAY002) — the single, deliberately lazy
  seam that lets campaign jobs execute experiment code.

Top-level modules (``cli``, ``__main__``, the package ``__init__``) are
composition roots and unrestricted.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding

#: layer -> other layers it may import at runtime (self-imports implied).
#: ``None`` means unrestricted (composition roots).
DEFAULT_LAYER_DAG: Dict[str, Optional[Set[str]]] = {
    "analysis": set(),
    # obs is, like analysis, a dependency-free tooling leaf: every layer
    # may emit trace records / metrics into it, and it may import nothing
    # above it (records carry plain values, never packets or senders).
    "obs": set(),
    "sim": {"analysis", "obs"},
    "net": {"sim", "analysis", "obs"},
    "cc": {"analysis", "obs"},
    "tcp": {"sim", "net", "cc", "analysis", "obs"},
    "core": {"sim", "cc", "analysis", "obs"},
    "metrics": {"sim", "net", "analysis", "obs"},
    "trace": {"metrics", "analysis", "obs"},
    "workloads": {"sim", "net", "tcp", "cc", "core", "metrics", "trace",
                  "analysis", "obs"},
    # flowsim is the analytical fidelity tier: it projects scenarios
    # (workloads) onto closed-form models and runs reference packet
    # flows for cross-validation, but experiments/campaign drive *it*,
    # never the reverse.
    "flowsim": {"sim", "net", "tcp", "cc", "core", "metrics", "trace",
                "workloads", "analysis", "obs"},
    "campaign": {"workloads", "flowsim", "analysis", "obs"},
    "experiments": {"sim", "net", "tcp", "cc", "core", "metrics", "trace",
                    "workloads", "flowsim", "campaign", "analysis", "obs"},
    # validate sits above experiments: it *reads* every harness to bind
    # claims but nothing below it may know validation exists (an
    # experiments -> validate import is LAY001).
    "validate": {"sim", "net", "tcp", "cc", "core", "metrics", "trace",
                 "workloads", "flowsim", "campaign", "experiments",
                 "analysis", "obs"},
    "top": None,
}

#: layer -> layers additionally importable under ``if TYPE_CHECKING:``.
DEFAULT_TYPE_ONLY: Dict[str, Set[str]] = {
    "cc": {"tcp"},
}

#: layer -> exact modules importable despite the DAG (narrow waivers).
#: ``__init__`` is the bare ``import repro`` — campaign's result store
#: hashes the package sources and only needs ``repro.__file__``.
DEFAULT_MODULE_EXCEPTIONS: Dict[str, Set[str]] = {
    "campaign": {"experiments.runner", "__init__", "core.units"},
    # The cross-validation harness scores agreement with Cliff's delta;
    # validate.stats is a pure-stdlib statistics module with no imports
    # of its own layer, so this waiver cannot smuggle validation policy
    # below the boundary.
    "flowsim": {"validate.stats"},
    # core.units is a dependency-free leaf of unit type aliases and
    # conversion constants (the unit checker's annotation vocabulary);
    # like analysis/obs it must be importable from every layer without
    # inverting the DAG, but unlike them it lives in core because the
    # vocabulary is the paper's (Seconds/Bytes/Segments of Eq. 11/12).
    "sim": {"core.units"},
    "net": {"core.units"},
    "cc": {"core.units"},
    "tcp": {"core.units"},
    "metrics": {"core.units"},
    "trace": {"core.units"},
    "obs": {"core.units"},
}


def _module_layer(module: str) -> str:
    """Layer of a package-relative module path ('sim.engine' -> 'sim')."""
    head = module.split(".", 1)[0]
    if head in ("", "cli", "__main__", "__init__"):
        return "top"
    return head


class _ImportEdge:
    __slots__ = ("target", "line", "col", "type_only")

    def __init__(self, target: str, line: int, col: int, type_only: bool):
        self.target = target      # package-relative dotted module
        self.line = line
        self.col = col
        self.type_only = type_only


class _ImportVisitor(ast.NodeVisitor):
    """Collect first-party import edges, tracking TYPE_CHECKING guards."""

    def __init__(self, package: str, module: str) -> None:
        self.package = package
        self.module = module
        self.edges: List[_ImportEdge] = []
        self._type_only_depth = 0

    def _add(self, dotted: str, node: ast.AST) -> None:
        prefix = self.package + "."
        if dotted == self.package:
            dotted = prefix + "__init__"
        if not dotted.startswith(prefix):
            return
        self.edges.append(_ImportEdge(
            dotted[len(prefix):], node.lineno, node.col_offset,
            self._type_only_depth > 0))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add(alias.name, node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            # Resolve relative imports against this module's package.
            base = self.module.split(".")
            base = base[:len(base) - node.level]
            target = ".".join([self.package] + base)
            if node.module:
                self._add(target + "." + node.module, node)
            else:
                # ``from . import x``: the names are sibling modules.
                for alias in node.names:
                    self._add(target + "." + alias.name, node)
        elif node.module == self.package:
            # ``from repro import sim``: the names are top-level submodules.
            for alias in node.names:
                self._add(self.package + "." + alias.name, node)
        elif node.module:
            self._add(node.module, node)

    def visit_If(self, node: ast.If) -> None:
        if self._is_type_checking(node.test):
            self._type_only_depth += 1
            for child in node.body:
                self.visit(child)
            self._type_only_depth -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    @staticmethod
    def _is_type_checking(test: ast.AST) -> bool:
        return ((isinstance(test, ast.Name) and test.id == "TYPE_CHECKING")
                or (isinstance(test, ast.Attribute)
                    and test.attr == "TYPE_CHECKING"))


def _package_modules(package_root: Path) -> List[Tuple[str, Path]]:
    """(package-relative module name, file) for every module in the package."""
    modules = []
    for file in sorted(package_root.rglob("*.py")):
        if "__pycache__" in file.parts:
            continue
        rel = file.relative_to(package_root).with_suffix("")
        modules.append((".".join(rel.parts), file))
    return modules


def check_layering(package_root: Path,
                   package: Optional[str] = None,
                   layer_dag: Optional[Dict[str, Optional[Set[str]]]] = None,
                   type_only: Optional[Dict[str, Set[str]]] = None,
                   module_exceptions: Optional[Dict[str, Set[str]]] = None,
                   ) -> List[Finding]:
    """Check every module under ``package_root`` against the layer DAG.

    ``package_root`` is the directory of the package itself (the one
    containing ``__init__.py``); ``package`` defaults to its name.  The
    default policy tables describe the ``repro`` tree; tests pass
    fixture trees with the same tables to prove violations are caught.
    """
    package_root = Path(package_root)
    if package is None:
        package = package_root.name
    dag = DEFAULT_LAYER_DAG if layer_dag is None else layer_dag
    type_ok = DEFAULT_TYPE_ONLY if type_only is None else type_only
    waivers = (DEFAULT_MODULE_EXCEPTIONS if module_exceptions is None
               else module_exceptions)

    findings: List[Finding] = []
    for module, file in _package_modules(package_root):
        try:
            tree = ast.parse(file.read_text(encoding="utf-8"),
                             filename=str(file))
        except SyntaxError as exc:
            findings.append(Finding(
                rule="DET000", path=str(file), line=exc.lineno or 1,
                col=exc.offset or 0, message=f"syntax error: {exc.msg}"))
            continue
        layer = _module_layer(module)
        allowed = dag.get(layer, set())
        if allowed is None:  # unrestricted composition root
            continue
        visitor = _ImportVisitor(package, module)
        visitor.visit(tree)
        for edge in visitor.edges:
            target_layer = _module_layer(edge.target)
            if target_layer == layer or target_layer in allowed:
                continue
            if edge.target in waivers.get(layer, set()):
                continue
            if target_layer in type_ok.get(layer, set()):
                if edge.type_only:
                    continue
                findings.append(Finding(
                    rule="LAY003", path=str(file), line=edge.line,
                    col=edge.col,
                    message=f"{layer} may import {target_layer} for typing "
                            f"only; move the import of {package}.{edge.target} "
                            f"under TYPE_CHECKING"))
                continue
            if layer == "campaign" and target_layer == "experiments":
                findings.append(Finding(
                    rule="LAY002", path=str(file), line=edge.line,
                    col=edge.col,
                    message=f"campaign may reach experiments only via "
                            f"{package}.experiments.runner, not "
                            f"{package}.{edge.target}"))
                continue
            findings.append(Finding(
                rule="LAY001", path=str(file), line=edge.line, col=edge.col,
                message=f"layer {layer!r} must not import layer "
                        f"{target_layer!r} ({package}.{edge.target}); "
                        f"declared DAG: {layer} -> "
                        f"{{{', '.join(sorted(allowed)) or 'nothing'}}}"))
    return findings


def find_package_roots(paths: Sequence[Path], package: str = "repro"
                       ) -> List[Path]:
    """Locate ``package`` directories under the given search paths."""
    roots: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.name == package and (entry / "__init__.py").is_file():
            roots.append(entry)
            continue
        if entry.is_dir():
            candidate = entry / package
            if (candidate / "__init__.py").is_file():
                roots.append(candidate)
    return sorted(set(roots))
