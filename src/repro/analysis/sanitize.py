"""Runtime simulation sanitizer (the dynamic half of ``repro.analysis``).

When enabled — ``REPRO_SANITIZE=1`` in the environment, or an explicit
:class:`SimSanitizer` passed to :class:`repro.sim.engine.Simulator` —
the engine, network substrate, and TCP stack feed this module their
invariants on every event:

``SAN001``
    Causality: no event may be scheduled in the past or at a NaN /
    infinite time (the engine rejects NaN and past times outright; the
    sanitizer additionally rejects ``inf`` and guards against engine
    regressions).
``SAN002``
    Heap monotonicity: fired events must carry non-decreasing times.
``SAN003``
    Packet conservation: every packet entering the network (host
    transmit) is eventually delivered to a host, dropped (queue
    overflow, AQM, random loss), or still in flight; at teardown with a
    drained event queue, in-flight must be zero.
``SAN004``
    cwnd never falls below 1 MSS and stays finite.
``SAN005``
    The pacing rate, when set, is finite and positive.

This module deliberately has **no imports from other repro layers** so
the engine (the bottom of the layer DAG) can use it without inverting
the DAG; hook sites pass plain numbers and counts.

Violations raise :class:`SanitizeError` (an ``AssertionError`` subclass,
so sanitized CI runs fail loudly and ordinary exception handling in
simulation code does not swallow them).
"""

from __future__ import annotations

import math
import os
from typing import Dict, Optional

#: environment variable that switches the sanitizer on for new Simulators
ENV_VAR = "REPRO_SANITIZE"

_TRUTHY = {"1", "true", "yes", "on"}


class SanitizeError(AssertionError):
    """A runtime simulation invariant was violated."""


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests sanitized runs."""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def from_env() -> Optional["SimSanitizer"]:
    """A fresh sanitizer when ``REPRO_SANITIZE`` is set, else None."""
    return SimSanitizer() if sanitize_enabled() else None


class SimSanitizer:
    """Per-simulation invariant checker; one instance per Simulator."""

    def __init__(self) -> None:
        self.last_fired = -math.inf
        self.events_checked = 0
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.drop_sites: Dict[str, int] = {}

    # -- SAN001 / SAN002: engine hooks ---------------------------------
    def check_schedule(self, now: float, when: float) -> None:
        """Validate an event's absolute target time against the clock."""
        if not math.isfinite(when):
            raise SanitizeError(
                f"SAN001: event scheduled at non-finite time {when!r} "
                f"(now={now!r})")
        if when < now:
            raise SanitizeError(
                f"SAN001: event scheduled into the past "
                f"(when={when!r} < now={now!r})")

    def note_fire(self, when: float) -> None:
        """Record an event firing; times must be non-decreasing."""
        if when < self.last_fired:
            raise SanitizeError(
                f"SAN002: event fired at {when!r} behind the clock "
                f"(last fired at {self.last_fired!r}); the event heap "
                f"ordering is corrupt")
        self.last_fired = when
        self.events_checked += 1

    # -- SAN003: packet conservation -----------------------------------
    @property
    def packets_in_flight(self) -> int:
        return self.packets_sent - self.packets_delivered - self.packets_dropped

    def note_network_send(self) -> None:
        """A packet entered the network (host transmit)."""
        self.packets_sent += 1

    def note_network_deliver(self) -> None:
        """A packet reached an end host."""
        self.packets_delivered += 1
        if self.packets_in_flight < 0:
            raise SanitizeError(
                f"SAN003: more packets accounted for than were sent "
                f"(sent={self.packets_sent}, "
                f"delivered={self.packets_delivered}, "
                f"dropped={self.packets_dropped}); a packet was delivered "
                f"or dropped twice")

    def note_network_drop(self, where: str, count: int = 1) -> None:
        """``count`` packets were discarded at ``where``."""
        self.packets_dropped += count
        self.drop_sites[where] = self.drop_sites.get(where, 0) + count
        if self.packets_in_flight < 0:
            raise SanitizeError(
                f"SAN003: more packets accounted for than were sent "
                f"(sent={self.packets_sent}, "
                f"delivered={self.packets_delivered}, "
                f"dropped={self.packets_dropped}, last drop at {where!r})")

    def verify_conservation(self, pending_events: int) -> None:
        """Teardown check: sent = delivered + dropped (+ in-flight).

        With a drained event queue nothing can still be serialising,
        propagating, or queued behind a busy link, so in-flight must be
        exactly zero.  While events remain pending (a run truncated by
        ``until``), packets may legitimately be in flight, but never a
        negative number of them.
        """
        in_flight = self.packets_in_flight
        if in_flight < 0:
            raise SanitizeError(
                f"SAN003: packet conservation violated: sent="
                f"{self.packets_sent} < delivered={self.packets_delivered} "
                f"+ dropped={self.packets_dropped}")
        if pending_events == 0 and in_flight != 0:
            raise SanitizeError(
                f"SAN003: {in_flight} packet(s) vanished: the event queue "
                f"is drained but sent={self.packets_sent} != delivered="
                f"{self.packets_delivered} + dropped={self.packets_dropped} "
                f"(drop sites: {self.drop_sites or 'none'})")

    # -- SAN004 / SAN005: congestion-control invariants ----------------
    def check_cwnd(self, flow_id: int, cwnd: float, mss: int) -> None:
        """cwnd must stay finite and at least 1 MSS (RFC 5681 floor)."""
        if not math.isfinite(cwnd) or cwnd < mss:
            raise SanitizeError(
                f"SAN004: flow {flow_id}: cwnd={cwnd!r} violates the "
                f">= 1 MSS ({mss}) invariant")

    def check_pacing_rate(self, flow_id: int, rate: Optional[float]) -> None:
        """A set pacing rate must be finite and positive (None = unpaced)."""
        if rate is None:
            return
        if not math.isfinite(rate) or rate <= 0:
            raise SanitizeError(
                f"SAN005: flow {flow_id}: pacing rate {rate!r} must be "
                f"finite and positive")
