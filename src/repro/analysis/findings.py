"""Finding model and the rule catalogue shared by the linter and layering checker.

Every static check in :mod:`repro.analysis` reports :class:`Finding`
instances tagged with a stable rule ID.  The catalogue below is the
source of truth for IDs and rationale; DESIGN.md §6 renders the same
table for humans.  Runtime sanitizer checks (SAN0xx) raise instead of
reporting findings, but their IDs live here too so documentation and
error messages stay consistent.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List

#: rule ID -> one-line rationale.  Determinism rules are DET0xx, layering
#: rules LAY0xx, runtime sanitizer checks SAN0xx.
RULES: Dict[str, str] = {
    "DET000": "file could not be parsed (syntax error); nothing else was checked",
    "DET001": "wall-clock access (time.time/monotonic/perf_counter, datetime.now, ...) "
              "outside campaign/ poisons determinism and the campaign result cache",
    "DET002": "module-level random.* call or import draws from the shared global RNG; "
              "inject a seeded stream from sim/rng.py instead",
    "DET003": "unseeded random.Random() is seeded from the OS; every run differs",
    "DET004": "default-seeded RNG fallback (rng or random.Random(0), rng=random.Random(0)); "
              "two un-wired components silently share identical streams",
    "DET005": "mutable default argument is shared across calls and leaks state "
              "between simulation runs",
    "DET006": "float == / != against simulated time; accumulated float error makes "
              "the comparison seed- and platform-dependent",
    "LAY001": "import crosses the declared layer DAG (see DESIGN.md §6)",
    "LAY002": "campaign may reach the experiments layer only through "
              "repro.experiments.runner",
    "LAY003": "runtime import of a layer that is allowed for typing only "
              "(guard it with typing.TYPE_CHECKING)",
    "SAN001": "event scheduled into the past or at a non-finite time",
    "SAN002": "event fired behind the simulation clock (heap monotonicity broken)",
    "SAN003": "packet conservation violated (sent != delivered + dropped + in-flight)",
    "SAN004": "cwnd fell below 1 MSS or became non-finite",
    "SAN005": "pacing rate is non-finite or not positive",
    "UNIT001": "add/subtract/compare mixes values of different physical dimensions "
               "(e.g. seconds with bytes)",
    "UNIT002": "multiply/divide produces a dimensionally malformed quantity "
               "(squared time, seconds*millis, bits*bytes)",
    "UNIT003": "argument dimension contradicts the parameter's unit annotation",
    "UNIT004": "raw conversion literal (* 8, * 1000, / 1e6, 125_000) on a "
               "dimensioned value; use the named repro.core.units constant",
    "UNIT005": "returned dimension contradicts the annotated return unit",
    "UNIT006": "quantity-named parameter or field in an annotated module lacks "
               "a unit annotation (bare float/int)",
}

#: rule ID -> multi-line catalogue entry for ``repro lint --explain``.
#: The one-liners above summarise; these say why the rule exists, what it
#: matches, and how to fix or deliberately suppress a finding.
EXPLANATIONS: Dict[str, str] = {
    "DET000": """\
The file failed to parse, so none of the AST rules ran on it.  Fix the
syntax error; the finding points at the parser's position.""",
    "DET001": """\
Wall-clock access (time.time/monotonic/perf_counter, datetime.now, ...)
in simulation code.  Results must be a pure function of the seed, and
the campaign cache is content-addressed on that assumption; only
campaign/ (worker timeouts, ETA), obs/ (profiling), validate/ (perf
gates) and analysis/ may observe real time.  Use Simulator.now.""",
    "DET002": """\
A call to the random module's global functions (random.random(),
random.choice(), ...) or `from random import <function>`.  The global
RNG is process-wide shared state: any import-order or call-order change
perturbs every downstream draw.  Inject a seeded random.Random stream
derived via repro.sim.rng.derive_seed instead.""",
    "DET003": """\
random.Random() with no seed is seeded from the OS and differs every
run.  Pass an explicit derived seed (repro.sim.rng).""",
    "DET004": """\
A default-seeded RNG fallback (`rng or random.Random(0)`, parameter
defaults, lambda factories).  Two components left un-wired silently
share identical streams — correlated loss/jitter with no error message.
Require the rng and fail loudly when it is missing.""",
    "DET005": """\
A mutable default argument ([], {}, set(), list()) is evaluated once
and shared by every call, leaking state between simulation runs.  Use
None and construct inside the function.""",
    "DET006": """\
== or != against simulated time.  Float time accumulates rounding
error, so exact equality flips with seed and platform.  Compare with
orderings or an explicit tolerance.""",
    "LAY001": """\
An import crosses the declared layer DAG (DESIGN.md §6).  The
reproduction mirrors the paper's patch boundaries: SUSS stays behind
the cc API, the simulator never learns about experiments.  Move the
dependency below the boundary, pass data instead of importing, or — for
a genuinely layer-free leaf — add a narrow module waiver in
repro.analysis.layering with a justification.""",
    "LAY002": """\
campaign may reach the experiments layer only through
repro.experiments.runner, the single deliberately-lazy seam that lets
campaign jobs execute experiment harnesses.""",
    "LAY003": """\
A runtime import of a layer that is allowed for typing only.  Guard it
with `if typing.TYPE_CHECKING:` so the API dependency stays
compile-time only.""",
    "SAN001": """\
Runtime sanitizer: an event was scheduled into the past or at a
non-finite time.  Almost always a negative delay computed from a unit
mix-up or an uninitialised timestamp.""",
    "SAN002": """\
Runtime sanitizer: the event heap dispatched an event behind the
simulation clock — heap discipline or clock monotonicity is broken.""",
    "SAN003": """\
Runtime sanitizer: packet conservation failed; packets sent must equal
delivered + dropped + in-flight at every check.""",
    "SAN004": """\
Runtime sanitizer: cwnd fell below 1 MSS or became non-finite; no CC
algorithm in the reproduction may do either.""",
    "SAN005": """\
Runtime sanitizer: a pacing rate became non-finite or non-positive
(Eq. 11 rates are strictly positive by construction).""",
    "UNIT001": """\
An add, subtract or comparison mixes two different physical dimensions
— e.g. `rtt + size_bytes`, `dt_at <= capacity_bytes`.  Both operand
dimensions were inferred from unit annotations (repro.core.units
aliases) or named conversion constants, so the conflict is real:
convert one side explicitly (multiply by a conversion constant or a
rate) or fix the annotation that is wrong.  Deliberate exceptions take
`# noqa: UNIT001` with a justification comment.""",
    "UNIT002": """\
A multiply or divide produced a quantity no simulator value can have:
squared time or bytes (`rtt / btl_bw` is sec^2/byte — almost always a
flipped divide), or a product mixing two encodings of one dimension
(seconds*millis, bits*bytes — a missing conversion constant).  Rewrite
the expression so the dimensions cancel; the conversion constants in
repro.core.units carry ratio dimensions precisely so correct
conversions type out.""",
    "UNIT003": """\
A call passes a value of one dimension to a parameter annotated with
another (e.g. a Seconds value into a Bytes parameter).  One of the two
annotations is wrong, or a conversion is missing at the call site.""",
    "UNIT004": """\
A raw conversion literal (`* 8`, `* 1000`, `/ 1e6`, `125_000`) was
applied to a value with a known dimension.  Named constants exist for
every such factor (repro.core.units: BITS_PER_BYTE,
MILLIS_PER_SECOND, MB, MBIT, MBPS) and they carry ratio dimensions, so
using them both documents the conversion and lets the checker verify
it.  Literals touching only dimensionless values (protocol parameters
like CSA00's b) are never flagged.""",
    "UNIT005": """\
A return statement's inferred dimension contradicts the function's
annotated return unit.  Either the computation or the annotation is
wrong; fix whichever lies.  The rule only fires when the inferred
dimension is itself a named unit — dimensionless results (ratios that
carry an implicit unit, like byte/byte = segments) stay permissive.""",
    "UNIT006": """\
A public signature in an annotated module (one importing
repro.core.units) has a quantity-named parameter or dataclass field
(`rtt`, `interval`, `*_bytes`, `*_rate`, ...) that is unannotated or a
bare float/int.  Annotated modules opt into full dimensioning: give
the parameter a repro.core.units alias so inference has an anchor.
Genuinely dimensionless names (probabilities like loss_rate) are
exempt by the heuristic; anything else deliberate takes
`# noqa: UNIT006` with a justification.""",
}


def explain(rule: str) -> str:
    """Catalogue entry for ``rule`` (for ``repro lint --explain``)."""
    rule = rule.strip().upper()
    if rule not in RULES:
        known = ", ".join(sorted(RULES))
        raise KeyError(f"unknown rule {rule!r}; known rules: {known}")
    body = EXPLANATIONS.get(rule, "")
    header = f"{rule}: {RULES[rule]}"
    return f"{header}\n\n{body}" if body else header


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding, pointing at a file location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable presentation order: by path, then position, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def render_text(findings: Iterable[Finding]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    ordered = sort_findings(findings)
    lines = [f.render() for f in ordered]
    noun = "finding" if len(ordered) == 1 else "findings"
    lines.append(f"{len(ordered)} {noun}")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Machine-readable report (stable key order for diffing in CI)."""
    ordered = sort_findings(findings)
    payload = {
        "findings": [asdict(f) for f in ordered],
        "count": len(ordered),
        "rules": {rule: RULES[rule] for rule in sorted({f.rule for f in ordered})},
    }
    return json.dumps(payload, indent=2, sort_keys=True)
