"""Finding model and the rule catalogue shared by the linter and layering checker.

Every static check in :mod:`repro.analysis` reports :class:`Finding`
instances tagged with a stable rule ID.  The catalogue below is the
source of truth for IDs and rationale; DESIGN.md §6 renders the same
table for humans.  Runtime sanitizer checks (SAN0xx) raise instead of
reporting findings, but their IDs live here too so documentation and
error messages stay consistent.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List

#: rule ID -> one-line rationale.  Determinism rules are DET0xx, layering
#: rules LAY0xx, runtime sanitizer checks SAN0xx.
RULES: Dict[str, str] = {
    "DET000": "file could not be parsed (syntax error); nothing else was checked",
    "DET001": "wall-clock access (time.time/monotonic/perf_counter, datetime.now, ...) "
              "outside campaign/ poisons determinism and the campaign result cache",
    "DET002": "module-level random.* call or import draws from the shared global RNG; "
              "inject a seeded stream from sim/rng.py instead",
    "DET003": "unseeded random.Random() is seeded from the OS; every run differs",
    "DET004": "default-seeded RNG fallback (rng or random.Random(0), rng=random.Random(0)); "
              "two un-wired components silently share identical streams",
    "DET005": "mutable default argument is shared across calls and leaks state "
              "between simulation runs",
    "DET006": "float == / != against simulated time; accumulated float error makes "
              "the comparison seed- and platform-dependent",
    "LAY001": "import crosses the declared layer DAG (see DESIGN.md §6)",
    "LAY002": "campaign may reach the experiments layer only through "
              "repro.experiments.runner",
    "LAY003": "runtime import of a layer that is allowed for typing only "
              "(guard it with typing.TYPE_CHECKING)",
    "SAN001": "event scheduled into the past or at a non-finite time",
    "SAN002": "event fired behind the simulation clock (heap monotonicity broken)",
    "SAN003": "packet conservation violated (sent != delivered + dropped + in-flight)",
    "SAN004": "cwnd fell below 1 MSS or became non-finite",
    "SAN005": "pacing rate is non-finite or not positive",
}


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding, pointing at a file location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable presentation order: by path, then position, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def render_text(findings: Iterable[Finding]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    ordered = sort_findings(findings)
    lines = [f.render() for f in ordered]
    noun = "finding" if len(ordered) == 1 else "findings"
    lines.append(f"{len(ordered)} {noun}")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Machine-readable report (stable key order for diffing in CI)."""
    ordered = sort_findings(findings)
    payload = {
        "findings": [asdict(f) for f in ordered],
        "count": len(ordered),
        "rules": {rule: RULES[rule] for rule in sorted({f.rule for f in ordered})},
    }
    return json.dumps(payload, indent=2, sort_keys=True)
