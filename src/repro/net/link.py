"""Point-to-point links with serialisation, propagation, and impairments.

A :class:`Link` models one direction of a physical link:

* packets wait in an attached queue (drop-tail by default) while the link
  serialises earlier packets at the (possibly time-varying) bandwidth;
* each packet then propagates for ``delay`` plus optional jitter;
* optional Bernoulli loss discards packets at the receiving end
  (after consuming link capacity, like real corruption loss).

The queue is where bottleneck buffering happens, so buffer sizing in BDP
units — as in the paper's testbed — is applied to the link's queue.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.core.units import Bytes, BytesPerSec, Seconds
from repro.net.netem import BandwidthProfile, ConstantBandwidth, JitterModel, LossModel
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.obs import records as obsrec
from repro.sim.engine import Simulator


class Receiver(Protocol):
    """Anything that can accept a packet (host, router)."""

    def receive(self, packet: Packet) -> None: ...


class Link:
    """One direction of a link: queue → serialiser → propagation → dst."""

    def __init__(self, sim: Simulator, dst: Receiver, bandwidth: BandwidthProfile,
                 delay: Seconds, queue: Optional[DropTailQueue] = None,
                 jitter: Optional[JitterModel] = None,
                 loss: Optional[LossModel] = None,
                 name: str = "link") -> None:
        if delay < 0:
            raise ValueError("propagation delay must be non-negative")
        if isinstance(bandwidth, (int, float)):
            # ConstantBandwidth validates the scalar (positive + finite),
            # so a zero/negative/NaN rate fails here instead of poisoning
            # serialisation times downstream.
            bandwidth = ConstantBandwidth(float(bandwidth))
        self.sim = sim
        self.dst = dst
        self.bandwidth = bandwidth
        self.delay = delay
        self.queue = queue if queue is not None else DropTailQueue(10**9, name=f"{name}.q")
        self.jitter = jitter
        self.loss = loss
        self.name = name
        self._busy = False
        self._last_arrival: Seconds = 0.0
        self.packets_sent = 0
        self.bytes_sent: Bytes = 0
        self.packets_lost = 0
        # Metric handles are resolved once here so the per-packet cost of
        # instrumentation is a single ``is not None`` test when disabled.
        self.obs = sim.obs
        if self.obs is not None:
            m = self.obs.metrics
            self._m_bytes = m.counter("link.bytes_sent", link=name)
            self._m_drops = m.counter("link.drops", link=name)
            self._m_qlen = m.histogram("link.queue_bytes", link=name)

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Offer a packet to the link; False means the queue dropped it."""
        if hasattr(self.queue, "set_now"):
            self.queue.set_now(self.sim.now)
        if not self.queue.push(packet):
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.note_network_drop(f"{self.name}: queue full")
            if self.obs is not None:
                self._note_drop(packet, "queue_full")
            return False
        if self.obs is not None:
            self._m_qlen.observe(self.queue.bytes_queued)
        if not self._busy:
            self._start_next()
        return True

    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        drops_before = self.queue.drops
        packet = self.queue.pop(self.sim.now)
        if self.queue.drops > drops_before:
            # AQM (CoDel) head drops happen inside pop().
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.note_network_drop(
                    f"{self.name}: AQM drop", self.queue.drops - drops_before)
            if self.obs is not None:
                self._m_drops.add(self.queue.drops - drops_before)
                self.obs.emit(self.sim.now, obsrec.PKT_DROP, -1,
                              link=self.name, reason="aqm",
                              count=self.queue.drops - drops_before)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        rate = self.bandwidth.rate_at(self.sim.now)
        tx_time = packet.size / rate
        self.sim.schedule(tx_time, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self.packets_sent += 1
        self.bytes_sent += packet.size
        if self.obs is not None:
            self._m_bytes.add(packet.size)
        if self.loss is not None and self.loss.drops():
            self.packets_lost += 1
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.note_network_drop(f"{self.name}: random loss")
            if self.obs is not None:
                self._note_drop(packet, "random_loss")
        else:
            prop = self.delay
            if self.jitter is not None:
                prop += self.jitter.sample(self.sim.now)
            # Jitter must not reorder: real-path delay variation comes from
            # queueing, which preserves FIFO order.  Clamp each arrival to
            # be no earlier than the previous one.
            arrival = max(self.sim.now + prop, self._last_arrival)
            self._last_arrival = arrival
            self.sim.schedule_at(arrival, self.dst.receive, packet)
        self._start_next()

    def _note_drop(self, packet: Packet, reason: str) -> None:
        self._m_drops.add(1)
        self.obs.emit(self.sim.now, obsrec.PKT_DROP, packet.flow_id,
                      link=self.name, reason=reason, seq=packet.seq,
                      size=packet.size)

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._busy

    def utilization_rate(self) -> BytesPerSec:
        """Mean bytes/second pushed through the link so far."""
        if self.sim.now <= 0.0:
            return 0.0
        return self.bytes_sent / self.sim.now
