"""Point-to-point links with serialisation, propagation, and impairments.

A :class:`Link` models one direction of a physical link:

* packets wait in an attached queue (drop-tail by default) while the link
  serialises earlier packets at the (possibly time-varying) bandwidth;
* each packet then propagates for ``delay`` plus optional jitter;
* optional Bernoulli loss discards packets at the receiving end
  (after consuming link capacity, like real corruption loss).

The queue is where bottleneck buffering happens, so buffer sizing in BDP
units — as in the paper's testbed — is applied to the link's queue.

Batched serialisation
---------------------
With ``batch=True`` (or ``REPRO_LINK_BATCH=1``) an *eligible* link —
constant bandwidth, no jitter, a plain :class:`DropTailQueue` — drains
each busy period in one scheduled event instead of one event per packet:
serialisation finish times of a FIFO work-conserving link are fully
determined the moment it goes busy, so the drain event computes them by
accumulation (``t += size/rate``, float-identical to the per-packet
schedule arithmetic), draws loss in the same per-packet order, and
schedules every arrival directly.  Buffer semantics are preserved
exactly through phantom byte-holds (:meth:`DropTailQueue.hold`): a
drained packet's bytes keep occupying the queue until the instant its
serialisation would have started, so queue-full drop decisions match the
classic path bit-for-bit.  What batching *does* change is the event
stream itself (fewer events, different eids), which is why it is opt-in
and excluded from the golden-trace byte-identity guarantee — its
equivalence tests compare semantics (arrivals, FCTs, drop counts)
instead of digests.
"""

from __future__ import annotations

import os
from typing import Optional, Protocol

from repro.core.units import Bytes, BytesPerSec, Seconds
from repro.net.netem import BandwidthProfile, ConstantBandwidth, JitterModel, LossModel
from repro.net.packet import POOL, Packet
from repro.net.queue import DropTailQueue
from repro.obs import records as obsrec
from repro.sim.engine import Simulator


class Receiver(Protocol):
    """Anything that can accept a packet (host, router)."""

    def receive(self, packet: Packet) -> None: ...


class Link:
    """One direction of a link: queue → serialiser → propagation → dst."""

    __slots__ = ("sim", "dst", "bandwidth", "delay", "queue", "jitter",
                 "loss", "name", "_busy", "_last_arrival", "packets_sent",
                 "bytes_sent", "packets_lost", "obs", "_m_bytes", "_m_drops",
                 "_m_qlen", "_set_now", "_batch")

    def __init__(self, sim: Simulator, dst: Receiver, bandwidth: BandwidthProfile,
                 delay: Seconds, queue: Optional[DropTailQueue] = None,
                 jitter: Optional[JitterModel] = None,
                 loss: Optional[LossModel] = None,
                 name: str = "link",
                 batch: Optional[bool] = None) -> None:
        if delay < 0:
            raise ValueError("propagation delay must be non-negative")
        if isinstance(bandwidth, (int, float)):
            # ConstantBandwidth validates the scalar (positive + finite),
            # so a zero/negative/NaN rate fails here instead of poisoning
            # serialisation times downstream.
            bandwidth = ConstantBandwidth(float(bandwidth))
        self.sim = sim
        self.dst = dst
        self.bandwidth = bandwidth
        self.delay = delay
        self.queue = queue if queue is not None else DropTailQueue(10**9, name=f"{name}.q")
        self.jitter = jitter
        self.loss = loss
        self.name = name
        self._busy = False
        self._last_arrival: Seconds = 0.0
        self.packets_sent = 0
        self.bytes_sent: Bytes = 0
        self.packets_lost = 0
        # Hoisted once: the per-send cost of the CoDel time hint is a
        # pointer test instead of a hasattr() call.
        self._set_now = getattr(self.queue, "set_now", None)
        if batch is None:
            batch = os.environ.get(
                "REPRO_LINK_BATCH", "").strip().lower() in ("1", "on", "true", "yes")
        self._batch = bool(batch) and self.batch_eligible
        # Metric handles are resolved once here so the per-packet cost of
        # instrumentation is a single ``is not None`` test when disabled.
        self.obs = sim.obs
        if self.obs is not None:
            m = self.obs.metrics
            self._m_bytes = m.counter("link.bytes_sent", link=name)
            self._m_drops = m.counter("link.drops", link=name)
            self._m_qlen = m.histogram("link.queue_bytes", link=name)

    @property
    def batch_eligible(self) -> bool:
        """Whether batched drain would preserve semantics on this link.

        Requires a fixed rate (finish times computable in advance), no
        jitter (samples are drawn with the current clock), and a plain
        drop-tail queue (AQM drop decisions depend on per-packet pop
        times).  Bernoulli loss is fine: draws happen in serialisation
        order either way, so the RNG stream is unchanged.
        """
        return (type(self.bandwidth) is ConstantBandwidth
                and self.jitter is None
                and type(self.queue) is DropTailQueue)

    @property
    def batch_active(self) -> bool:
        """True when this link is actually draining in batched mode."""
        return self._batch

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Offer a packet to the link; False means the queue dropped it."""
        if self._batch:
            # Release phantom holds whose serialisation has started so the
            # drop decision below sees the classic path's exact occupancy.
            self.queue.settle(self.sim.now)
        elif self._set_now is not None:
            self._set_now(self.sim.now)
        if not self.queue.push(packet):
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.note_network_drop(f"{self.name}: queue full")
            if self.obs is not None:
                self._note_drop(packet, "queue_full")
            return False
        if self.obs is not None:
            self._m_qlen.observe(self.queue.bytes_queued)
        if not self._busy:
            self._start_next()
        return True

    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        if self._batch:
            self._drain_batch()
            return
        drops_before = self.queue.drops
        packet = self.queue.pop(self.sim.now)
        if self.queue.drops > drops_before:
            # AQM (CoDel) head drops happen inside pop().
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.note_network_drop(
                    f"{self.name}: AQM drop", self.queue.drops - drops_before)
            if self.obs is not None:
                self._m_drops.add(self.queue.drops - drops_before)
                self.obs.emit(self.sim.now, obsrec.PKT_DROP, -1,
                              link=self.name, reason="aqm",
                              count=self.queue.drops - drops_before)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        rate = self.bandwidth.rate_at(self.sim.now)
        tx_time = packet.size / rate
        self.sim.schedule(tx_time, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self.packets_sent += 1
        self.bytes_sent += packet.size
        if self.obs is not None:
            self._m_bytes.add(packet.size)
        if self.loss is not None and self.loss.drops():
            self.packets_lost += 1
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.note_network_drop(f"{self.name}: random loss")
            if self.obs is not None:
                self._note_drop(packet, "random_loss")
            # The packet dies mid-path: pooled packets rejoin the free
            # list here instead of waiting for end-host delivery that
            # will never come (refcount-guarded).
            POOL.release(packet)
        else:
            prop = self.delay
            if self.jitter is not None:
                prop += self.jitter.sample(self.sim.now)
            # Jitter must not reorder: real-path delay variation comes from
            # queueing, which preserves FIFO order.  Clamp each arrival to
            # be no earlier than the previous one.
            arrival = max(self.sim.now + prop, self._last_arrival)
            self._last_arrival = arrival
            self.sim.schedule_at(arrival, self.dst.receive, packet)
        self._start_next()

    def _drain_batch(self) -> None:
        """Serialise everything queued right now in a single event.

        A FIFO work-conserving link's finish times are fully determined
        once it goes busy: ``finish_i = finish_{i-1} + size_i/rate`` —
        the accumulation below produces the identical floats (same
        operand order) as the classic per-packet schedule.  Each drained
        packet's bytes are re-held in the queue until its serialisation
        start (the classic pop instant), so arriving traffic sees the
        exact same occupancy and drop decisions.  The single follow-up
        event at the busy period's end re-drains whatever queued up
        meanwhile, which is also exactly when the classic path would
        have started serialising it.
        """
        sim = self.sim
        queue = self.queue
        t = sim.now
        queue.settle(t)
        packet = queue.pop(t)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        obs = self.obs
        loss = self.loss
        delay = self.delay
        rate = self.bandwidth.rate
        is_head = True
        while packet is not None:
            start = t
            size = packet.size
            t = t + size / rate
            self.packets_sent += 1
            self.bytes_sent += size
            if is_head:
                # The head packet's serialisation starts now — the classic
                # path pops it immediately, so no hold is needed.
                is_head = False
            else:
                # Its buffer bytes stay occupied until serialisation
                # starts at ``start``.
                queue.hold(start, size)
            if obs is not None:
                self._m_bytes.add(size)
            if loss is not None and loss.drops():
                self.packets_lost += 1
                if sim.sanitizer is not None:
                    sim.sanitizer.note_network_drop(f"{self.name}: random loss")
                if obs is not None:
                    self._note_drop(packet, "random_loss", when=t)
                # Mid-path death: recycle (see _finish_transmission).
                POOL.release(packet)
            else:
                arrival = t + delay
                last = self._last_arrival
                if arrival < last:
                    arrival = last
                self._last_arrival = arrival
                sim.schedule_at(arrival, self.dst.receive, packet)
            packet = queue.pop(t)
        sim.schedule_at(t, self._drain_batch)

    def _note_drop(self, packet: Packet, reason: str,
                   when: Optional[Seconds] = None) -> None:
        self._m_drops.add(1)
        self.obs.emit(self.sim.now if when is None else when,
                      obsrec.PKT_DROP, packet.flow_id,
                      link=self.name, reason=reason, seq=packet.seq,
                      size=packet.size)

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._busy

    def utilization_rate(self) -> BytesPerSec:
        """Mean bytes/second pushed through the link so far."""
        if self.sim.now <= 0.0:
            return 0.0
        return self.bytes_sent / self.sim.now
