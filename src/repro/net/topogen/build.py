"""Instantiate a :class:`TopologySpec` into live simulator objects.

:func:`build_topology` validates the spec, creates hosts and (strict)
routers, realises every directed link with its queue discipline and
netem impairments, and installs SPF forwarding tables.  Stochastic link
components draw from named :class:`repro.sim.rng.RngRegistry` streams
(``jitter:<spec>:<src>-><dst>`` etc.), so two builds from the same seed
are identical and adding a link never perturbs another link's stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.link import Link
from repro.net.netem import (
    ConstantBandwidth,
    JitterModel,
    LossModel,
    RandomWalkBandwidth,
)
from repro.net.node import Host, Router
from repro.net.queue import CoDelQueue, DropTailQueue
from repro.net.topogen.routing import spf_routes
from repro.net.topogen.spec import (
    UNSHAPED_BUFFER,
    LinkSpec,
    TopologySpec,
    TopologySpecError,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


@dataclass
class BuiltTopology:
    """Handles to every component of a built topogen network."""

    sim: Simulator
    spec: TopologySpec
    hosts: Dict[str, Host]
    routers: Dict[str, Router]
    links: Dict[Tuple[str, str], Link]
    routes: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def node(self, name: str):
        if name in self.hosts:
            return self.hosts[name]
        return self.routers[name]

    def path_links(self, src_host: str, dst_host: str) -> List[Link]:
        """The links a packet from ``src_host`` to ``dst_host`` traverses."""
        if src_host not in self.hosts:
            raise KeyError(f"unknown host {src_host!r}")
        uplink_key = self._uplink_key(src_host)
        path = [self.links[uplink_key]]
        current = uplink_key[1]
        hops = 0
        while current != dst_host:
            table = self.routes.get(current)
            if table is None or dst_host not in table:
                raise TopologySpecError(
                    f"{self.spec.name}: no route from {current} to "
                    f"{dst_host}")
            nxt = table[dst_host]
            path.append(self.links[(current, nxt)])
            current = nxt
            hops += 1
            if hops > len(self.spec.nodes):
                raise TopologySpecError(
                    f"{self.spec.name}: routing loop toward {dst_host}")
        return path

    def _uplink_key(self, host: str) -> Tuple[str, str]:
        for key in self.links:
            if key[0] == host:
                return key
        raise TopologySpecError(f"{self.spec.name}: host {host} has no uplink")

    def bottleneck_link(self, src_host: str, dst_host: str) -> Link:
        """The narrowest link on the forward path (first on ties)."""
        path = self.path_links(src_host, dst_host)
        return min(path, key=lambda link: link.bandwidth.mean_rate())

    def path_rtt(self, src_host: str, dst_host: str) -> float:
        """Two-way propagation delay between two hosts."""
        forward = sum(l.delay for l in self.path_links(src_host, dst_host))
        back = sum(l.delay for l in self.path_links(dst_host, src_host))
        return forward + back

    @property
    def flow_queue(self) -> DropTailQueue:
        """The first foreground flow's bottleneck buffer (telemetry hook)."""
        if not self.spec.flows:
            raise TopologySpecError(f"{self.spec.name}: spec declares no flows")
        flow = self.spec.flows[0]
        return self.bottleneck_link(flow.server, flow.client).queue


def _make_queue(link: LinkSpec):
    capacity = (link.buffer_bytes if link.buffer_bytes is not None
                else UNSHAPED_BUFFER)
    qname = f"{link.src}->{link.dst}.q"
    if link.queue == "codel":
        return CoDelQueue(capacity, name=qname)
    return DropTailQueue(capacity, name=qname)


def _make_bandwidth(spec_name: str, link: LinkSpec, rng: RngRegistry):
    if link.bw_variation <= 0:
        return ConstantBandwidth(link.rate)
    stream = rng.stream(f"bw:{spec_name}:{link.src}->{link.dst}")
    return RandomWalkBandwidth(link.rate, span=link.bw_variation, rng=stream)


def build_topology(sim: Simulator, spec: TopologySpec,
                   rng: Optional[RngRegistry] = None,
                   strict: bool = True) -> BuiltTopology:
    """Build ``spec`` in ``sim`` and wire SPF forwarding tables.

    Routers are ``strict`` by default: a spec-built network forwarding a
    packet it has no route for is a routing/builder bug and raises
    :class:`repro.sim.SimulationError` instead of silently dropping.
    """
    spec.validate()
    rng = rng or RngRegistry(0)
    hosts: Dict[str, Host] = {}
    routers: Dict[str, Router] = {}
    for node in spec.nodes:
        if node.kind == "host":
            hosts[node.name] = Host(node.name)
        else:
            routers[node.name] = Router(node.name, strict=strict)

    links: Dict[Tuple[str, str], Link] = {}
    for link_spec in spec.links:
        dst_obj = (hosts.get(link_spec.dst) or routers[link_spec.dst])
        jitter = (JitterModel(link_spec.jitter,
                              rng.stream(f"jitter:{spec.name}:"
                                         f"{link_spec.src}->{link_spec.dst}"))
                  if link_spec.jitter > 0 else None)
        loss = (LossModel(link_spec.loss,
                          rng.stream(f"loss:{spec.name}:"
                                     f"{link_spec.src}->{link_spec.dst}"))
                if link_spec.loss > 0 else None)
        links[link_spec.key] = Link(
            sim, dst_obj, _make_bandwidth(spec.name, link_spec, rng),
            link_spec.delay, queue=_make_queue(link_spec),
            jitter=jitter, loss=loss,
            name=f"{link_spec.src}->{link_spec.dst}")

    for (src, dst), link in links.items():
        if src in hosts:
            hosts[src].uplink = link

    routes = spf_routes(spec)
    for router_name, table in routes.items():
        router = routers[router_name]
        for host_name, next_hop in table.items():
            link = links.get((router_name, next_hop))
            if link is None:
                raise TopologySpecError(
                    f"{spec.name}: SPF chose next hop {next_hop} from "
                    f"{router_name} but the spec has no such link")
            router.add_route(host_name, link)

    return BuiltTopology(sim=sim, spec=spec, hosts=hosts, routers=routers,
                         links=links, routes=routes)
