"""Declarative topology/scenario generation beyond the dumbbell.

``repro.net.topogen`` turns a pure-data :class:`~repro.net.topogen.spec.TopologySpec`
— nodes, directed links with rate/delay/jitter/loss/queue discipline,
foreground flow endpoints, and cross-traffic placement — into a built
network of :class:`~repro.net.node.Host`/:class:`~repro.net.node.Router`
objects with forwarding tables computed by deterministic link-state SPF
(:mod:`~repro.net.topogen.routing`).  Specs are content-hashable and
JSON-round-trippable, so they embed by value into campaign
:class:`~repro.campaign.spec.JobSpec` params and cache like any other
job input.

Builders (:mod:`~repro.net.topogen.builders`) cover the scenario
classes the SUSS evaluation bed needs: parking-lot chains,
multi-bottleneck paths, routed multi-path meshes, and LFN/satellite
profiles where slow-start dominates.
"""

from repro.net.topogen.build import BuiltTopology, build_topology
from repro.net.topogen.builders import (
    SCENARIO_CLASSES,
    TOPO_SCENARIOS,
    get_topo_scenario,
    lfn_satellite,
    mesh_diamond,
    multi_bottleneck,
    parking_lot,
    registered_specs,
)
from repro.net.topogen.routing import routing_table_json, spf_routes
from repro.net.topogen.spec import (
    CrossTrafficPlan,
    FlowPath,
    LinkSpec,
    NodeSpec,
    TopologySpec,
)

__all__ = [
    "BuiltTopology",
    "CrossTrafficPlan",
    "FlowPath",
    "LinkSpec",
    "NodeSpec",
    "SCENARIO_CLASSES",
    "TOPO_SCENARIOS",
    "TopologySpec",
    "build_topology",
    "get_topo_scenario",
    "lfn_satellite",
    "mesh_diamond",
    "multi_bottleneck",
    "parking_lot",
    "registered_specs",
    "routing_table_json",
    "spf_routes",
]
