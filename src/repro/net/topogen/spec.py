"""The declarative scenario/topology spec: pure data, content-hashable.

A :class:`TopologySpec` is the unit the rest of the stack passes around:
builders produce one, :func:`repro.net.topogen.build.build_topology`
instantiates one, campaign jobs embed one by value (its canonical dict),
and the golden gate (``tests/golden/topogen_specs.json``) pins each
registered spec's canonical JSON against drift.  Everything in a spec is
JSON-serialisable; nothing here touches the simulator.

Conventions:

* links are **directed** — a duplex cable is two :class:`LinkSpec`\\ s,
  which is what lets the reverse (ACK) direction carry its own buffer
  and rate, exactly as :func:`repro.net.topology.build_dumbbell` does;
* every host has exactly one outgoing link (its uplink) and at least one
  incoming link; routers forward by SPF next hops;
* all rates are bytes/second, delays are seconds (one-way), buffers are
  bytes — the same units as :mod:`repro.net.link`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.units import Bytes, BytesPerSec, Seconds

#: queue disciplines a LinkSpec may name (mirrors repro.net.queue).
QUEUE_DISCIPLINES = ("droptail", "codel")

#: traffic mixes a CrossTrafficPlan may name (repro.workloads.mixes).
TRAFFIC_MIXES = ("web", "video", "rpc")

#: effectively-infinite buffer used when a LinkSpec leaves buffer_bytes
#: unset (access and reverse links that must never be the bottleneck).
UNSHAPED_BUFFER: Bytes = 10**9


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace, no NaN).

    Local twin of :func:`repro.campaign.spec.canonical_json` — topogen
    sits in the net layer, below campaign, so it cannot import it.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


class TopologySpecError(ValueError):
    """A spec that cannot describe a buildable network."""


@dataclass(frozen=True)
class NodeSpec:
    """One node: an end host (transport endpoints) or a router."""

    name: str
    kind: str = "host"  # "host" | "router"

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologySpecError("node name must be non-empty")
        if self.kind not in ("host", "router"):
            raise TopologySpecError(
                f"node {self.name!r}: unknown kind {self.kind!r} "
                f"(host or router)")


@dataclass(frozen=True)
class LinkSpec:
    """One *direction* of a link: src -> dst.

    ``buffer_bytes=None`` means an effectively-infinite drop-tail buffer
    (:data:`UNSHAPED_BUFFER`) — for access/reverse links.  A shaped
    bottleneck sets an explicit buffer and optionally jitter, Bernoulli
    loss, a bandwidth-variation span (``bw_variation`` feeds
    :class:`repro.net.netem.RandomWalkBandwidth`), or CoDel.
    """

    src: str
    dst: str
    rate: BytesPerSec
    delay: Seconds
    buffer_bytes: Optional[Bytes] = None
    queue: str = "droptail"
    jitter: Seconds = 0.0
    loss: float = 0.0
    bw_variation: float = 0.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise TopologySpecError(f"link {self.src}->{self.dst}: self-loop")
        if not self.rate > 0:
            raise TopologySpecError(
                f"link {self.src}->{self.dst}: rate must be positive")
        if self.delay < 0:
            raise TopologySpecError(
                f"link {self.src}->{self.dst}: delay must be non-negative")
        if self.buffer_bytes is not None and self.buffer_bytes <= 0:
            raise TopologySpecError(
                f"link {self.src}->{self.dst}: buffer_bytes must be positive")
        if self.queue not in QUEUE_DISCIPLINES:
            raise TopologySpecError(
                f"link {self.src}->{self.dst}: unknown queue {self.queue!r} "
                f"(known: {', '.join(QUEUE_DISCIPLINES)})")
        if self.jitter < 0:
            raise TopologySpecError(
                f"link {self.src}->{self.dst}: jitter must be non-negative")
        if not 0.0 <= self.loss < 1.0:
            raise TopologySpecError(
                f"link {self.src}->{self.dst}: loss must be in [0, 1)")
        if not 0.0 <= self.bw_variation < 1.0:
            raise TopologySpecError(
                f"link {self.src}->{self.dst}: bw_variation must be in [0, 1)")

    @property
    def key(self) -> Tuple[str, str]:
        return (self.src, self.dst)


@dataclass(frozen=True)
class FlowPath:
    """A foreground flow's endpoints (data flows server -> client)."""

    server: str
    client: str

    def __post_init__(self) -> None:
        if self.server == self.client:
            raise TopologySpecError(
                f"flow {self.server}->{self.client}: endpoints must differ")


@dataclass(frozen=True)
class CrossTrafficPlan:
    """Background load on one host pair, drawn from a named traffic mix.

    ``load`` is the offered load as a fraction of the narrowest link on
    the pair's forward path; the builder scales arrival rates to it.
    """

    server: str
    client: str
    mix: str = "web"
    load: float = 0.2

    def __post_init__(self) -> None:
        if self.mix not in TRAFFIC_MIXES:
            raise TopologySpecError(
                f"cross traffic {self.server}->{self.client}: unknown mix "
                f"{self.mix!r} (known: {', '.join(TRAFFIC_MIXES)})")
        if not 0.0 < self.load < 1.0:
            raise TopologySpecError(
                f"cross traffic {self.server}->{self.client}: load must be "
                f"in (0, 1)")


@dataclass(frozen=True)
class TopologySpec:
    """A complete, buildable scenario: topology + flows + traffic.

    ``scenario_class`` is the taxonomy key claims and smoke gates group
    by (``parking_lot`` / ``multi_bottleneck`` / ``mesh`` /
    ``lfn_satellite`` / free-form).  :meth:`validate` checks structural
    soundness; :meth:`content_hash` is a SHA-256 over the canonical
    JSON, so two specs collide exactly when they describe the same
    network and workload.
    """

    name: str
    scenario_class: str
    nodes: Tuple[NodeSpec, ...]
    links: Tuple[LinkSpec, ...]
    flows: Tuple[FlowPath, ...] = ()
    cross_traffic: Tuple[CrossTrafficPlan, ...] = ()

    # -- structural validation -----------------------------------------
    def validate(self) -> "TopologySpec":
        """Raise :class:`TopologySpecError` on structural problems."""
        if not self.name:
            raise TopologySpecError("spec name must be non-empty")
        if not self.scenario_class:
            raise TopologySpecError(f"{self.name}: scenario_class required")
        names = [n.name for n in self.nodes]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise TopologySpecError(
                f"{self.name}: duplicate node names {dupes}")
        kinds = {n.name: n.kind for n in self.nodes}
        seen_links = set()
        out_degree: Dict[str, int] = {}
        in_degree: Dict[str, int] = {}
        for link in self.links:
            for end in (link.src, link.dst):
                if end not in kinds:
                    raise TopologySpecError(
                        f"{self.name}: link {link.src}->{link.dst} names "
                        f"unknown node {end!r}")
            if link.key in seen_links:
                raise TopologySpecError(
                    f"{self.name}: duplicate link {link.src}->{link.dst}")
            seen_links.add(link.key)
            out_degree[link.src] = out_degree.get(link.src, 0) + 1
            in_degree[link.dst] = in_degree.get(link.dst, 0) + 1
        for node in self.nodes:
            if node.kind != "host":
                continue
            if out_degree.get(node.name, 0) != 1:
                raise TopologySpecError(
                    f"{self.name}: host {node.name} needs exactly one "
                    f"outgoing link (its uplink), has "
                    f"{out_degree.get(node.name, 0)}")
            if in_degree.get(node.name, 0) != 1:
                raise TopologySpecError(
                    f"{self.name}: host {node.name} needs exactly one "
                    f"incoming link, has {in_degree.get(node.name, 0)}")
        for flow in self.flows:
            for end in (flow.server, flow.client):
                if kinds.get(end) != "host":
                    raise TopologySpecError(
                        f"{self.name}: flow endpoint {end!r} is not a host")
        for plan in self.cross_traffic:
            for end in (plan.server, plan.client):
                if kinds.get(end) != "host":
                    raise TopologySpecError(
                        f"{self.name}: cross-traffic endpoint {end!r} is "
                        f"not a host")
        self._check_reachability(kinds)
        return self

    def _check_reachability(self, kinds: Mapping[str, str]) -> None:
        """Every flow/cross-traffic pair must be connected both ways
        (data forward, ACKs back)."""
        adjacency: Dict[str, List[str]] = {}
        for link in self.links:
            adjacency.setdefault(link.src, []).append(link.dst)
        pairs = [(f.server, f.client) for f in self.flows]
        pairs += [(p.server, p.client) for p in self.cross_traffic]
        for server, client in pairs:
            for src, dst in ((server, client), (client, server)):
                if not self._reaches(adjacency, src, dst):
                    raise TopologySpecError(
                        f"{self.name}: no directed path {src} -> {dst}")

    @staticmethod
    def _reaches(adjacency: Mapping[str, Sequence[str]], src: str,
                 dst: str) -> bool:
        seen = {src}
        frontier = [src]
        while frontier:
            node = frontier.pop()
            if node == dst:
                return True
            for nxt in adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    # -- identity -------------------------------------------------------
    def canonical(self) -> Dict[str, Any]:
        """JSON-serialisable dict in canonical (sorted, tuple-free) form."""
        return {
            "name": self.name,
            "scenario_class": self.scenario_class,
            "nodes": [asdict(n) for n in
                      sorted(self.nodes, key=lambda n: n.name)],
            "links": [asdict(l) for l in
                      sorted(self.links, key=lambda l: l.key)],
            "flows": [asdict(f) for f in self.flows],
            "cross_traffic": [asdict(p) for p in self.cross_traffic],
        }

    def to_json(self) -> str:
        return canonical_json(self.canonical())

    @property
    def content_hash(self) -> str:
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        return cls(
            name=data["name"],
            scenario_class=data["scenario_class"],
            nodes=tuple(NodeSpec(**n) for n in data["nodes"]),
            links=tuple(LinkSpec(**l) for l in data["links"]),
            flows=tuple(FlowPath(**f) for f in data.get("flows", ())),
            cross_traffic=tuple(CrossTrafficPlan(**p)
                                for p in data.get("cross_traffic", ())),
        ).validate()

    @classmethod
    def from_json(cls, text: str) -> "TopologySpec":
        return cls.from_dict(json.loads(text))

    # -- convenience ----------------------------------------------------
    def hosts(self) -> List[str]:
        return sorted(n.name for n in self.nodes if n.kind == "host")

    def router_names(self) -> List[str]:
        return sorted(n.name for n in self.nodes if n.kind == "router")

    def link_map(self) -> Dict[Tuple[str, str], LinkSpec]:
        return {l.key: l for l in self.links}
