"""Deterministic link-state SPF next-hop computation.

Each router runs Dijkstra over the spec's directed link graph with
propagation delay as the metric, exactly like an OSPF-style link-state
protocol that has converged.  Ties are broken deterministically —
first on hop count, then on the lexicographic name of the candidate
predecessor path — so the same spec always yields byte-identical
forwarding tables (:func:`routing_table_json` is the canonical form the
determinism test compares).

The output maps ``router -> {destination host -> next-hop node}``;
:func:`repro.net.topogen.build.build_topology` turns next-hop node
names into :meth:`repro.net.node.Router.add_route` entries on the
corresponding outgoing links.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.core.units import Seconds
from repro.net.topogen.spec import TopologySpec, canonical_json


def _adjacency(spec: TopologySpec) -> Dict[str, List[Tuple[str, Seconds]]]:
    """node -> [(neighbor, delay)] with neighbors in sorted order."""
    adjacency: Dict[str, List[Tuple[str, Seconds]]] = {
        n.name: [] for n in spec.nodes}
    for link in spec.links:
        adjacency[link.src].append((link.dst, link.delay))
    for edges in adjacency.values():
        edges.sort()
    return adjacency


def _dijkstra(adjacency: Dict[str, List[Tuple[str, Seconds]]],
              source: str, transit: frozenset) -> Dict[str, Tuple[float, int, str]]:
    """Shortest paths from ``source``: node -> (delay, hops, first_hop).

    ``first_hop`` is the neighbor of ``source`` on the winning path —
    the value a forwarding table needs.  The priority key is
    ``(delay, hops, first_hop, node)``: equal-delay paths prefer fewer
    hops, then the lexicographically smallest next hop, making the
    tables a pure function of the spec with no dict-order dependence.

    Only ``transit`` nodes (routers) are expanded: a host terminates a
    path — real hosts do not forward other nodes' traffic even when the
    graph gives them an uplink that would shortcut somewhere.
    """
    best: Dict[str, Tuple[float, int, str]] = {}
    # (delay, hops, first_hop, node)
    frontier: List[Tuple[float, int, str, str]] = []
    for neighbor, delay in adjacency.get(source, ()):
        heapq.heappush(frontier, (delay, 1, neighbor, neighbor))
    while frontier:
        delay, hops, first_hop, node = heapq.heappop(frontier)
        if node in best:
            continue
        best[node] = (delay, hops, first_hop)
        if node not in transit:
            continue
        for neighbor, edge_delay in adjacency.get(node, ()):
            if neighbor not in best and neighbor != source:
                heapq.heappush(frontier, (delay + edge_delay, hops + 1,
                                          first_hop, neighbor))
    return best


def spf_routes(spec: TopologySpec) -> Dict[str, Dict[str, str]]:
    """Forwarding tables: ``router -> {host destination -> next hop}``.

    Only destinations that are reachable appear; unreachable hosts are
    simply absent (the spec validator already guarantees every *flow's*
    pair is connected, and a strict :class:`~repro.net.node.Router`
    raises on anything else at simulation time).
    """
    adjacency = _adjacency(spec)
    hosts = spec.hosts()
    transit = frozenset(spec.router_names())
    tables: Dict[str, Dict[str, str]] = {}
    for router in spec.router_names():
        paths = _dijkstra(adjacency, router, transit)
        table = {host: paths[host][2] for host in hosts if host in paths}
        tables[router] = table
    return tables


def routing_table_json(spec: TopologySpec) -> str:
    """Canonical JSON of the SPF tables (the byte-identity surface)."""
    return canonical_json(spf_routes(spec))
