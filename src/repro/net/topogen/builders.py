"""Scenario-class builders and the registered scenario catalogue.

Four scenario classes cover the SUSS evaluation bed beyond the
dumbbell:

* **parking_lot** — a chain of equal-rate hops with a foreground flow
  traversing all of them and per-hop cross traffic competing on each
  segment (the classic multi-hop fairness stressor);
* **multi_bottleneck** — a chain whose narrow links differ in rate, so
  the foreground flow crosses more than one genuine bottleneck;
* **mesh** — a routed diamond with two disjoint router paths whose
  delays differ; SPF steers each host pair over its shortest path, so
  two foreground flows share only the edges of the diamond;
* **lfn_satellite** — long-fat-network profiles (≥300 ms RTT, high
  BDP) where slow-start dominates FCT and SUSS's rounds-saved should
  be largest (GEO satellite at ~560 ms RTT is the extreme point).

``TOPO_SCENARIOS`` maps registered scenario names to zero-argument
builders; the canonical JSON of every registered spec is pinned in
``tests/golden/topogen_specs.json``, so any drift — parameter tweaks,
new fields, builder edits — fails loudly and must re-record the golden.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.core.units import MBPS, Bytes, BytesPerSec, Seconds
from repro.net.topogen.spec import (
    CrossTrafficPlan,
    FlowPath,
    LinkSpec,
    NodeSpec,
    TopologySpec,
)

#: the scenario-class taxonomy (claims and smoke gates group by these).
SCENARIO_CLASSES = ("parking_lot", "multi_bottleneck", "mesh",
                    "lfn_satellite")

#: negligible propagation of a host's access cable (hosts sit next to
#: their router, as in build_dumbbell's server side).
ACCESS_DELAY: Seconds = 1e-6

#: access links run at this multiple of the fastest shaped link so they
#: never bottleneck (same convention as build_dumbbell).
ACCESS_RATE_FACTOR = 10.0


def _bdp(rate: BytesPerSec, rtt: Seconds) -> Bytes:
    return max(int(rate * rtt), 2 * 1500)


def _host_pair(nodes: List[NodeSpec], links: List[LinkSpec], host: str,
               router: str, rate: BytesPerSec,
               delay: Seconds = ACCESS_DELAY) -> None:
    """Attach ``host`` to ``router`` with an unshaped duplex cable."""
    nodes.append(NodeSpec(host, "host"))
    links.append(LinkSpec(host, router, rate=rate, delay=delay))
    links.append(LinkSpec(router, host, rate=rate, delay=delay))


def _duplex(links: List[LinkSpec], a: str, b: str, rate: BytesPerSec,
            delay: Seconds, buffer_bytes: Bytes, *, jitter: Seconds = 0.0,
            loss: float = 0.0, bw_variation: float = 0.0) -> None:
    """A shaped forward link plus an unshaped same-rate reverse link."""
    links.append(LinkSpec(a, b, rate=rate, delay=delay,
                          buffer_bytes=buffer_bytes, jitter=jitter,
                          loss=loss, bw_variation=bw_variation))
    links.append(LinkSpec(b, a, rate=rate, delay=delay))


def parking_lot(n_hops: int = 3, hop_rate: BytesPerSec = 25 * MBPS,
                hop_delay: Seconds = 0.010, buffer_bdp: float = 1.0,
                cross_load: float = 0.2,
                name: str = "") -> TopologySpec:
    """A chain of ``n_hops`` equal bottlenecks with per-hop cross traffic.

    The foreground flow (flow 0) runs end to end; each hop carries one
    web-mix cross-traffic pair that enters at hop ``i`` and leaves at
    hop ``i + 1``, so every segment is independently loaded.
    """
    if n_hops < 2:
        raise ValueError("a parking lot needs at least 2 hops")
    routers = [f"r{i}" for i in range(n_hops + 1)]
    nodes = [NodeSpec(r, "router") for r in routers]
    links: List[LinkSpec] = []
    access_rate = ACCESS_RATE_FACTOR * hop_rate
    rtt = 2 * n_hops * hop_delay
    buffer_bytes = max(int(buffer_bdp * _bdp(hop_rate, rtt)), 3000)
    for i in range(n_hops):
        _duplex(links, routers[i], routers[i + 1], hop_rate, hop_delay,
                buffer_bytes)
    _host_pair(nodes, links, "s0", routers[0], access_rate)
    _host_pair(nodes, links, "c0", routers[-1], access_rate)
    flows = [FlowPath("s0", "c0")]
    cross: List[CrossTrafficPlan] = []
    for i in range(n_hops):
        _host_pair(nodes, links, f"xs{i}", routers[i], access_rate)
        _host_pair(nodes, links, f"xc{i}", routers[i + 1], access_rate)
        cross.append(CrossTrafficPlan(f"xs{i}", f"xc{i}", mix="web",
                                      load=cross_load))
    return TopologySpec(
        name=name or f"parking-lot-{n_hops}",
        scenario_class="parking_lot", nodes=tuple(nodes),
        links=tuple(links), flows=tuple(flows),
        cross_traffic=tuple(cross)).validate()


def multi_bottleneck(rates: Sequence[BytesPerSec] = (100 * MBPS, 20 * MBPS,
                                                     80 * MBPS, 15 * MBPS),
                     hop_delay: Seconds = 0.012, buffer_bdp: float = 1.0,
                     cross_load: float = 0.15,
                     name: str = "") -> TopologySpec:
    """A chain whose hops differ in rate: several true bottlenecks.

    The narrowest hop sets the foreground flow's fair share; an RPC-mix
    cross-traffic pair loads the *second*-narrowest hop so the flow is
    squeezed at two distinct places.
    """
    if len(rates) < 2:
        raise ValueError("need at least two hops")
    n_hops = len(rates)
    routers = [f"r{i}" for i in range(n_hops + 1)]
    nodes = [NodeSpec(r, "router") for r in routers]
    links: List[LinkSpec] = []
    access_rate = ACCESS_RATE_FACTOR * max(rates)
    rtt = 2 * n_hops * hop_delay
    for i, rate in enumerate(rates):
        buffer_bytes = max(int(buffer_bdp * _bdp(rate, rtt)), 3000)
        _duplex(links, routers[i], routers[i + 1], rate, hop_delay,
                buffer_bytes)
    _host_pair(nodes, links, "s0", routers[0], access_rate)
    _host_pair(nodes, links, "c0", routers[-1], access_rate)
    # Load the second-narrowest hop with RPC bursts.
    order = sorted(range(n_hops), key=lambda i: (rates[i], i))
    hop = order[1]
    _host_pair(nodes, links, "xs0", routers[hop], access_rate)
    _host_pair(nodes, links, "xc0", routers[hop + 1], access_rate)
    return TopologySpec(
        name=name or f"multi-bottleneck-{n_hops}",
        scenario_class="multi_bottleneck", nodes=tuple(nodes),
        links=tuple(links), flows=(FlowPath("s0", "c0"),),
        cross_traffic=(CrossTrafficPlan("xs0", "xc0", mix="rpc",
                                        load=cross_load),)).validate()


def mesh_diamond(fast_delay: Seconds = 0.008, slow_delay: Seconds = 0.020,
                 rate: BytesPerSec = 40 * MBPS, buffer_bdp: float = 1.0,
                 cross_load: float = 0.15, name: str = "") -> TopologySpec:
    """A routed diamond: two disjoint equal-rate paths, different delays.

    SPF sends ``s0 -> c0`` over the fast branch (``ra -> rb -> rd``).
    A second pair homes on the slow branch's middle router (``rc``), so
    its traffic shares only the diamond's entry/exit with flow 0 —
    multi-path routing with partial overlap, not a shared chain.
    """
    nodes = [NodeSpec(r, "router") for r in ("ra", "rb", "rc", "rd")]
    links: List[LinkSpec] = []
    access_rate = ACCESS_RATE_FACTOR * rate
    rtt = 2 * (fast_delay * 2)
    buffer_bytes = max(int(buffer_bdp * _bdp(rate, rtt)), 3000)
    _duplex(links, "ra", "rb", rate, fast_delay, buffer_bytes)
    _duplex(links, "rb", "rd", rate, fast_delay, buffer_bytes)
    _duplex(links, "ra", "rc", rate, slow_delay, buffer_bytes)
    _duplex(links, "rc", "rd", rate, slow_delay, buffer_bytes)
    _host_pair(nodes, links, "s0", "ra", access_rate)
    _host_pair(nodes, links, "c0", "rd", access_rate)
    # The second pair's client homes on the slow branch's router.
    _host_pair(nodes, links, "s1", "ra", access_rate)
    _host_pair(nodes, links, "c1", "rc", access_rate)
    return TopologySpec(
        name=name or "mesh-diamond", scenario_class="mesh",
        nodes=tuple(nodes), links=tuple(links),
        flows=(FlowPath("s0", "c0"), FlowPath("s1", "c1")),
        cross_traffic=(CrossTrafficPlan("s1", "c1", mix="web",
                                        load=cross_load),)).validate()


def lfn_satellite(rtt: Seconds = 0.560, rate: BytesPerSec = 50 * MBPS,
                  buffer_bdp: float = 1.0, jitter: Seconds = 0.001,
                  name: str = "") -> TopologySpec:
    """A long-fat/satellite path: ≥300 ms RTT at high BDP.

    The default is a GEO-satellite-like 560 ms RTT at 50 Mbps (a ~3.5 MB
    BDP — hundreds of slow-start rounds' worth of window to grow), the
    profile where SUSS's compressed slow start should save the most
    rounds.  The satellite hop carries mild jitter; access cables are
    clean.
    """
    if rtt < 0.300:
        raise ValueError("an LFN/satellite profile needs rtt >= 300 ms")
    hop_delay = rtt / 2
    nodes = [NodeSpec(r, "router") for r in ("rg", "rs")]
    links: List[LinkSpec] = []
    access_rate = ACCESS_RATE_FACTOR * rate
    buffer_bytes = max(int(buffer_bdp * _bdp(rate, rtt)), 3000)
    _duplex(links, "rg", "rs", rate, hop_delay, buffer_bytes,
            jitter=jitter)
    _host_pair(nodes, links, "s0", "rg", access_rate)
    _host_pair(nodes, links, "c0", "rs", access_rate)
    return TopologySpec(
        name=name or "lfn-satellite", scenario_class="lfn_satellite",
        nodes=tuple(nodes), links=tuple(links),
        flows=(FlowPath("s0", "c0"),)).validate()


#: registered scenario catalogue: name -> zero-argument builder.
TOPO_SCENARIOS: Dict[str, Callable[[], TopologySpec]] = {
    "parking-lot-3": lambda: parking_lot(3),
    "multi-bottleneck-4": lambda: multi_bottleneck(),
    "mesh-diamond": lambda: mesh_diamond(),
    "lfn-satellite": lambda: lfn_satellite(),
    "lfn-terrestrial": lambda: lfn_satellite(
        rtt=0.300, rate=100 * MBPS, jitter=0.0005, name="lfn-terrestrial"),
}


def get_topo_scenario(name: str) -> TopologySpec:
    """Build a registered scenario by name."""
    if name not in TOPO_SCENARIOS:
        known = ", ".join(sorted(TOPO_SCENARIOS))
        raise KeyError(f"unknown topo scenario {name!r}; known: {known}")
    return TOPO_SCENARIOS[name]()


def registered_specs() -> Dict[str, TopologySpec]:
    """All registered scenarios, built (sorted by name)."""
    return {name: TOPO_SCENARIOS[name]() for name in sorted(TOPO_SCENARIOS)}
