"""Network substrate: packets, queues, links, nodes, topologies, impairments."""

from repro.net.link import Link
from repro.net.netem import (
    BandwidthProfile,
    ConstantBandwidth,
    JitterModel,
    LossModel,
    RandomWalkBandwidth,
    SteppedBandwidth,
)
from repro.net.node import Host, Router
from repro.net.packet import DEFAULT_MSS, HEADER_BYTES, Packet, PacketKind
from repro.net.queue import CoDelQueue, DropTailQueue
from repro.net.topology import (
    BOTTLENECK_PROP_DELAY,
    Dumbbell,
    bdp_bytes,
    build_dumbbell,
    build_path,
)

__all__ = [
    "Link",
    "BandwidthProfile",
    "ConstantBandwidth",
    "SteppedBandwidth",
    "RandomWalkBandwidth",
    "JitterModel",
    "LossModel",
    "Host",
    "Router",
    "Packet",
    "PacketKind",
    "DEFAULT_MSS",
    "HEADER_BYTES",
    "DropTailQueue",
    "CoDelQueue",
    "Dumbbell",
    "bdp_bytes",
    "build_dumbbell",
    "build_path",
    "BOTTLENECK_PROP_DELAY",
]
