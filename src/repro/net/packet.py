"""Packet model.

A single :class:`Packet` class covers data segments, pure ACKs, and the two
control packets used by the simplified connection handshake.  Sizes are in
bytes and include a fixed IP+TCP header overhead so link serialisation and
buffer occupancy are realistic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

from repro.core.units import MSS, Bytes, Seconds

#: Fixed per-packet header overhead (IPv4 20 B + TCP 20 B + options 12 B).
HEADER_BYTES: Bytes = 52

#: Default maximum segment size (payload bytes), 1500 MTU minus headers.
DEFAULT_MSS: Bytes = MSS

_packet_ids = itertools.count(1)


class PacketKind(Enum):
    """Wire-level packet type."""

    DATA = "data"
    ACK = "ack"
    SYN = "syn"
    SYNACK = "synack"


@dataclass
class Packet:
    """A simulated network packet.

    Attributes:
        flow_id: identifier of the TCP connection this packet belongs to.
        src: name of the sending host.
        dst: name of the destination host (used for routing).
        kind: data / ack / handshake type.
        seq: first payload byte carried (data) or 0.
        payload: payload length in bytes (0 for ACKs and control packets).
        ack_seq: cumulative acknowledgement (next byte expected), ACKs only.
        sent_time: simulation time when the packet left the sender.
        ts_echo: for ACKs, the ``sent_time`` of the segment that triggered
            this ACK; ``None`` when that segment was a retransmission
            (Karn's algorithm — no RTT sample).
        retransmit: True when this data segment is a retransmission.
        sack: for ACKs, up to a few selective-acknowledgement blocks —
            ``((start, end), ...)`` intervals received above ``ack_seq``.
        ect: ECN-capable transport (data packets of an ECN connection).
        ce: congestion experienced — set by an ECN-marking queue.
        ece: ECN echo — set on ACKs until a CWR is seen (RFC 3168).
        cwr: congestion window reduced — sender's response to ECE.
    """

    flow_id: int
    src: str
    dst: str
    kind: PacketKind
    seq: int = 0
    payload: int = 0
    ack_seq: int = 0
    sent_time: Seconds = 0.0
    ts_echo: Optional[Seconds] = None
    retransmit: bool = False
    sack: Optional[Tuple[Tuple[int, int], ...]] = None
    ect: bool = False
    ce: bool = False
    ece: bool = False
    cwr: bool = False
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size(self) -> Bytes:
        """Total wire size in bytes (payload plus header overhead)."""
        return self.payload + HEADER_BYTES

    @property
    def end_seq(self) -> int:
        """One past the last payload byte carried by this segment."""
        return self.seq + self.payload

    @property
    def is_data(self) -> bool:
        return self.kind is PacketKind.DATA

    @property
    def is_ack(self) -> bool:
        return self.kind is PacketKind.ACK

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is PacketKind.DATA:
            body = f"seq={self.seq}..{self.end_seq}"
        elif self.kind is PacketKind.ACK:
            body = f"ack={self.ack_seq}"
        else:
            body = self.kind.value
        return f"<Packet f{self.flow_id} {self.src}->{self.dst} {body}>"
