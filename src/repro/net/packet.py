"""Packet model.

A single :class:`Packet` class covers data segments, pure ACKs, and the two
control packets used by the simplified connection handshake.  Sizes are in
bytes and include a fixed IP+TCP header overhead so link serialisation and
buffer occupancy are realistic.

Packet pooling
--------------
A dumbbell transfer allocates one :class:`Packet` per segment and per ACK
— the dominant allocation in the hot path.  :class:`PacketPool` recycles
delivered packets instead: the TCP endpoints acquire data/ACK packets
from the process-wide :data:`POOL`, and :meth:`repro.net.node.Host.receive`
releases them at end of life.  Recycling is *refcount-guarded*: a packet
is only returned to the free list when ``sys.getrefcount`` proves the
transient dispatch frames hold the last references, so code that retains
a packet (telemetry, test stubs, trace tooling) transparently keeps it —
the pool never aliases a live object.  Acquired packets always draw a
fresh ``packet_id`` from the same global counter as direct construction,
so the id stream is identical with pooling on, off (``REPRO_PACKET_POOL=0``),
or partially effective; golden traces cannot tell the difference.
"""

from __future__ import annotations

import itertools
import os
import sys
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from repro.core.units import MSS, Bytes, Seconds

#: Fixed per-packet header overhead (IPv4 20 B + TCP 20 B + options 12 B).
HEADER_BYTES: Bytes = 52

#: Default maximum segment size (payload bytes), 1500 MTU minus headers.
DEFAULT_MSS: Bytes = MSS

_packet_ids = itertools.count(1)


class PacketKind(Enum):
    """Wire-level packet type."""

    DATA = "data"
    ACK = "ack"
    SYN = "syn"
    SYNACK = "synack"


@dataclass(slots=True)
class Packet:
    """A simulated network packet.

    Attributes:
        flow_id: identifier of the TCP connection this packet belongs to.
        src: name of the sending host.
        dst: name of the destination host (used for routing).
        kind: data / ack / handshake type.
        seq: first payload byte carried (data) or 0.
        payload: payload length in bytes (0 for ACKs and control packets).
        ack_seq: cumulative acknowledgement (next byte expected), ACKs only.
        sent_time: simulation time when the packet left the sender.
        ts_echo: for ACKs, the ``sent_time`` of the segment that triggered
            this ACK; ``None`` when that segment was a retransmission
            (Karn's algorithm — no RTT sample).
        retransmit: True when this data segment is a retransmission.
        sack: for ACKs, up to a few selective-acknowledgement blocks —
            ``((start, end), ...)`` intervals received above ``ack_seq``.
        ect: ECN-capable transport (data packets of an ECN connection).
        ce: congestion experienced — set by an ECN-marking queue.
        ece: ECN echo — set on ACKs until a CWR is seen (RFC 3168).
        cwr: congestion window reduced — sender's response to ECE.
    """

    flow_id: int
    src: str
    dst: str
    kind: PacketKind
    seq: int = 0
    payload: int = 0
    ack_seq: int = 0
    sent_time: Seconds = 0.0
    ts_echo: Optional[Seconds] = None
    retransmit: bool = False
    sack: Optional[Tuple[Tuple[int, int], ...]] = None
    ect: bool = False
    ce: bool = False
    ece: bool = False
    cwr: bool = False
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: pool bookkeeping: 0 = direct construction (never recycled),
    #: 1 = live, acquired from a pool, 2 = parked in a pool's free list.
    _pool_state: int = field(default=0, repr=False, compare=False)

    @property
    def size(self) -> Bytes:
        """Total wire size in bytes (payload plus header overhead)."""
        return self.payload + HEADER_BYTES

    @property
    def end_seq(self) -> int:
        """One past the last payload byte carried by this segment."""
        return self.seq + self.payload

    @property
    def is_data(self) -> bool:
        return self.kind is PacketKind.DATA

    @property
    def is_ack(self) -> bool:
        return self.kind is PacketKind.ACK

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is PacketKind.DATA:
            body = f"seq={self.seq}..{self.end_seq}"
        elif self.kind is PacketKind.ACK:
            body = f"ack={self.ack_seq}"
        else:
            body = self.kind.value
        return f"<Packet f{self.flow_id} {self.src}->{self.dst} {body}>"


#: Reference floor for :meth:`PacketPool.release` at an end-of-life call
#: site reached through engine dispatch: the event's args tuple, the
#: consuming frame (``Host.receive``), the ``release`` frame, and
#: ``sys.getrefcount``'s own argument.  Any retention beyond these
#: transient references (telemetry, a capturing test stub, trace tooling)
#: pushes the count past the floor and vetoes recycling.
RELEASE_FLOOR = 4


class PacketPool:
    """LIFO free-list of :class:`Packet` objects with an aliasing guard.

    ``acquire_data`` / ``acquire_ack`` either pop the most recently
    released packet (deterministic LIFO reuse order) or construct a new
    one; every acquisition resets all fields and draws a fresh
    ``packet_id``, so pooled and unpooled runs are indistinguishable.
    ``release`` recycles only packets this pool handed out (direct
    constructions have ``_pool_state == 0`` and are ignored) and only
    when the refcount proves no one else still holds them.
    """

    __slots__ = ("_free", "enabled", "allocated", "reused", "retained")

    def __init__(self, prealloc: int = 0, enabled: bool = True) -> None:
        self.enabled = enabled
        self.allocated = 0  # constructions the pool performed
        self.reused = 0     # acquisitions served from the free list
        self.retained = 0   # releases vetoed by the refcount guard
        self._free: List[Packet] = []
        if enabled:
            for _ in range(prealloc):
                # packet_id=0 keeps preallocation from consuming ids: the
                # global id stream must not depend on pool configuration.
                blank = Packet(flow_id=-1, src="", dst="",
                               kind=PacketKind.DATA, packet_id=0,
                               _pool_state=2)
                self._free.append(blank)

    def __len__(self) -> int:
        return len(self._free)

    # ------------------------------------------------------------------
    def acquire_data(self, flow_id: int, src: str, dst: str, seq: int,
                     payload: Bytes, sent_time: Seconds, retransmit: bool,
                     ect: bool, cwr: bool) -> Packet:
        """A DATA segment, recycled when possible."""
        free = self._free
        if free:
            p = free.pop()
            self.reused += 1
            p.flow_id = flow_id
            p.src = src
            p.dst = dst
            p.kind = PacketKind.DATA
            p.seq = seq
            p.payload = payload
            p.ack_seq = 0
            p.sent_time = sent_time
            p.ts_echo = None
            p.retransmit = retransmit
            p.sack = None
            p.ect = ect
            p.ce = False
            p.ece = False
            p.cwr = cwr
            p.packet_id = next(_packet_ids)
            p._pool_state = 1
            return p
        self.allocated += 1
        return Packet(flow_id=flow_id, src=src, dst=dst, kind=PacketKind.DATA,
                      seq=seq, payload=payload, sent_time=sent_time,
                      retransmit=retransmit, ect=ect, cwr=cwr,
                      _pool_state=1 if self.enabled else 0)

    def acquire_ack(self, flow_id: int, src: str, dst: str, ack_seq: int,
                    sent_time: Seconds, ts_echo: Optional[Seconds],
                    sack: Optional[Tuple[Tuple[int, int], ...]],
                    ece: bool) -> Packet:
        """A pure ACK, recycled when possible."""
        free = self._free
        if free:
            p = free.pop()
            self.reused += 1
            p.flow_id = flow_id
            p.src = src
            p.dst = dst
            p.kind = PacketKind.ACK
            p.seq = 0
            p.payload = 0
            p.ack_seq = ack_seq
            p.sent_time = sent_time
            p.ts_echo = ts_echo
            p.retransmit = False
            p.sack = sack
            p.ect = False
            p.ce = False
            p.ece = ece
            p.cwr = False
            p.packet_id = next(_packet_ids)
            p._pool_state = 1
            return p
        self.allocated += 1
        return Packet(flow_id=flow_id, src=src, dst=dst, kind=PacketKind.ACK,
                      ack_seq=ack_seq, sent_time=sent_time, ts_echo=ts_echo,
                      sack=sack, ece=ece,
                      _pool_state=1 if self.enabled else 0)

    # ------------------------------------------------------------------
    def release(self, packet: Packet, refs_ok: int = RELEASE_FLOOR) -> bool:
        """Offer a packet back; True when it actually joined the free list.

        Safe to call on any packet: direct constructions and packets from
        other pools are ignored, and a packet whose refcount exceeds
        ``refs_ok`` (someone besides the transient dispatch frames still
        holds it) is left alive untouched.
        """
        if packet._pool_state != 1:
            return False
        if sys.getrefcount(packet) > refs_ok:
            self.retained += 1
            return False
        packet._pool_state = 2
        self._free.append(packet)
        return True


def _pool_from_env() -> PacketPool:
    flag = os.environ.get("REPRO_PACKET_POOL", "").strip().lower()
    enabled = flag not in ("0", "off", "false", "no")
    return PacketPool(prealloc=64 if enabled else 0, enabled=enabled)


#: Process-wide packet pool used by the TCP endpoints and released by
#: ``Host.receive``.  Disable with ``REPRO_PACKET_POOL=0`` (packets are
#: then constructed directly, bit-for-bit identically).
POOL = _pool_from_env()
