"""Topology builders.

The paper uses two physical setups:

* an internet path (server → … → bottleneck → … → client), which is a
  dumbbell with a single pair;
* a local dumbbell testbed: N client–server pairs over two Linux routers,
  with netem shaping (rate / delay / jitter / buffer) on the bottleneck.

:func:`build_dumbbell` constructs either.  Data flows server→client
(downloads); the bottleneck queue sits at the left router's egress, which
is where netem shapes in the testbed.  Per-pair RTTs are realised with
per-pair access-link propagation delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.core.units import Bytes, BytesPerSec, Seconds
from repro.net.link import Link
from repro.net.netem import BandwidthProfile, ConstantBandwidth, JitterModel, LossModel
from repro.net.node import Host, Router
from repro.net.packet import HEADER_BYTES
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator

#: Propagation delay of each bottleneck link direction (seconds).
BOTTLENECK_PROP_DELAY: Seconds = 0.001


def bdp_bytes(rate_bytes_per_sec: BytesPerSec, rtt_seconds: Seconds) -> Bytes:
    """Bandwidth-delay product in bytes."""
    return max(int(rate_bytes_per_sec * rtt_seconds), 2 * 1500)


@dataclass
class Dumbbell:
    """Handles to every component of a built dumbbell network."""

    sim: Simulator
    servers: List[Host]
    clients: List[Host]
    left_router: Router
    right_router: Router
    bottleneck_fwd: Link
    bottleneck_rev: Link
    access_links: List[Link] = field(default_factory=list)

    @property
    def bottleneck_queue(self) -> DropTailQueue:
        """The (shaped) buffer in front of the forward bottleneck link."""
        return self.bottleneck_fwd.queue


def build_dumbbell(
    sim: Simulator,
    n_pairs: int,
    bottleneck_rate: Union[BytesPerSec, BandwidthProfile],
    rtts: Sequence[Seconds],
    buffer_bytes: Bytes,
    access_rate: Optional[BytesPerSec] = None,
    jitter: Optional[JitterModel] = None,
    loss: Optional[LossModel] = None,
    queue: Optional[DropTailQueue] = None,
) -> Dumbbell:
    """Build an ``n_pairs`` dumbbell.

    Args:
        sim: simulation engine.
        n_pairs: number of server/client pairs.
        bottleneck_rate: bytes/second (or a :class:`BandwidthProfile`) of the
            shared bottleneck, forward (data) direction.
        rtts: two-way propagation delay per pair, seconds (len == n_pairs).
        buffer_bytes: capacity of the forward bottleneck buffer.
        access_rate: bytes/second of access links; defaults to 10x the
            bottleneck's mean rate so access links never bottleneck.
        jitter: optional per-packet jitter on the forward bottleneck.
        loss: optional random loss on the forward bottleneck.
        queue: optional custom queue (e.g. CoDel) for the forward bottleneck;
            defaults to a drop-tail queue of ``buffer_bytes``.

    Returns:
        A :class:`Dumbbell` with all hosts, routers, and links.
    """
    if len(rtts) != n_pairs:
        raise ValueError("need one RTT per pair")
    profile = (bottleneck_rate if isinstance(bottleneck_rate, BandwidthProfile)
               else ConstantBandwidth(float(bottleneck_rate)))
    if access_rate is None:
        access_rate = 10.0 * profile.mean_rate()
    for rtt in rtts:
        if rtt < 2 * BOTTLENECK_PROP_DELAY:
            raise ValueError(f"rtt {rtt} too small; must exceed "
                             f"{2 * BOTTLENECK_PROP_DELAY}s of bottleneck delay")

    left = Router("r-left")
    right = Router("r-right")

    fwd_queue = queue if queue is not None else DropTailQueue(buffer_bytes, name="btl.fwd.q")
    bottleneck_fwd = Link(sim, right, profile, BOTTLENECK_PROP_DELAY,
                          queue=fwd_queue, jitter=jitter, loss=loss, name="btl.fwd")
    # ACK path: same nominal rate, effectively unconstrained buffer (ACKs are
    # 52 B, so the reverse direction never becomes the bottleneck here).
    bottleneck_rev = Link(sim, left, ConstantBandwidth(profile.mean_rate()),
                          BOTTLENECK_PROP_DELAY,
                          queue=DropTailQueue(10**9, name="btl.rev.q"), name="btl.rev")
    left.default_route = bottleneck_fwd
    right.default_route = bottleneck_rev

    servers: List[Host] = []
    clients: List[Host] = []
    access_links: List[Link] = []
    for i in range(n_pairs):
        per_side = rtts[i] / 2 - BOTTLENECK_PROP_DELAY
        server = Host(f"server{i}")
        client = Host(f"client{i}")
        # Server side: negligible delay (servers sit next to the left router).
        srv_up = Link(sim, left, ConstantBandwidth(access_rate), 1e-6, name=f"srv{i}.up")
        srv_down = Link(sim, server, ConstantBandwidth(access_rate), 1e-6, name=f"srv{i}.down")
        # Client side: carries the pair's propagation delay.
        cli_down = Link(sim, client, ConstantBandwidth(access_rate), per_side,
                        name=f"cli{i}.down")
        cli_up = Link(sim, right, ConstantBandwidth(access_rate), per_side,
                      name=f"cli{i}.up")
        server.uplink = srv_up
        client.uplink = cli_up
        left.add_route(server.name, srv_down)
        right.add_route(client.name, cli_down)
        servers.append(server)
        clients.append(client)
        access_links.extend([srv_up, srv_down, cli_down, cli_up])

    return Dumbbell(sim=sim, servers=servers, clients=clients,
                    left_router=left, right_router=right,
                    bottleneck_fwd=bottleneck_fwd, bottleneck_rev=bottleneck_rev,
                    access_links=access_links)


def build_path(
    sim: Simulator,
    bottleneck_rate: Union[BytesPerSec, BandwidthProfile],
    rtt: Seconds,
    buffer_bytes: Bytes,
    access_rate: Optional[BytesPerSec] = None,
    jitter: Optional[JitterModel] = None,
    loss: Optional[LossModel] = None,
    queue: Optional[DropTailQueue] = None,
) -> Dumbbell:
    """Single server→client path (a one-pair dumbbell)."""
    return build_dumbbell(sim, 1, bottleneck_rate, [rtt], buffer_bytes,
                          access_rate=access_rate, jitter=jitter, loss=loss,
                          queue=queue)
