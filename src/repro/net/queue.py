"""Bottleneck buffer disciplines: drop-tail FIFO and CoDel.

Queues sit in front of a :class:`repro.net.link.Link` and absorb bursts.
``DropTailQueue`` is what the paper's testbed router (Linux + netem) uses;
``CoDelQueue`` implements the RFC 8289 control law and is provided for the
AQM-related discussion in Section 2.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Optional

from repro.core.units import Bytes, Seconds
from repro.net.packet import Packet

DropCallback = Callable[[Packet, str], None]


class DropTailQueue:
    """Byte-capacity FIFO queue that drops arriving packets when full."""

    __slots__ = ("capacity_bytes", "name", "on_drop", "_q", "_bytes",
                 "drops", "enqueued", "bytes_peak", "_phantom")

    def __init__(self, capacity_bytes: Bytes, name: str = "queue",
                 on_drop: Optional[DropCallback] = None) -> None:
        if capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.name = name
        self.on_drop = on_drop
        self._q: Deque[Packet] = deque()
        self._bytes: Bytes = 0
        self.drops = 0
        self.enqueued = 0
        #: high-water mark of queued bytes over the queue's lifetime
        self.bytes_peak = 0
        #: (release_time, size) holds from a batching link: bytes of
        #: packets already handed to the serialiser that still occupy the
        #: buffer until their serialisation *starts* (see Link batch mode).
        self._phantom: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self._q)

    @property
    def bytes_queued(self) -> Bytes:
        return self._bytes

    @property
    def occupancy(self) -> float:
        """Fill level in [0, 1]."""
        return self._bytes / self.capacity_bytes

    def push(self, packet: Packet) -> bool:
        """Enqueue ``packet``; returns False (and counts a drop) when full."""
        if self._bytes + packet.size > self.capacity_bytes:
            self.drops += 1
            if self.on_drop is not None:
                self.on_drop(packet, self.name)
            return False
        self._q.append(packet)
        self._bytes += packet.size
        if self._bytes > self.bytes_peak:
            self.bytes_peak = self._bytes
        self.enqueued += 1
        return True

    def pop(self, now: Seconds = 0.0) -> Optional[Packet]:
        """Dequeue the head packet, or None when empty."""
        if not self._q:
            return None
        packet = self._q.popleft()
        self._bytes -= packet.size
        return packet

    # -- batch-serialisation occupancy holds ---------------------------
    # A batching link pops a whole busy period's packets in one event but
    # must not make the buffer look emptier than the per-packet schedule
    # would: each packet's bytes stay counted (a "phantom") until the
    # instant its serialisation would have started — exactly when the
    # classic per-packet path pops it.  ``settle`` is called before every
    # occupancy-sensitive operation (push) with the current time.

    def hold(self, release_time: Seconds, size: Bytes) -> None:
        """Re-count ``size`` bytes as buffered until ``release_time``."""
        self._phantom.append((release_time, size))
        self._bytes += size

    def settle(self, now: Seconds) -> None:
        """Release phantom bytes whose serialisation has started by ``now``."""
        phantom = self._phantom
        while phantom and phantom[0][0] <= now:
            self._bytes -= phantom.popleft()[1]


class CoDelQueue(DropTailQueue):
    """Controlled-delay AQM (RFC 8289) on top of a byte-capacity FIFO.

    Packets are timestamped on entry; when the head packet has queued for
    more than ``target`` during a whole ``interval``, CoDel enters dropping
    state and drops head packets at increasing frequency
    (``interval / sqrt(count)``).
    """

    __slots__ = ("target", "interval", "ecn", "marks", "_enqueue_time",
                 "_first_above_time", "_dropping", "_drop_next", "_count",
                 "_now_hint")

    def __init__(self, capacity_bytes: Bytes, name: str = "codel",
                 target: Seconds = 0.005, interval: Seconds = 0.100,
                 ecn: bool = False,
                 on_drop: Optional[DropCallback] = None) -> None:
        super().__init__(capacity_bytes, name, on_drop)
        self.target = target
        self.interval = interval
        #: mark ECN-capable packets (CE) instead of dropping them
        self.ecn = ecn
        self.marks = 0
        self._enqueue_time: Deque[float] = deque()
        self._first_above_time = 0.0
        self._dropping = False
        self._drop_next = 0.0
        self._count = 0
        # CoDel needs the current time at enqueue; callers (Link.send)
        # set this before push.
        self._now_hint: float = 0.0

    def push(self, packet: Packet) -> bool:
        ok = super().push(packet)
        if ok:
            self._enqueue_time.append(self._now_hint)
        return ok

    def set_now(self, now: Seconds) -> None:
        self._now_hint = now

    def _sojourn_ok(self, now: Seconds) -> bool:
        """Return True when the head packet should be delivered (not dropped)."""
        if not self._q:
            self._first_above_time = 0.0
            return True
        sojourn = now - self._enqueue_time[0]
        if sojourn < self.target or self._bytes <= 2 * 1500:
            self._first_above_time = 0.0
            return True
        if self._first_above_time == 0.0:
            self._first_above_time = now + self.interval
            return True
        return now < self._first_above_time

    def pop(self, now: Seconds = 0.0) -> Optional[Packet]:
        while self._q:
            ok = self._sojourn_ok(now)
            if not self._dropping:
                if ok or (now < self._drop_next and self._count > 0):
                    break
                self._dropping = True
                self._count = max(1, self._count - 2) if now - self._drop_next < self.interval else 1
                self._drop_next = now + self.interval / math.sqrt(self._count)
                if not self._drop_head(now):
                    break  # head was CE-marked: deliver it
                continue
            # dropping state
            if ok:
                self._dropping = False
                break
            if now >= self._drop_next:
                self._count += 1
                self._drop_next = now + self.interval / math.sqrt(self._count)
                if not self._drop_head(now):
                    break
                continue
            break
        packet = super().pop(now)
        if packet is not None and self._enqueue_time:
            self._enqueue_time.popleft()
        return packet

    def _drop_head(self, now: Seconds) -> bool:
        """Drop (or CE-mark) the head packet; True when it was removed."""
        if not self._q:
            return False
        if self.ecn and self._q[0].ect:
            # RFC 3168 / RFC 8289: mark instead of dropping when the
            # transport is ECN-capable.  The control law proceeds as if a
            # drop happened; the packet is delivered carrying CE.
            self._q[0].ce = True
            self.marks += 1
            return False
        packet = self._q.popleft()
        self._enqueue_time.popleft()
        self._bytes -= packet.size
        self.drops += 1
        if self.on_drop is not None:
            self.on_drop(packet, self.name)
        return True
