"""netem-style impairment models for links.

The paper's local testbed shapes the bottleneck with Linux ``tc netem``
(rate, delay, jitter, buffer) and its internet-scale testbed exhibits
natural bandwidth variation on wireless last hops (Appendix B).  This
module provides the equivalent knobs:

* :class:`ConstantBandwidth` / :class:`SteppedBandwidth` /
  :class:`RandomWalkBandwidth` — ``BtlBw`` over time;
* :class:`JitterModel` — per-packet propagation-delay jitter;
* :class:`LossModel` — random (Bernoulli) packet loss.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.core.units import BytesPerSec, Seconds


def _require_positive_rate(rate: float) -> float:
    """Reject zero/negative/NaN/inf bandwidths at construction.

    ``nan <= 0`` is False, so a plain sign check silently accepts NaN —
    which then poisons every serialisation time computed from the rate.
    """
    if not math.isfinite(rate) or rate <= 0:
        raise ValueError(
            f"bandwidth must be positive and finite, got {rate!r}")
    return float(rate)


def _require_rng(rng: Optional[random.Random], component: str) -> random.Random:
    """Stochastic impairments must be handed a seeded stream explicitly.

    A silent ``random.Random(0)`` fallback means two un-wired components
    share bit-identical loss/jitter streams — a correlation bug that is
    invisible in results.  Failing loudly here (and lint rule DET004
    flagging the old pattern) makes the wiring mistake impossible.
    """
    if rng is None:
        raise ValueError(
            f"{component} is stochastic and needs an injected random.Random; "
            f"derive one from the experiment's RngRegistry "
            f"(e.g. rng.stream('loss:<link>')) so seeds stay independent")
    return rng


class BandwidthProfile:
    """Base class: bottleneck bandwidth (bytes/second) as a function of time."""

    def rate_at(self, now: Seconds) -> BytesPerSec:
        raise NotImplementedError

    def mean_rate(self) -> BytesPerSec:
        """Nominal long-run average rate (used to size BDP-relative buffers)."""
        raise NotImplementedError


class ConstantBandwidth(BandwidthProfile):
    """Fixed bandwidth (wired links, shaped testbed bottleneck)."""

    def __init__(self, rate: BytesPerSec) -> None:
        self.rate: BytesPerSec = _require_positive_rate(rate)

    def rate_at(self, now: Seconds) -> BytesPerSec:
        return self.rate

    def mean_rate(self) -> BytesPerSec:
        return self.rate


class SteppedBandwidth(BandwidthProfile):
    """Piecewise-constant bandwidth defined by (start_time, rate) steps."""

    def __init__(self, steps: Sequence[Tuple[float, float]]) -> None:
        if not steps:
            raise ValueError("at least one step required")
        self.steps: List[Tuple[float, float]] = sorted(
            (float(t), _require_positive_rate(r)) for t, r in steps)
        if self.steps[0][0] > 0:
            raise ValueError("first step must start at or before t=0")

    def rate_at(self, now: Seconds) -> BytesPerSec:
        rate = self.steps[0][1]
        for start, r in self.steps:
            if start <= now:
                rate = r
            else:
                break
        return rate

    def mean_rate(self) -> BytesPerSec:
        return sum(r for _, r in self.steps) / len(self.steps)


class RandomWalkBandwidth(BandwidthProfile):
    """Mean-reverting random-walk bandwidth (wireless last hops).

    The rate is resampled every ``hold_time`` seconds as a multiplicative
    step around ``base_rate``; excursions are clamped to
    ``[base*(1-span), base*(1+span)]``.  Resampling is driven lazily by
    query time so the profile needs no scheduled events, and the sequence
    is fully determined by the supplied RNG.
    """

    def __init__(self, base_rate: BytesPerSec, span: float = 0.4,
                 hold_time: Seconds = 0.2, rng: Optional[random.Random] = None) -> None:
        if not 0 <= span < 1:
            raise ValueError("span must be in [0, 1)")
        if hold_time <= 0:
            raise ValueError("hold_time must be positive")
        self.base_rate: BytesPerSec = _require_positive_rate(base_rate)
        self.span = span
        self.hold_time = hold_time
        self.rng = _require_rng(rng, "RandomWalkBandwidth")
        self._epoch = -1
        self._rate = base_rate

    def rate_at(self, now: Seconds) -> BytesPerSec:
        epoch = int(now / self.hold_time)
        while self._epoch < epoch:
            self._epoch += 1
            # Mean-reverting multiplicative step.
            drift = 0.5 * (self.base_rate - self._rate)
            shock = self.rng.gauss(0.0, 0.25 * self.span * self.base_rate)
            rate = self._rate + drift + shock
            lo = self.base_rate * (1 - self.span)
            hi = self.base_rate * (1 + self.span)
            self._rate = min(max(rate, lo), hi)
        return self._rate

    def mean_rate(self) -> BytesPerSec:
        return self.base_rate


class JitterModel:
    """Slowly-varying extra path delay (cellular/WiFi delay jitter).

    Real last-hop delay variation comes from scheduling and queueing and is
    strongly correlated across consecutive packets — it is a drifting delay
    *offset*, not i.i.d. per-packet noise (i.i.d. noise would destroy
    inter-packet spacing and, with FIFO clamping, fabricate ACK-train gaps
    that never occur on real paths).  This model evolves the offset as a
    mean-reverting (Ornstein-Uhlenbeck-like) process with time constant
    ``tau``; ``jitter`` sets both the mean extra delay and the excursion
    scale, and samples stay within ``[0, 4 * jitter]``.
    """

    def __init__(self, jitter: Seconds, rng: Optional[random.Random] = None,
                 tau: Seconds = 0.1) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.jitter = jitter
        self.tau = tau
        # jitter == 0 is deterministic and never samples the rng.
        self.rng = _require_rng(rng, "JitterModel") if jitter > 0 else rng
        self._value = jitter
        self._last_time = 0.0

    def sample(self, now: Seconds = 0.0) -> Seconds:
        """Extra delay for a packet departing at time ``now``."""
        if self.jitter == 0:
            return 0.0
        dt = max(now - self._last_time, 0.0)
        self._last_time = now
        alpha = min(dt / self.tau, 1.0)
        drift = alpha * (self.jitter - self._value)
        shock = self.rng.gauss(0.0, self.jitter * (alpha ** 0.5))
        self._value = min(max(self._value + drift + shock, 0.0),
                          4.0 * self.jitter)
        return self._value


class LossModel:
    """Bernoulli random loss (netem ``loss <p>%``)."""

    def __init__(self, loss_rate: float, rng: Optional[random.Random] = None) -> None:
        if not 0 <= loss_rate < 1:
            raise ValueError("loss rate must be in [0, 1)")
        self.loss_rate = loss_rate
        # loss_rate == 0 is deterministic and never samples the rng.
        self.rng = _require_rng(rng, "LossModel") if loss_rate > 0 else rng

    def drops(self) -> bool:
        return self.loss_rate > 0 and self.rng.random() < self.loss_rate
