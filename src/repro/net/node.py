"""Network nodes: hosts (endpoints) and routers (forwarders)."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

from repro.net.link import Link
from repro.net.packet import POOL, Packet
from repro.obs import records as obsrec
from repro.sim.engine import SimulationError


class Endpoint(Protocol):
    """A transport endpoint attached to a host (TCP sender or receiver)."""

    def on_packet(self, packet: Packet) -> None: ...


class Host:
    """An end host: owns an uplink and dispatches packets to endpoints.

    Endpoints register with :meth:`attach` under their flow id; inbound
    packets are delivered to the endpoint registered for their flow.
    """

    # No __slots__ here on purpose: fault-injection tests replace
    # ``host.receive`` per instance (delay/reorder shims), which needs an
    # instance __dict__.  Hosts are per-topology objects, not per-packet,
    # so the memory/speed win would be negligible anyway.

    def __init__(self, name: str) -> None:
        self.name = name
        self.uplink: Optional[Link] = None
        self._endpoints: Dict[int, Endpoint] = {}
        self.packets_received = 0
        self.unroutable = 0

    def attach(self, flow_id: int, endpoint: Endpoint) -> None:
        if flow_id in self._endpoints:
            raise ValueError(f"flow {flow_id} already attached to host {self.name}")
        self._endpoints[flow_id] = endpoint

    def detach(self, flow_id: int) -> None:
        self._endpoints.pop(flow_id, None)

    def _sanitizer(self):
        # Stub uplinks in unit tests may lack .sim; treat as unsanitized.
        sim = getattr(self.uplink, "sim", None)
        return sim.sanitizer if sim is not None else None

    def transmit(self, packet: Packet) -> bool:
        """Send a packet out of this host's uplink."""
        if self.uplink is None:
            raise RuntimeError(f"host {self.name} has no uplink")
        sanitizer = self._sanitizer()
        if sanitizer is not None:
            # Conservation accounting: this is the only way packets enter
            # the network; router hops re-enter links but not here.
            sanitizer.note_network_send()
        return self.uplink.send(packet)

    def receive(self, packet: Packet) -> None:
        self.packets_received += 1
        sim = getattr(self.uplink, "sim", None)
        if sim is not None:
            if sim.sanitizer is not None:
                sim.sanitizer.note_network_deliver()
            if sim.obs is not None:
                sim.obs.emit(sim.now, obsrec.PKT_RECV, packet.flow_id,
                             host=self.name, ptype=packet.kind.name,
                             seq=packet.seq, size=packet.size)
        endpoint = self._endpoints.get(packet.flow_id)
        if endpoint is None:
            self.unroutable += 1
            POOL.release(packet)
            return
        endpoint.on_packet(packet)
        # Final delivery: the endpoint has copied out everything it needs,
        # so the packet can rejoin the pool (refcount-guarded — retained
        # packets stay alive and are simply not recycled).
        POOL.release(packet)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name}>"


class Router:
    """Static-routing packet forwarder.

    ``add_route(dst_host_name, link)`` installs a next-hop link; packets
    for unknown destinations fall back to ``default_route`` when set.

    A ``strict`` router raises :class:`SimulationError` instead of
    silently counting unroutable packets — topologies built from an
    explicit spec (``repro.net.topogen``) use this, because there a
    missing next-hop is a builder/routing bug, not background noise.
    """

    __slots__ = ("name", "_routes", "default_route", "packets_forwarded",
                 "unroutable", "strict")

    def __init__(self, name: str, strict: bool = False) -> None:
        self.name = name
        self._routes: Dict[str, Link] = {}
        self.default_route: Optional[Link] = None
        self.packets_forwarded = 0
        self.unroutable = 0
        self.strict = strict

    def add_route(self, dst: str, link: Link) -> None:
        self._routes[dst] = link

    def routes(self) -> Dict[str, Link]:
        """Snapshot of the installed next-hop table (dst -> link)."""
        return dict(self._routes)

    def _no_route_error(self, dst: str) -> SimulationError:
        known = ", ".join(sorted(self._routes)) or "<none>"
        return SimulationError(
            f"router {self.name} has no route for destination {dst!r} "
            f"(routes: {known}; no default route)")

    def forward(self, packet: Packet) -> None:
        """Forward ``packet`` toward its destination, failing loudly.

        Unlike :meth:`receive` on a non-strict router (which tolerates
        unroutable packets by counting and dropping them), an unknown
        destination here raises :class:`SimulationError` naming the
        router, the destination, and the routes it does know.
        """
        link = self._routes.get(packet.dst, self.default_route)
        if link is None:
            self.unroutable += 1
            POOL.release(packet)
            raise self._no_route_error(packet.dst)
        self.packets_forwarded += 1
        if not link.send(packet):
            # Queue-full drop at this hop: the link counted the drop and
            # the packet's life ends here, so pooled packets rejoin the
            # free list (refcount-guarded, like end-host delivery).
            POOL.release(packet)

    def receive(self, packet: Packet) -> None:
        link = self._routes.get(packet.dst, self.default_route)
        if link is None:
            self.unroutable += 1
            POOL.release(packet)
            if self.strict:
                raise self._no_route_error(packet.dst)
            return
        self.packets_forwarded += 1
        if not link.send(packet):
            # Queue-full drop at this hop (see forward()).
            POOL.release(packet)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Router {self.name}>"
