"""SUSS — the paper's primary contribution.

* :mod:`repro.core.growth` — growth-factor theory (Conditions 1-2,
  Algorithm 1, Appendix A generalisation).
* :mod:`repro.core.pacing_plan` — clocking/pacing/guard geometry
  (Eqs. 9-12, Lemma 1).
* :mod:`repro.core.hystart_mod` — SUSS's modified HyStart.
* :mod:`repro.core.suss` — the CUBIC+SUSS congestion control.
"""

from repro.core.growth import (
    ACK_TRAIN_FRACTION,
    DEFAULT_K_MAX,
    DELAY_FACTOR,
    condition1,
    condition2,
    estimate_ack_train,
    growth_factor,
    predict_mo_rtt,
)
from repro.core.hystart_mod import SussHyStart
from repro.core.pacing_plan import PacingPlan, lemma1_lower_bound, make_pacing_plan
from repro.core.suss import SussCubic
from repro.core.suss_bbr import SussBbr

__all__ = [
    "ACK_TRAIN_FRACTION",
    "DELAY_FACTOR",
    "DEFAULT_K_MAX",
    "condition1",
    "condition2",
    "estimate_ack_train",
    "growth_factor",
    "predict_mo_rtt",
    "SussHyStart",
    "PacingPlan",
    "make_pacing_plan",
    "lemma1_lower_bound",
    "SussCubic",
    "SussBbr",
]
