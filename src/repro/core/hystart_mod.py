"""SUSS's modified HyStart (paper Section 5, Fig. 8).

Packet pacing makes the red part of the ACK train meaningless for path
assessment, so SUSS scales the elapsed time the ACK-train heuristic sees by
``ratio`` — the data train's size over its blue part — and evaluates the
heuristics only over blue ACKs (the owner simply does not feed red ACKs to
:meth:`on_ack`).

Because a ratio-scaled measurement is an *estimate*, the flowchart defers
the exit when the scaled train condition fires: instead of stopping growth
immediately, it sets a **cap** on cwnd, and growth stops once cwnd exceeds
the cap.  The cap value is supplied by a callback (SUSS uses the committed
round target ``cwnd_i``, so data already scheduled for pacing completes;
see DESIGN.md).  The delay condition keeps its immediate-exit semantics —
it is based on unscaled RTT samples.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cc.hystart import HyStart


class SussHyStart(HyStart):
    """HyStart with ratio-scaled elapsed time and capped (deferred) exit.

    ``cap_provider(cwnd_segments)`` supplies the cap when the scaled
    ACK-train condition fires; it receives the cwnd (in segments) at that
    moment.
    """

    def __init__(self, cap_provider: Callable[[float], float], **kwargs) -> None:
        super().__init__(**kwargs)
        #: data-train size over blue-part size for the current round
        self.ratio = 1.0
        #: deferred-exit cwnd cap (in cwnd segments), or None
        self.cap: Optional[float] = None
        self._cap_provider = cap_provider
        self._fired_in_round = False

    # ------------------------------------------------------------------
    def elapsed_since_round_start(self, now: float) -> float:
        """Eq. 9 applied to the elapsed time: scale the blue measurement."""
        return (now - self.round_start) * self.ratio

    def on_round_start(self, now: float) -> None:
        super().on_round_start(now)
        # ratio is set by the owner for each round.  A cap armed by a
        # scaled-estimate trigger persists only while the trigger keeps
        # re-firing: a whole quiet round means the signal was measurement
        # noise (jitter stretching the blue train), so disarm.
        if self.cap is not None and not self._fired_in_round:
            self.cap = None
        self._fired_in_round = False

    # ------------------------------------------------------------------
    def on_ack(self, now: float, rtt_sample: Optional[float],
               min_rtt: Optional[float], cwnd_segments: float) -> bool:
        if self.found:
            return True
        if min_rtt is None or cwnd_segments < self.low_window_segments:
            return False
        train = self._ack_train_exceeds(now, min_rtt)
        delay = self._delay_exceeds(rtt_sample, min_rtt)
        if train or delay:
            self._fired_in_round = True
        if self.cap is not None:
            # Deferred exit already armed: stop once cwnd passes the cap,
            # or immediately on a (reliable) delay signal.
            if delay or cwnd_segments > self.cap:
                self.found = True
            return self.found
        if delay:
            self.found = True
            return True
        if train:
            if self.ratio > 1.0:
                # Scaled estimate: postpone the stop behind a cwnd cap.
                self.cap = self._cap_provider(cwnd_segments)
                return False
            self.found = True
            return True
        return False

    def reset(self) -> None:
        super().reset()
        self.cap = None
        self.ratio = 1.0
