"""Pacing-period geometry for an accelerated SUSS round (Section 4).

When the growth factor ``G_i > 2``, the round's data train is split into a
blue part — sent by ACK clocking, exactly like traditional slow start — and
a red part sent during a *pacing period* of carefully chosen start time,
duration and rate, with a *guard interval* on each side (Fig. 5):

* ``S_i^Rdt = cwnd_i - S_i^Bdt``                      (red data, Eq. 10)
* pacing duration ``= (S_i^Rdt / cwnd_i) * minRTT``
* sending rate ``= cwnd_i / minRTT``                  (Eq. 11)
* ``guard_i = S_i^Bdt/(2*cwnd_i) * minRTT - Δt_i^Bat / 2``   (Eq. 12)

Lemma 1 guarantees ``guard_i > 0`` whenever acceleration was admissible;
:func:`make_pacing_plan` still clamps at zero to stay safe under noisy
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.units import Bytes, BytesPerSec, Seconds


@dataclass(frozen=True)
class PacingPlan:
    """The schedule for one accelerated round's pacing period.

    Attributes:
        cwnd_target: ``cwnd_i = G_i * cwnd_{i-1}`` in bytes.
        s_bdt: bytes sent in the round's clocking period (``S_i^Bdt``).
        s_rdt: bytes to send during the pacing period (``S_i^Rdt``).
        rate: pacing-period sending rate in bytes/second (Eq. 11).
        duration: pacing-period length in seconds.
        guard: guard-interval length in seconds (Eq. 12, clamped at 0).
        start_offset: delay from the *end of the blue ACK train*
            (time ``t_i^s + Δt_i^Bat``) to the start of the pacing period;
            equals ``guard``.
    """

    cwnd_target: int
    s_bdt: int
    s_rdt: int
    rate: BytesPerSec
    duration: Seconds
    guard: Seconds

    @property
    def start_offset(self) -> Seconds:
        return self.guard


def make_pacing_plan(cwnd_prev: Bytes, s_bdt_prev: Bytes, growth: int,
                     min_rtt: Seconds, dt_bat: Seconds) -> PacingPlan:
    """Compute the pacing plan for the current round.

    Args:
        cwnd_prev: ``cwnd_{i-1}`` in bytes (the previous round's window /
            data-train size).
        s_bdt_prev: blue bytes of the previous round (``S^Bdt_{i-1}``); the
            current round's clocking period sends twice this.
        growth: the growth factor ``G_i`` (must be > 2 for a pacing period
            to exist).
        min_rtt: current minimum RTT in seconds.
        dt_bat: measured blue-ACK-train duration ``Δt_i^Bat`` in seconds.

    Raises:
        ValueError: if ``growth <= 2`` (no pacing period exists) or inputs
            are degenerate.
    """
    if growth <= 2:
        raise ValueError("a pacing period only exists when G > 2")
    if cwnd_prev <= 0 or s_bdt_prev <= 0:
        raise ValueError("window sizes must be positive")
    if s_bdt_prev > cwnd_prev:
        raise ValueError("blue part cannot exceed the data train")
    if min_rtt <= 0:
        raise ValueError("min_rtt must be positive")
    if dt_bat < 0:
        raise ValueError("dt_bat must be non-negative")

    cwnd_target = growth * cwnd_prev
    s_bdt = 2 * s_bdt_prev
    s_rdt = cwnd_target - s_bdt
    if s_rdt <= 0:
        raise ValueError("no red data to pace (S^Rdt <= 0)")
    rate = cwnd_target / min_rtt
    duration = (s_rdt / cwnd_target) * min_rtt
    guard = (s_bdt / (2.0 * cwnd_target)) * min_rtt - dt_bat / 2.0
    return PacingPlan(cwnd_target=cwnd_target, s_bdt=s_bdt, s_rdt=s_rdt,
                      rate=rate, duration=duration, guard=max(guard, 0.0))


def lemma1_lower_bound(plan: PacingPlan, min_rtt: Seconds) -> Seconds:
    """Lemma 1's guaranteed lower bound on the guard interval."""
    return (plan.s_bdt / (4.0 * plan.cwnd_target)) * min_rtt
