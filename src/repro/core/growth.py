"""SUSS growth-factor theory (paper Section 3 and Appendix A).

Pure functions implementing the equations SUSS uses to decide whether the
exponential growth of ``cwnd`` will persist, and by how much growth may
therefore be accelerated in the *current* round:

* Eq. 9  — estimate the full ACK-train duration from its blue part;
* Eq. 7/18 — extrapolate next-round(s) minimum observed RTT;
* Eq. 6/17 — Condition 1 over ``k`` future rounds;
* Eq. 8/19 — Condition 2 over ``k`` future rounds;
* Algorithm 1 — pick the largest admissible ``k`` and return
  ``G = 2**(k+1)``.

All functions are stateless so they can be property-tested directly.

Note on Algorithm 1: as printed in the paper the loop increments ``k`` past
the last *verified* look-ahead before computing ``G = 2**(k+1)``, which
would yield ``G = 8`` from a one-round look-ahead — contradicting the main
design (Eq. 6: quadrupling requires ``Δt ≤ minRTT/4``, and ``G ∈ {2, 4}``
with one round of look-ahead).  We therefore implement the semantics the
derivation defines: ``G = 2**(k+1)`` where ``k`` is the largest value in
``[0, k_max]`` such that Conditions 1 and 2 hold for *every* look-ahead
``1..k``; ``k = 0`` (traditional slow start, ``G = 2``) always holds.
"""

from __future__ import annotations

from typing import Optional

from repro.core.units import Bytes, Seconds

#: HyStart ACK-train threshold: growth continues while the ACK train fits
#: within this fraction of minRTT (Condition 1 uses minRTT/2).
ACK_TRAIN_FRACTION = 0.5
#: HyStart delay threshold factor (Condition 2 uses 1.125 x minRTT).
DELAY_FACTOR = 1.125
#: Default look-ahead: the paper's main design extrapolates one round
#: (G in {2, 4}); Appendix A generalises to k_max > 1.
DEFAULT_K_MAX = 1


def estimate_ack_train(dt_bat: Seconds, data_train_bytes: Bytes,
                       blue_bytes: Bytes) -> Seconds:
    """Eq. 9: scale the blue ACK-train duration up to the full train.

    Args:
        dt_bat: measured time to receive the ACKs for the blue (clocked)
            part of the previous round's data train.
        data_train_bytes: total bytes of the previous round's data train
            (``cwnd_{i-1}``).
        blue_bytes: bytes of that train sent during the clocking period
            (``S^Bdt_{i-1}``).

    Returns:
        Estimated duration of the full ACK train, ``Δt_i^at``.
    """
    if blue_bytes <= 0:
        raise ValueError("blue_bytes must be positive")
    if data_train_bytes < blue_bytes:
        raise ValueError("data train cannot be smaller than its blue part")
    if dt_bat < 0:
        raise ValueError("dt_bat must be non-negative")
    return (data_train_bytes / blue_bytes) * dt_bat


def predict_mo_rtt(mo_rtt: Seconds, min_rtt: Seconds, r: int, k: int = 1) -> Seconds:
    """Eq. 7 / Eq. 18: extrapolate the minimum observed RTT ``k`` rounds ahead.

    The queueing delay accumulated since minRTT was last updated, averaged
    over the ``r`` rounds since then, is assumed to keep accruing per round.
    """
    if r <= 0:
        raise ValueError("r must be positive (r == 0 is handled by the caller)")
    return mo_rtt + k * (mo_rtt - min_rtt) / r


def condition1(dt_at: Seconds, min_rtt: Seconds, k: int,
               fraction: float = ACK_TRAIN_FRACTION) -> bool:
    """Eq. 6 / Eq. 17: the ACK train leaves room for ``k`` more doublings.

    ``Δt_i^at <= minRTT * fraction / 2**k`` — with the default fraction of
    1/2 this is the paper's ``minRTT / 2**(k+1)``; ``k = 1`` recovers Eq. 6.
    """
    if min_rtt <= 0:
        raise ValueError("min_rtt must be positive")
    return dt_at <= min_rtt * fraction / (2 ** k)


def condition2(mo_rtt: Seconds, min_rtt: Seconds, r: int, k: int,
               delay_factor: float = DELAY_FACTOR) -> bool:
    """Eq. 8 / Eq. 19: extrapolated queueing delay stays below threshold.

    When ``r == 0`` (minRTT was updated this round) there is no queueing
    trend to extrapolate and the condition holds (Algorithm 1, line 3).
    """
    if min_rtt <= 0:
        raise ValueError("min_rtt must be positive")
    if r == 0:
        return True
    return predict_mo_rtt(mo_rtt, min_rtt, r, k) <= delay_factor * min_rtt


def growth_factor(dt_at: Seconds, mo_rtt: Optional[Seconds], min_rtt: Seconds,
                  r: int, k_max: int = DEFAULT_K_MAX,
                  fraction: float = ACK_TRAIN_FRACTION,
                  delay_factor: float = DELAY_FACTOR) -> int:
    """Algorithm 1: the growth factor ``G_i = 2**(k+1)`` for the current round.

    ``k`` counts how many extra doublings beyond the traditional one are
    predicted safe; a look-ahead of ``k`` is safe when Condition 1
    (Eq. 17) and Condition 2 (Eq. 19) both hold.  ``G == 2`` means
    "behave exactly like traditional slow start".

    ``mo_rtt`` may be None when no RTT sample was observed this round; the
    delay condition then cannot be verified and (conservatively, unless
    ``r == 0``) fails.
    """
    if k_max < 0:
        raise ValueError("k_max must be non-negative")
    if min_rtt <= 0:
        raise ValueError("min_rtt must be positive")
    k = 0
    while k < k_max:
        look_ahead = k + 1
        cond1 = condition1(dt_at, min_rtt, look_ahead, fraction)
        if r == 0:
            cond2 = True
        elif mo_rtt is None:
            cond2 = False
        else:
            cond2 = condition2(mo_rtt, min_rtt, r, look_ahead, delay_factor)
        if cond1 and cond2:
            k += 1
        else:
            break
    return 2 ** (k + 1)
