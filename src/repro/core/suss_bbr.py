"""SUSS + BBR: the paper's stated future work (Section 7).

    "Like CUBIC, BBR adheres to the exponential growth dynamics of
     traditional slow-start and under-utilizes bottleneck bandwidth in
     early RTTs.  Integrating SUSS with BBR could optimize bandwidth
     utilization and improve FCT of small BBR flows."

This module implements that integration.  BBR's STARTUP already paces
(at ``2/ln2 × BtlBw-estimate``), so SUSS's clocking/pacing split is not
needed — what transfers is the *prediction machinery*: per delivery
round, measure the ACK-train duration and the round's minimum RTT, run
Algorithm 1, and when another round of exponential growth is predicted
(``G > 2``), boost the STARTUP gains for the current round by ``G / 2``.
The boost is applied to both the pacing and cwnd gain, and reverts the
moment the conditions fail, the pipe is declared full, or loss recovery
starts — the same "accelerate only while provably far from cwnd*"
contract SUSS gives CUBIC.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cc.base import AckInfo, register
from repro.cc.bbr import STARTUP_GAIN, Bbr, BbrMode
from repro.core.growth import DEFAULT_K_MAX, growth_factor
from repro.obs import records as obsrec


class SussBbr(Bbr):
    """BBRv1 with SUSS-accelerated STARTUP."""

    name = "bbr+suss"

    def __init__(self, k_max: int = DEFAULT_K_MAX) -> None:
        super().__init__()
        self.k_max = k_max
        # per-round measurement state
        self._round_start_time = 0.0
        self._round_first_seq = 0
        self._round_prev_train = 0
        self._last_ack_time: Optional[float] = None
        self._train_end_time: Optional[float] = None
        self._mo_rtt: Optional[float] = None
        self._boost = 1.0
        # instrumentation
        self.boosted_rounds = 0
        self.growth_history: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    def on_round_start(self, now: float, round_index: int) -> None:
        super().on_round_start(now, round_index)
        if self.mode is BbrMode.STARTUP and not self.filled_pipe:
            self._evaluate_round(now, round_index)
        else:
            self._boost = 1.0
        sender = self.sender
        self._round_start_time = now
        self._round_first_seq = sender.snd_nxt
        self._last_ack_time = now
        self._train_end_time = now
        self._mo_rtt = None

    def _evaluate_round(self, now: float, round_index: int) -> None:
        """Run Algorithm 1 on the round that just ended."""
        sender = self.sender
        min_rtt = sender.rtt.min_rtt
        if min_rtt is None or self._train_end_time is None:
            self._boost = 1.0
            return
        # BBR STARTUP is fully paced, so the whole ACK train is measured
        # directly (there is no blue/red split to scale, ratio == 1).
        dt_at = max(self._train_end_time - self._round_start_time, 0.0)
        r = sender.rtt.rounds_since_min_update(round_index)
        growth = growth_factor(dt_at, self._mo_rtt, min_rtt, r, self.k_max)
        self.growth_history.append((round_index, growth))
        if growth > 2 and not sender.in_recovery:
            self._boost = growth / 2.0
            self.boosted_rounds += 1
        else:
            self._boost = 1.0
        obs = getattr(sender, "obs", None)
        if obs is not None:
            obs.emit(now, obsrec.SUSS_DECISION, sender.flow_id,
                     round=round_index, growth=growth, dt_at=dt_at,
                     boost=self._boost,
                     verdict="boost" if self._boost > 1.0 else "no_growth")

    # ------------------------------------------------------------------
    def on_ack(self, ack: AckInfo) -> None:
        # Track the round's ACK-train extent and minimum RTT before the
        # base class updates its model.
        if self._last_ack_time is not None:
            self._train_end_time = ack.now
        self._last_ack_time = ack.now
        if ack.rtt_sample is not None and (self._mo_rtt is None
                                           or ack.rtt_sample < self._mo_rtt):
            self._mo_rtt = ack.rtt_sample
        super().on_ack(ack)
        if self.filled_pipe:
            # STARTUP is over; acceleration ends with it.
            self._boost = 1.0

    def _gains(self) -> tuple:
        pacing_gain, cwnd_gain = super()._gains()
        if self.mode is BbrMode.STARTUP and self._boost > 1.0:
            return pacing_gain * self._boost, cwnd_gain * self._boost
        return pacing_gain, cwnd_gain

    # ------------------------------------------------------------------
    def on_loss(self, now: float) -> None:
        self._boost = 1.0
        super().on_loss(now)

    def on_rto(self, now: float) -> None:
        self._boost = 1.0
        super().on_rto(now)


register("bbr+suss", SussBbr)
