"""SUSS: Speeding Up Slow-Start, integrated into CUBIC (paper Sections 4-5).

``SussCubic`` extends :class:`repro.cc.cubic.Cubic` the same way the
paper's kernel patch extends the CUBIC module.  Per delivery round it:

1. tracks which sequence range was sent by ACK clocking (the *blue* data)
   and which was sent paced (the *red* data);
2. during the clocking period behaves exactly like traditional slow start —
   every blue ACK grows cwnd by the bytes it acknowledges (i.e. sends twice
   the acknowledged amount);
3. when the last blue ACK arrives, measures ``Δt_i^Bat``, estimates the
   full ACK-train duration (Eq. 9), and runs Algorithm 1 to obtain the
   growth factor ``G_i``;
4. if ``G_i > 2``, computes the pacing plan (Eqs. 10-12) and, after the
   guard interval, releases the additional (red) data by growing cwnd one
   MSS at a time at rate ``cwnd_i / minRTT`` — "the value of cwnd grows
   gradually as packets are paced" (Section 5) — up to the round target
   ``cwnd_i = G_i × cwnd_{i-1}``;
5. while a round is accelerated, ACKs for the *previous* round's red data
   do not grow cwnd (the paced schedule already accounts for that growth;
   see the round-3 walkthrough of Fig. 6 and DESIGN.md) — they still free
   window space, so their arrival participates in transmission timing;
6. feeds only blue ACKs to the modified HyStart
   (:class:`repro.core.hystart_mod.SussHyStart`), with the elapsed time
   scaled by the train/blue ratio.

On loss, timeout, or HyStart exit, pacing is aborted and behaviour reverts
to stock CUBIC — SUSS is active only while slow start's exponential growth
is predicted to continue.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cc.base import AckInfo, register
from repro.cc.cubic import Cubic
from repro.core.growth import DEFAULT_K_MAX, estimate_ack_train, growth_factor
from repro.core.hystart_mod import SussHyStart
from repro.core.pacing_plan import PacingPlan, make_pacing_plan
from repro.core.units import BytesPerSec, Seconds
from repro.obs import records as obsrec
from repro.sim.engine import EventRef


class SussCubic(Cubic):
    """CUBIC with the SUSS slow-start accelerator."""

    name = "cubic+suss"

    def __init__(self, k_max: int = DEFAULT_K_MAX, **cubic_kwargs) -> None:
        if "hystart" not in cubic_kwargs:
            cubic_kwargs["hystart"] = SussHyStart(
                cap_provider=self._hystart_cap_segments)
        super().__init__(**cubic_kwargs)
        self.k_max = k_max

        # previous-round geometry (what the current round's ACKs describe)
        self._prev_blue_start = 0
        self._prev_blue_end = 0
        self._prev_train_bytes = 0

        # current-round bookkeeping
        self._round_start_time: Seconds = 0.0
        self._round_first_seq = 0
        self._cur_blue_end: Optional[int] = None
        self._cwnd_at_round_start = 0.0
        self._mo_rtt: Optional[Seconds] = None
        self._measured = False

        # pacing-period state
        self._pacing_target: Optional[float] = None
        self._pacing_rate: BytesPerSec = 0.0
        self._pacing_handle: Optional[EventRef] = None

        # instrumentation
        self.accelerated_rounds = 0
        self.suppressed_red_bytes = 0
        self.growth_history: List[Tuple[int, int]] = []
        self.last_plan: Optional[PacingPlan] = None

    # ------------------------------------------------------------------
    def init(self) -> None:
        super().init()
        self._cwnd_at_round_start = self._cwnd
        self._round_first_seq = 0
        self._prev_blue_start = 0
        self._prev_blue_end = 0

    @property
    def _sim(self):
        return self.sender.sim

    #: margin the deferred HyStart exit allows above the firing cwnd —
    #: hedges the scaled estimate's error without risking a full extra
    #: doubling into a shallow buffer (spurious triggers are additionally
    #: disarmed when they fail to re-fire the next round).  On very small
    #: windows the extra half-doubling can cost a handful of drops; the
    #: flow still finishes faster than plain CUBIC there (the property
    #: test in tests/test_property_suss_never_worse.py pins this down).
    HYSTART_CAP_MARGIN = 1.5

    def _hystart_cap_segments(self, cwnd_segments: float) -> float:
        """Cap for the modified HyStart's deferred exit (Fig. 8).

        The ratio-scaled train estimate fires early in real time and can
        overestimate; the cap postpones the stop by a modest margin above
        the cwnd at firing time, so a spurious trigger does not truncate
        growth while a genuine one still stops near where plain HyStart
        would have.
        """
        return self.HYSTART_CAP_MARGIN * cwnd_segments

    # ------------------------------------------------------------------
    # round transitions
    # ------------------------------------------------------------------
    def on_round_start(self, now: Seconds, round_index: int) -> None:
        snd_nxt = self.sender.snd_nxt
        # Finalise the round that just ended: its blue part either stopped
        # at the pacing boundary snapshot, or — in a traditional round —
        # covered everything it sent.
        blue_end = self._cur_blue_end if self._cur_blue_end is not None else snd_nxt
        self._prev_blue_start = self._round_first_seq
        self._prev_blue_end = min(blue_end, snd_nxt)
        self._prev_train_bytes = snd_nxt - self._round_first_seq

        self._round_first_seq = snd_nxt
        self._round_start_time = now
        self._cur_blue_end = None
        self._cwnd_at_round_start = self._cwnd
        self._mo_rtt = None
        self._measured = False
        self._abort_pacing()

        if self.in_slow_start and isinstance(self.hystart, SussHyStart):
            blue = self._prev_blue_end - self._prev_blue_start
            if blue > 0 and self._prev_train_bytes > blue:
                self.hystart.ratio = self._prev_train_bytes / blue
            else:
                self.hystart.ratio = 1.0
        super().on_round_start(now, round_index)

    # ------------------------------------------------------------------
    # per-ACK processing
    # ------------------------------------------------------------------
    def on_ack(self, ack: AckInfo) -> None:
        if ack.in_recovery:
            return
        if not self.in_slow_start:
            self._abort_pacing()
            self._congestion_avoidance_ack(ack)
            return

        is_blue = ack.ack_seq <= self._prev_blue_end or self._prev_blue_end == 0
        if is_blue:
            self._on_blue_ack(ack)
        else:
            self._on_red_ack(ack)

    def _on_blue_ack(self, ack: AckInfo) -> None:
        if ack.rtt_sample is not None and (self._mo_rtt is None
                                           or ack.rtt_sample < self._mo_rtt):
            self._mo_rtt = ack.rtt_sample
        if self.hystart_enabled and self.hystart.on_ack(
                ack.now, ack.rtt_sample, self.min_rtt, self._cwnd / self.mss):
            self.exit_slow_start(ack.now)
            self._congestion_avoidance_ack(ack)
            return
        # Clocking period: traditional slow start (send 2x the acked data).
        self._cwnd += ack.acked_bytes
        if (not self._measured and self._prev_blue_end > 0
                and ack.ack_seq >= self._prev_blue_end):
            self._on_blue_train_complete(ack.now)

    def _on_red_ack(self, ack: AckInfo) -> None:
        if self._pacing_target is None:
            # Traditional round (G <= 2): red ACKs of the previous round
            # clock out twice their data, exactly like Fig. 6 round 4.
            self._cwnd += ack.acked_bytes
            # Red ACKs carry no usable path signal for HyStart's heuristics,
            # but a deferred exit armed during the blue train must still
            # stop growth once cwnd passes the cap (Fig. 8's expGrowth=0).
            if isinstance(self.hystart, SussHyStart) \
                    and self.hystart.cap is not None \
                    and self._cwnd / self.mss > self.hystart.cap:
                self.hystart.found = True
                self.exit_slow_start(ack.now)
                self._congestion_avoidance_ack(ack)
        else:
            # Accelerated round: growth is owned by the paced schedule; the
            # ACK still frees window space for in-flight accounting.
            self.suppressed_red_bytes += ack.acked_bytes

    # ------------------------------------------------------------------
    # measurement and acceleration
    # ------------------------------------------------------------------
    def _on_blue_train_complete(self, now: Seconds) -> None:
        self._measured = True
        blue = self._prev_blue_end - self._prev_blue_start
        train = self._prev_train_bytes
        min_rtt = self.min_rtt
        if blue <= 0 or train <= 0 or min_rtt is None:
            return
        dt_bat = now - self._round_start_time
        dt_at = estimate_ack_train(dt_bat, train, blue)
        sender = self.sender
        r = sender.rtt.rounds_since_min_update(sender.round_index)
        growth = growth_factor(dt_at, self._mo_rtt, min_rtt, r, self.k_max)
        self.growth_history.append((sender.round_index, growth))
        obs = getattr(sender, "obs", None)

        def decide(verdict: str) -> None:
            if obs is not None:
                obs.emit(now, obsrec.SUSS_DECISION, sender.flow_id,
                         round=sender.round_index, growth=growth,
                         dt_bat=dt_bat, dt_at=dt_at, blue=blue, train=train,
                         verdict=verdict)

        if growth <= 2:
            decide("no_growth")
            return
        if self.hystart.found or sender.app_limited or sender.in_recovery:
            decide("inhibited")
            return
        cwnd_prev = int(self._cwnd_at_round_start)
        try:
            plan = make_pacing_plan(cwnd_prev=cwnd_prev, s_bdt_prev=blue,
                                    growth=growth, min_rtt=min_rtt,
                                    dt_bat=dt_bat)
        except ValueError:
            decide("plan_rejected")
            return
        if plan.cwnd_target <= self._cwnd:
            decide("plan_rejected")
            return
        decide("accelerate")
        if obs is not None:
            obs.emit(now, obsrec.SUSS_PLAN, sender.flow_id,
                     target=plan.cwnd_target, rate=plan.rate,
                     guard=plan.guard)
        self.last_plan = plan
        self.accelerated_rounds += 1
        self._pacing_target = float(plan.cwnd_target)
        self._pacing_rate = plan.rate
        # Delimit this round's blue data once the clocking sends (triggered
        # by the current ACK) have left: a same-timestamp event fires after
        # the sender's synchronous transmission.
        self._sim.schedule(0.0, self._snapshot_blue_end)
        step = self.mss / plan.rate
        self._pacing_handle = self._sim.schedule(plan.guard + step,
                                                 self._pacing_tick)

    def _snapshot_blue_end(self) -> None:
        if self._cur_blue_end is None:
            self._cur_blue_end = self.sender.snd_nxt

    def _pacing_tick(self) -> None:
        if self._pacing_target is None:
            return
        if not self.in_slow_start or self.sender.completed \
                or self.sender.in_recovery:
            self._abort_pacing()
            return
        self._cwnd = min(self._cwnd + self.mss, self._pacing_target)
        self.sender.kick()
        if self._cwnd < self._pacing_target and not self.sender.app_limited:
            self._pacing_handle = self._sim.schedule(
                self.mss / self._pacing_rate, self._pacing_tick)
        else:
            self._pacing_handle = None

    def _abort_pacing(self) -> None:
        aborted_midway = (self._pacing_handle is not None
                          and self._sim.event_pending(self._pacing_handle))
        if aborted_midway:
            self._sim.cancel_event(self._pacing_handle)
        if aborted_midway and self._pacing_target is not None:
            obs = getattr(self.sender, "obs", None)
            if obs is not None:
                obs.emit(self._sim.now, obsrec.SUSS_ABORT,
                         self.sender.flow_id, cwnd=self.cwnd,
                         target=self._pacing_target)
        self._pacing_handle = None
        self._pacing_target = None

    # ------------------------------------------------------------------
    # reversions to stock CUBIC behaviour
    # ------------------------------------------------------------------
    def exit_slow_start(self, now: Seconds) -> None:
        self._abort_pacing()
        super().exit_slow_start(now)

    def on_loss(self, now: Seconds) -> None:
        self._abort_pacing()
        super().on_loss(now)

    def on_rto(self, now: Seconds) -> None:
        self._abort_pacing()
        super().on_rto(now)


register("cubic+suss", SussCubic)
register("cubic+suss-k2", lambda: SussCubic(k_max=2))
register("cubic+suss-k3", lambda: SussCubic(k_max=3))
