"""Unit type aliases and canonical conversion constants.

Every quantity in the reproduction is a plain number at runtime; what
keeps seconds, bytes and bytes-per-second from being mixed up is the
static unit checker (:mod:`repro.analysis.units`, rules UNIT001-UNIT006)
and the annotation vocabulary defined here.  Annotating a signature with
one of these aliases both documents the quantity's dimension and anchors
the checker's flow-sensitive inference:

>>> def bdp_bytes(rate: BytesPerSec, rtt: Seconds) -> Bytes: ...

The aliases are ordinary ``float`` aliases — they impose no runtime
cost or behaviour — and the conversion constants are the single source
of truth for the magic numbers that previously appeared inline
(``* 8``, ``* 1000``, ``125_000``).  The checker knows each constant's
dimension, so ``rtt * MILLIS_PER_SECOND`` infers as ``Millis`` while a
raw ``rtt * 1000`` is flagged (UNIT004).

This module is a dependency-free leaf: any layer (``sim``, ``net``,
``tcp``, ...) may import it, which the layering checker permits through
an explicit ``core.units`` waiver (see DESIGN.md §6).
"""

from __future__ import annotations

# -- unit type aliases (annotation vocabulary) -------------------------
#: elapsed or absolute simulated time, in seconds.
Seconds = float
#: time in milliseconds (display/reporting only; simulate in seconds).
Millis = float
#: a byte count (sizes, windows, buffer capacities).
Bytes = float
#: a bit count (wire-rate arithmetic).
Bits = float
#: a count of MSS-sized segments (cwnd in packets, CSA00's ``d``).
Segments = float
#: a data rate in bytes per second (bandwidths, pacing rates).
BytesPerSec = float
#: a data rate in bits per second (paper-facing Mbit/s figures).
BitsPerSec = float
#: an event rate in 1/seconds (e.g. flow arrivals per second).
PerSecond = float

# -- canonical conversion constants ------------------------------------
#: bytes/second per Mbit/s: ``50 * MBPS`` is a 50 Mbit/s link's byte rate.
MBPS = 125_000
#: bits per byte: ``goodput_bytes_per_sec * BITS_PER_BYTE`` is bits/sec.
BITS_PER_BYTE = 8
#: bytes per megabyte (decimal, as in the paper's flow sizes).
MB = 1_000_000
#: bits per megabit: ``bits / MBIT`` renders a Mbit figure.
MBIT = 1e6
#: milliseconds per second: ``rtt * MILLIS_PER_SECOND`` renders ms.
MILLIS_PER_SECOND = 1000
#: microseconds per second (profiler output).
MICROS_PER_SECOND = 1e6
#: the reproduction's maximum segment size in payload bytes
#: (:data:`repro.net.packet.DEFAULT_MSS` re-exports this value).
MSS = 1448

__all__ = [
    "Seconds", "Millis", "Bytes", "Bits", "Segments",
    "BytesPerSec", "BitsPerSec", "PerSecond",
    "MBPS", "BITS_PER_BYTE", "MB", "MBIT",
    "MILLIS_PER_SECOND", "MICROS_PER_SECOND", "MSS",
]
