"""Time-series container for sampled connection state.

The paper's evaluation plots cwnd, RTT, and delivered data against time
(Figs. 1, 9, 10, 16); a :class:`TimeSeries` is the stored form of those
curves, with step-interpolation lookup and windowed-rate helpers used to
compute goodput for the fairness analysis (Fig. 15).
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from repro.core.units import Seconds


class TimeSeries:
    """Append-only (time, value) series with step semantics."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[Seconds] = []
        self.values: List[float] = []

    def append(self, t: Seconds, value: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError("time must be non-decreasing")
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    @property
    def empty(self) -> bool:
        return not self.times

    def value_at(self, t: Seconds) -> Optional[float]:
        """Step-interpolated value at time ``t`` (last sample <= t)."""
        idx = bisect.bisect_right(self.times, t) - 1
        if idx < 0:
            return None
        return self.values[idx]

    def window_delta(self, t0: Seconds, t1: Seconds) -> float:
        """Change in value over [t0, t1] for cumulative series."""
        if t1 <= t0:
            raise ValueError("t1 must exceed t0")
        v0 = self.value_at(t0) or 0.0
        v1 = self.value_at(t1) or 0.0
        return v1 - v0

    def rate(self, t0: Seconds, t1: Seconds) -> float:
        """Mean growth rate over [t0, t1] (goodput for delivered-bytes series)."""
        return self.window_delta(t0, t1) / (t1 - t0)

    def max_value(self) -> Optional[float]:
        return max(self.values) if self.values else None

    def min_value(self) -> Optional[float]:
        return min(self.values) if self.values else None

    def resample(self, interval: Seconds, t_end: Optional[Seconds] = None
                 ) -> "TimeSeries":
        """Step-resample at fixed ``interval`` (useful for plotting/export)."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        out = TimeSeries(self.name)
        if self.empty:
            return out
        t = self.times[0]
        end = t_end if t_end is not None else self.times[-1]
        while t <= end:
            value = self.value_at(t)
            if value is not None:
                out.append(t, value)
            t += interval
        return out
