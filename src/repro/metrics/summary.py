"""Aggregate statistics helpers for experiment iterations.

The paper reports means over 50 iterations with standard deviations shown
as shaded areas; :class:`Summary` carries exactly those aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Summary:
    """Mean / standard deviation / extremes of a sample set."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.2g} (n={self.n})"


def summarize(samples: Sequence[float]) -> Summary:
    """Compute a :class:`Summary`; requires at least one sample."""
    if not samples:
        raise ValueError("need at least one sample")
    n = len(samples)
    mean = sum(samples) / n
    if n > 1:
        var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    else:
        var = 0.0
    return Summary(n=n, mean=mean, std=math.sqrt(var),
                   minimum=min(samples), maximum=max(samples))


def improvement(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` (0.2 = 20%).

    Positive when ``improved`` is smaller (faster FCT, lower loss).
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (baseline - improved) / baseline
