"""Aggregate statistics helpers for experiment iterations.

The paper reports means over 50 iterations with standard deviations shown
as shaded areas, and medians for the FCT distributions; :class:`Summary`
carries exactly those aggregates (plus the p95 tail the validation
subsystem gates on).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.obs.metrics import Histogram, MetricRegistry


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``samples`` (``q`` in [0, 100])."""
    if not samples:
        raise ValueError("need at least one sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] + frac * (ordered[high] - ordered[low])


@dataclass(frozen=True)
class Summary:
    """Mean / std / extremes / median / p95 of a sample set."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    p95: float

    @property
    def empty(self) -> bool:
        """True for the zero-sample sentinel (:data:`EMPTY_SUMMARY`)."""
        return self.n == 0

    def __str__(self) -> str:
        if self.empty:
            return "no samples"
        return f"{self.mean:.4g} ± {self.std:.2g} (n={self.n})"


#: the zero-sample sentinel.  Aggregating an instrument nobody wrote to
#: is an expected situation (a sweep where one scheme never retransmits,
#: a histogram behind a disabled feature), not a programming error, so
#: :func:`summarize_metric` returns this instead of raising.  The NaN
#: statistics poison any arithmetic loudly; test with ``summary.empty``.
EMPTY_SUMMARY = Summary(n=0, mean=float("nan"), std=float("nan"),
                        minimum=float("nan"), maximum=float("nan"),
                        median=float("nan"), p95=float("nan"))


def summarize(samples: Sequence[float]) -> Summary:
    """Compute a :class:`Summary`; requires at least one sample."""
    if not samples:
        raise ValueError("need at least one sample")
    n = len(samples)
    mean = sum(samples) / n
    if n > 1:
        var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    else:
        var = 0.0
    return Summary(n=n, mean=mean, std=math.sqrt(var),
                   minimum=min(samples), maximum=max(samples),
                   median=percentile(samples, 50.0),
                   p95=percentile(samples, 95.0))


def summarize_metric(registry: MetricRegistry, name: str) -> Summary:
    """Summary over one registry metric's values across all label sets.

    Counters and gauges contribute their current value; histograms
    contribute their streaming mean.  Gauges never written to and empty
    histograms are skipped.  When nothing under ``name`` has a value yet
    (including an unknown name), the :data:`EMPTY_SUMMARY` sentinel is
    returned — check ``summary.empty`` before using the statistics.
    """
    values = []
    for labels in registry.labels_of(name):
        instrument = registry.get(name, **labels)
        if isinstance(instrument, Histogram):
            if instrument.count:
                values.append(instrument.mean)
        elif instrument.value is not None:
            values.append(instrument.value)
    if not values:
        return EMPTY_SUMMARY
    return summarize(values)


def improvement(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` (0.2 = 20%).

    Positive when ``improved`` is smaller (faster FCT, lower loss).
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (baseline - improved) / baseline
