"""Aggregate statistics helpers for experiment iterations.

The paper reports means over 50 iterations with standard deviations shown
as shaded areas; :class:`Summary` carries exactly those aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.obs.metrics import Histogram, MetricRegistry


@dataclass(frozen=True)
class Summary:
    """Mean / standard deviation / extremes of a sample set."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.2g} (n={self.n})"


def summarize(samples: Sequence[float]) -> Summary:
    """Compute a :class:`Summary`; requires at least one sample."""
    if not samples:
        raise ValueError("need at least one sample")
    n = len(samples)
    mean = sum(samples) / n
    if n > 1:
        var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    else:
        var = 0.0
    return Summary(n=n, mean=mean, std=math.sqrt(var),
                   minimum=min(samples), maximum=max(samples))


def summarize_metric(registry: MetricRegistry, name: str) -> Summary:
    """Summary over one registry metric's values across all label sets.

    Counters and gauges contribute their current value; histograms
    contribute their streaming mean.  Gauges never written to and empty
    histograms are skipped.  Raises like :func:`summarize` when nothing
    under ``name`` has a value yet.
    """
    values = []
    for labels in registry.labels_of(name):
        instrument = registry.get(name, **labels)
        if isinstance(instrument, Histogram):
            if instrument.count:
                values.append(instrument.mean)
        elif instrument.value is not None:
            values.append(instrument.value)
    return summarize(values)


def improvement(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` (0.2 = 20%).

    Positive when ``improved`` is smaller (faster FCT, lower loss).
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (baseline - improved) / baseline
