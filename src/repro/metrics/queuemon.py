"""Bottleneck-queue occupancy monitoring.

The paper's burstiness argument (Sections 4 and 6.3) is about queue
pressure: bursty slow-start doubling piles packets into the bottleneck
buffer, paced SUSS growth does not.  :class:`QueueMonitor` samples a
queue's depth on a fixed grid so experiments can report peak/percentile
occupancy directly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.units import Bytes, Seconds
from repro.metrics.timeseries import TimeSeries
from repro.net.queue import DropTailQueue
from repro.sim.engine import EventRef, Simulator


class QueueMonitor:
    """Periodically samples a queue's byte occupancy."""

    def __init__(self, sim: Simulator, queue: DropTailQueue,
                 interval: Seconds = 0.005,
                 max_duration: Optional[Seconds] = 600.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.queue = queue
        self.interval = interval
        self.series = TimeSeries("queue_bytes")
        self._deadline = (sim.now + max_duration
                          if max_duration is not None else None)
        self._handle: Optional[EventRef] = None
        self._stopped = False
        self._tick()

    def _tick(self) -> None:
        if self._stopped:
            return
        self.series.append(self.sim.now, self.queue.bytes_queued)
        if self._deadline is not None and self.sim.now >= self._deadline:
            return
        self._handle = self.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        """Stop sampling (pending tick is cancelled)."""
        self._stopped = True
        if self._handle is not None:
            self.sim.cancel_event(self._handle)

    # -- summaries ---------------------------------------------------------
    def peak(self, t_start: Seconds = 0.0,
             t_end: Optional[Seconds] = None) -> Bytes:
        """Maximum occupancy in [t_start, t_end]."""
        values = self._window(t_start, t_end)
        return max(values) if values else 0.0

    def percentile(self, q: float, t_start: Seconds = 0.0,
                   t_end: Optional[Seconds] = None) -> Bytes:
        """q-th percentile (q in [0, 100]) of occupancy in the window."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        values = sorted(self._window(t_start, t_end))
        if not values:
            return 0.0
        index = min(int(len(values) * q / 100.0), len(values) - 1)
        return values[index]

    def mean(self, t_start: Seconds = 0.0,
             t_end: Optional[Seconds] = None) -> Bytes:
        values = self._window(t_start, t_end)
        return sum(values) / len(values) if values else 0.0

    def _window(self, t_start: Seconds, t_end: Optional[Seconds]) -> List[Bytes]:
        return [v for t, v in self.series
                if t >= t_start and (t_end is None or t <= t_end)]
