"""Fairness metrics (RFC 5166): Jain's fairness index over goodput.

Used by the Fig. 15 reproduction: ``F = (Σx)² / (n·Σx²)`` computed over
per-flow goodputs in sliding windows, so the index can be plotted against
time while flows join a congested bottleneck.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.metrics.timeseries import TimeSeries


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index of ``values`` (goodputs); in (0, 1].

    All-zero input returns 1.0 (no flow is being treated unfairly when
    nothing is flowing); negative inputs are invalid.
    """
    if not values:
        raise ValueError("need at least one value")
    if any(v < 0 for v in values):
        raise ValueError("goodput cannot be negative")
    total = sum(values)
    squares = sum(v * v for v in values)
    # squares can underflow to 0.0 for denormal goodputs even when the sum
    # does not; treat that as "nothing meaningful is flowing".
    if total == 0 or squares == 0:
        return 1.0
    return min((total * total) / (len(values) * squares), 1.0)


def fairness_over_time(delivered: Dict[int, TimeSeries], t_start: float,
                       t_end: float, window: float = 1.0,
                       step: float = 0.5) -> List[Tuple[float, float]]:
    """Jain's index over sliding goodput windows.

    Args:
        delivered: per-flow cumulative delivered-bytes series.
        t_start, t_end: evaluation span.
        window: goodput-averaging window (seconds).
        step: evaluation step (seconds).

    Returns:
        List of (time, fairness) points; flows that have not started (or
        have finished) contribute their actual — possibly zero — goodput,
        which is exactly what makes a late-starting flow drag the index
        down until it reaches its fair share.
    """
    if not delivered:
        raise ValueError("need at least one flow")
    points: List[Tuple[float, float]] = []
    t = t_start + window
    while t <= t_end:
        goodputs = [series.rate(t - window, t)
                    for series in delivered.values()]
        points.append((t, jain_index(goodputs)))
        t += step
    return points
