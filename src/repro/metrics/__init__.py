"""Measurement and aggregation: telemetry, time series, fairness, summaries."""

from repro.metrics.collector import FlowTrace, Telemetry
from repro.metrics.fairness import fairness_over_time, jain_index
from repro.metrics.queuemon import QueueMonitor
from repro.metrics.summary import (
    EMPTY_SUMMARY,
    Summary,
    improvement,
    summarize,
    summarize_metric,
)
from repro.metrics.timeseries import TimeSeries

__all__ = [
    "QueueMonitor",
    "FlowTrace",
    "Telemetry",
    "fairness_over_time",
    "jain_index",
    "EMPTY_SUMMARY",
    "Summary",
    "improvement",
    "summarize",
    "summarize_metric",
    "TimeSeries",
]
