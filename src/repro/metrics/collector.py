"""Telemetry collection — the simulation analogue of the paper's kernel log.

The paper instruments the kernel to log TCP state variables (inflight,
cwnd, RTT, delivered data).  :class:`Telemetry` provides the same
visibility: TCP endpoints and queues call its hooks, and experiments read
the per-flow :class:`FlowTrace` records afterwards.

All hooks are cheap appends; a Telemetry object can be shared by every
flow in a scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.net.packet import Packet
from repro.metrics.timeseries import TimeSeries
from repro.obs.metrics import Counter, MetricRegistry


@dataclass
class FlowTrace:
    """Everything recorded about one flow."""

    flow_id: int
    cwnd: TimeSeries = field(default_factory=lambda: TimeSeries("cwnd"))
    inflight: TimeSeries = field(default_factory=lambda: TimeSeries("inflight"))
    rtt: TimeSeries = field(default_factory=lambda: TimeSeries("rtt"))
    delivered: TimeSeries = field(default_factory=lambda: TimeSeries("delivered"))
    data_packets_sent: int = 0
    retransmit_packets: int = 0
    drops: int = 0
    completion_time: Optional[float] = None

    @property
    def loss_rate(self) -> float:
        """Dropped data packets over data packets sent (paper Fig. 14/17)."""
        if self.data_packets_sent == 0:
            return 0.0
        return self.drops / self.data_packets_sent

    @property
    def retransmit_rate(self) -> float:
        if self.data_packets_sent == 0:
            return 0.0
        return self.retransmit_packets / self.data_packets_sent


class Telemetry:
    """Shared sink for per-flow instrumentation events."""

    def __init__(self, sample_cwnd: bool = True, sample_rtt: bool = True,
                 sample_delivered: bool = True,
                 registry: Optional[MetricRegistry] = None) -> None:
        self.flows: Dict[int, FlowTrace] = {}
        self.sample_cwnd = sample_cwnd
        self.sample_rtt = sample_rtt
        self.sample_delivered = sample_delivered
        self.total_drops = 0
        #: optional repro.obs metric registry mirroring the counters, so
        #: campaign/experiment code can read one uniform snapshot.
        self.registry = registry
        self._handles: Dict[Tuple[str, int], Counter] = {}

    def _counter(self, name: str, flow_id: int) -> Counter:
        key = (name, flow_id)
        handle = self._handles.get(key)
        if handle is None:
            handle = self.registry.counter(name, flow=flow_id)
            self._handles[key] = handle
        return handle

    def flow(self, flow_id: int) -> FlowTrace:
        if flow_id not in self.flows:
            self.flows[flow_id] = FlowTrace(flow_id)
        return self.flows[flow_id]

    # -- hooks called by the stack ----------------------------------------
    def on_cwnd(self, flow_id: int, now: float, cwnd: int, inflight: int) -> None:
        if not self.sample_cwnd:
            return
        trace = self.flow(flow_id)
        trace.cwnd.append(now, cwnd)
        trace.inflight.append(now, inflight)

    def on_rtt(self, flow_id: int, now: float, rtt: float) -> None:
        if self.sample_rtt:
            self.flow(flow_id).rtt.append(now, rtt)

    def on_send(self, flow_id: int, now: float, packet: Packet,
                retransmit: bool) -> None:
        trace = self.flow(flow_id)
        trace.data_packets_sent += 1
        if retransmit:
            trace.retransmit_packets += 1
        if self.registry is not None:
            self._counter("telemetry.data_packets", flow_id).add(1)
            if retransmit:
                self._counter("telemetry.retransmits", flow_id).add(1)

    def on_delivered(self, flow_id: int, now: float, delivered: int) -> None:
        if self.sample_delivered:
            self.flow(flow_id).delivered.append(now, delivered)

    def on_flow_complete(self, flow_id: int, now: float) -> None:
        self.flow(flow_id).completion_time = now

    def on_drop(self, packet: Packet, queue_name: str) -> None:
        self.total_drops += 1
        self.flow(packet.flow_id).drops += 1
        if self.registry is not None:
            self._counter("telemetry.drops", packet.flow_id).add(1)

    # -- wiring helpers ----------------------------------------------------
    def attach_queue(self, queue) -> None:
        """Route a queue's drop events into this telemetry object."""
        queue.on_drop = self.on_drop
