"""Observability layer: structured tracing, metric registries, profiling.

``repro.obs`` sits at the bottom of the layer DAG (beside
``repro.analysis``) so the engine, network substrate, TCP stack, and
congestion controls can all emit into it without inverting any
dependency.  See DESIGN.md §7 for the record schema, the sink protocol,
and the overhead contract.
"""

from repro.obs.golden import (
    Divergence,
    digest_lines,
    first_divergence,
    load_digests,
    load_stream,
    record_lines,
    save_golden,
    trace_digest,
)
from repro.obs.export import MetricsServer, render_openmetrics, render_top
from repro.obs.ledger import RunLedger, build_ledger, load_ledger, write_ledger
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.profile import EventProfiler
from repro.obs.records import ALL_KINDS, TraceRecord, parse_kinds
from repro.obs.runtime import (
    JobSpan,
    RunTelemetry,
    add_engine_events,
    add_flows_modelled,
    resource_delta,
    sample_resources,
)
from repro.obs.sinks import (
    DigestSink,
    JsonlSink,
    MemorySink,
    RingBufferSink,
    TeeSink,
    TraceSink,
)
from repro.obs.tracer import Observability, Tracer, from_env, tracing

__all__ = [
    "ALL_KINDS",
    "Counter",
    "DigestSink",
    "Divergence",
    "EventProfiler",
    "Gauge",
    "Histogram",
    "JobSpan",
    "JsonlSink",
    "MemorySink",
    "MetricRegistry",
    "MetricsServer",
    "Observability",
    "RingBufferSink",
    "RunLedger",
    "RunTelemetry",
    "TeeSink",
    "TraceRecord",
    "TraceSink",
    "Tracer",
    "add_engine_events",
    "add_flows_modelled",
    "build_ledger",
    "digest_lines",
    "first_divergence",
    "from_env",
    "load_digests",
    "load_ledger",
    "load_stream",
    "parse_kinds",
    "record_lines",
    "render_openmetrics",
    "render_top",
    "resource_delta",
    "sample_resources",
    "save_golden",
    "trace_digest",
    "tracing",
    "write_ledger",
]
