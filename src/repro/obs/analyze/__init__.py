"""Stream-oriented trace analysis over provenance-stamped records.

The pipeline (`analyze_records`) reconstructs per-flow timelines from
any record stream, segments each flow into congestion-control phases,
classifies retransmissions (genuine / spurious / RTO-driven /
unconfirmed), and runs pluggable anomaly detectors that emit structured
findings.  ``repro analyze`` and ``repro explain`` are the CLI front
ends; campaign jobs can attach the JSON form to their results.
"""

from repro.obs.analyze.anomalies import (
    AnomalyDetector,
    CwndCollapseDetector,
    PacingStallDetector,
    RtoSpikeDetector,
    SussAbortDetector,
    default_detectors,
)
from repro.obs.analyze.classify import (
    ALL_CLASSES,
    RetxClassification,
    classify_retransmissions,
    tally,
)
from repro.obs.analyze.findings import SEVERITIES, Finding
from repro.obs.analyze.phases import (
    ALL_PHASES,
    PhaseSegment,
    phase_at,
    segment_phases,
)
from repro.obs.analyze.report import (
    FlowReport,
    TraceAnalysis,
    analyze_records,
    load_trace,
    render_flow,
)
from repro.obs.analyze.timeline import FlowTimeline, build_timelines

__all__ = [
    "ALL_CLASSES",
    "ALL_PHASES",
    "SEVERITIES",
    "AnomalyDetector",
    "CwndCollapseDetector",
    "Finding",
    "FlowReport",
    "FlowTimeline",
    "PacingStallDetector",
    "PhaseSegment",
    "RetxClassification",
    "RtoSpikeDetector",
    "SussAbortDetector",
    "TraceAnalysis",
    "analyze_records",
    "build_timelines",
    "classify_retransmissions",
    "default_detectors",
    "load_trace",
    "phase_at",
    "render_flow",
    "segment_phases",
    "tally",
]
