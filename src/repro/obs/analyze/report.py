"""Whole-trace analysis: timelines + phases + classification + findings.

:func:`analyze_records` is the single entry point: it turns any record
stream (a :class:`~repro.obs.sinks.MemorySink`'s contents, a loaded
JSONL trace, a golden stream) into a :class:`TraceAnalysis` — one
:class:`FlowReport` per flow plus the unattributed leftovers — which
renders to JSON (``to_dict``) or to a human narrative
(``render_text``).
"""

from __future__ import annotations

import gzip
import io
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.analyze.anomalies import AnomalyDetector, default_detectors
from repro.obs.analyze.classify import (
    RetxClassification,
    classify_retransmissions,
    tally,
)
from repro.obs.analyze.findings import Finding
from repro.obs.analyze.phases import PhaseSegment, phase_at, segment_phases
from repro.obs.analyze.timeline import (
    FlowTimeline,
    build_timelines,
)
from repro.core.units import BITS_PER_BYTE, MBIT
from repro.obs.records import TraceRecord


class FlowReport:
    """Everything the analyzer derived about one flow."""

    def __init__(self, timeline: FlowTimeline,
                 phases: List[PhaseSegment],
                 retransmissions: List[RetxClassification],
                 findings: List[Finding]) -> None:
        self.flow = timeline.flow
        self.timeline = timeline
        self.phases = phases
        self.retransmissions = retransmissions
        self.findings = findings

    def phase_at(self, t: float) -> str:
        return phase_at(self.phases, t)

    def summary(self) -> Dict[str, Any]:
        tl = self.timeline
        rtts = [s.rtt for s in tl.rtt]
        return {
            "flow": self.flow,
            "records": tl.record_count,
            "start": tl.first_time,
            "end": tl.last_time,
            "duration": tl.duration,
            "bytes_sent": tl.bytes_sent,
            "bytes_delivered": tl.bytes_delivered,
            "goodput_bps": tl.goodput(),
            "sends": len(tl.sends),
            "retransmissions": tally(self.retransmissions),
            "drops": len(tl.drops),
            "rtos": len(tl.rtos),
            "max_cwnd": tl.max_cwnd,
            "rtt_min": min(rtts) if rtts else None,
            "rtt_max": max(rtts) if rtts else None,
            "suss": {
                "decisions": len(tl.suss_decisions),
                "accelerations": sum(
                    1 for d in tl.suss_decisions if d.verdict == "accelerate"),
                "plans": len(tl.suss_plans),
                "aborts": len(tl.suss_aborts),
            },
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "summary": self.summary(),
            "phases": [{"start": p.start, "end": p.end, "phase": p.phase}
                       for p in self.phases],
            "retransmissions": [
                {"t": r.t, "seq": r.seq, "eid": r.eid, "cause": r.cause,
                 "prev_t": r.prev_t}
                for r in self.retransmissions],
            "findings": [f.to_dict() for f in self.findings],
        }


class TraceAnalysis:
    """Analysis of a whole trace: per-flow reports + unattributed rest."""

    def __init__(self, flows: Dict[int, FlowReport],
                 unattributed: List[TraceRecord],
                 record_count: int) -> None:
        self.flows = flows
        self.unattributed = unattributed
        self.record_count = record_count

    @property
    def findings(self) -> List[Finding]:
        """All flows' findings, ordered by time then flow."""
        out = [f for report in self.flows.values() for f in report.findings]
        out.sort(key=lambda f: (f.time, f.flow))
        return out

    def to_dict(self) -> Dict[str, Any]:
        aqm_drops = sum(r.fields.get("count", 0) for r in self.unattributed
                        if r.kind == "pkt.drop")
        return {
            "records": self.record_count,
            "flows": {str(flow): report.to_dict()
                      for flow, report in sorted(self.flows.items())},
            "unattributed_records": len(self.unattributed),
            "unattributed_aqm_drops": aqm_drops,
            "findings": [f.to_dict() for f in self.findings],
        }

    def render_text(self) -> str:
        if not self.flows:
            return (f"{self.record_count} records, no flow-attributed "
                    f"activity to analyze")
        lines = [f"{self.record_count} records, {len(self.flows)} flow(s)"]
        for flow in sorted(self.flows):
            lines.append("")
            lines.extend(render_flow(self.flows[flow]).splitlines())
        return "\n".join(lines)


def render_flow(report: FlowReport) -> str:
    """Human narrative for one flow."""
    s = report.summary()
    mbit = s["goodput_bps"] * BITS_PER_BYTE / MBIT
    lines = [f"flow {report.flow}: {s['bytes_delivered']} bytes delivered "
             f"in {s['duration']:.3f} s ({mbit:.2f} Mbit/s goodput)"]
    phase_bits = [f"{p.phase} {p.start:.3f}-{p.end:.3f}"
                  for p in report.phases]
    lines.append("  phases: " + (" | ".join(phase_bits) or "(none)"))
    retx = s["retransmissions"]
    total_retx = sum(retx.values())
    lines.append(
        f"  sends: {s['sends']} ({total_retx} retx: "
        f"{retx['genuine']} genuine, {retx['spurious']} spurious, "
        f"{retx['rto']} rto, {retx['unconfirmed']} unconfirmed); "
        f"drops seen: {s['drops']}; rtos: {s['rtos']}")
    if s["rtt_min"] is not None:
        lines.append(f"  rtt: {s['rtt_min'] * 1e3:.2f}-"
                     f"{s['rtt_max'] * 1e3:.2f} ms; "
                     f"max cwnd {s['max_cwnd']}")
    suss = s["suss"]
    if suss["decisions"]:
        lines.append(
            f"  suss: {suss['decisions']} decisions, "
            f"{suss['accelerations']} accelerations, "
            f"{suss['plans']} plans, {suss['aborts']} aborts")
    if report.findings:
        lines.append("  findings:")
        for f in report.findings:
            lines.append(f"    [{f.severity}] t={f.time:.6f} "
                         f"{f.detector}: {f.message}")
    else:
        lines.append("  findings: none")
    return "\n".join(lines)


def analyze_records(records: Iterable[TraceRecord],
                    detectors: Optional[List[AnomalyDetector]] = None
                    ) -> TraceAnalysis:
    """Run the full analysis pipeline over a record stream."""
    if detectors is None:
        detectors = default_detectors()
    records = list(records)
    timelines, unattributed = build_timelines(records)
    flows: Dict[int, FlowReport] = {}
    for flow, timeline in sorted(timelines.items()):
        findings: List[Finding] = []
        for detector in detectors:
            findings.extend(detector.detect(timeline))
        findings.sort(key=lambda f: f.time)
        flows[flow] = FlowReport(
            timeline=timeline,
            phases=segment_phases(timeline),
            retransmissions=classify_retransmissions(timeline),
            findings=findings)
    return TraceAnalysis(flows, unattributed, len(records))


def load_trace(source: Union[str, io.TextIOBase]) -> List[TraceRecord]:
    """Read records from a JSONL trace: a path (``.jsonl`` or
    ``.jsonl.gz``), ``-`` for stdin is *not* handled here (the CLI
    does), or an open text stream."""
    if isinstance(source, str):
        opener = gzip.open if source.endswith(".gz") else open
        with opener(source, "rt", encoding="utf-8") as fh:
            return [TraceRecord.from_line(line)
                    for line in fh if line.strip()]
    return [TraceRecord.from_line(line) for line in source if line.strip()]
