"""Structured findings emitted by trace anomaly detectors."""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

#: allowed severities, mildest first
SEVERITIES = ("info", "warning", "error")


class Finding:
    """One detector observation, tied to a flow, a time, and (when the
    triggering record carried provenance) an engine event id."""

    __slots__ = ("detector", "severity", "flow", "time", "eid", "message",
                 "data")

    def __init__(self, detector: str, severity: str, flow: int, time: float,
                 message: str, eid: int = 0,
                 data: Optional[Mapping[str, Any]] = None) -> None:
        if severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {severity!r}; known: {SEVERITIES}")
        self.detector = detector
        self.severity = severity
        self.flow = flow
        self.time = time
        self.eid = eid
        self.message = message
        self.data: Dict[str, Any] = dict(data) if data else {}

    def to_dict(self) -> Dict[str, Any]:
        return {"detector": self.detector, "severity": self.severity,
                "flow": self.flow, "t": self.time, "eid": self.eid,
                "message": self.message, "data": dict(self.data)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Finding [{self.severity}] {self.detector} "
                f"flow={self.flow} t={self.time:.6f} {self.message!r}>")
