"""Retransmission classification: genuine vs spurious vs RTO-driven.

For every retransmitted segment the classifier weighs the trace
evidence between the *previous* transmission of that sequence number
and the retransmission itself:

``rto``
    the resend fired inside the RTO event (same engine eid as a
    ``tcp.rto`` record) — go-back-N, not ACK-clocked;
``genuine``
    an attributed ``pkt.drop`` of that sequence number sits between the
    two transmissions: the earlier copy really was lost;
``spurious``
    the earlier copy reached the receiver — either before the resend
    (the retransmission was already unnecessary when sent) or late
    (reordering: every transmitted copy eventually arrived, nothing was
    lost);
``unconfirmed``
    no attributed drop and no proof of arrival (e.g. the copy died in
    an AQM head-drop, which the trace records only as a count).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.obs.analyze.timeline import FlowTimeline

RTO = "rto"
GENUINE = "genuine"
SPURIOUS = "spurious"
UNCONFIRMED = "unconfirmed"

#: every class the classifier can produce
ALL_CLASSES = (RTO, GENUINE, SPURIOUS, UNCONFIRMED)


class RetxClassification(NamedTuple):
    t: float
    seq: int
    eid: int
    cause: str
    #: time of the transmission this resend duplicated
    prev_t: float


def classify_retransmissions(timeline: FlowTimeline
                             ) -> List[RetxClassification]:
    """Classify every retransmitted send on ``timeline``, in send order."""
    drops_by_seq: Dict[int, List[float]] = {}
    for drop in timeline.drops:
        if drop.seq >= 0:
            drops_by_seq.setdefault(drop.seq, []).append(drop.t)
    arrivals_by_seq: Dict[int, List[float]] = {}
    for arrival in timeline.data_arrivals:
        arrivals_by_seq.setdefault(arrival.seq, []).append(arrival.t)
    rto_eids = {rto.eid for rto in timeline.rtos if rto.eid > 0}

    out: List[RetxClassification] = []
    for seq, sends in sorted(timeline.sends_of_seq().items()):
        for k, send in enumerate(sends):
            if not send.retx:
                continue
            prev_t = sends[k - 1].t if k > 0 else timeline.first_time or 0.0
            cause = _classify_one(
                send.t, prev_t, send.eid, rto_eids,
                drops_by_seq.get(seq, ()), arrivals_by_seq.get(seq, ()),
                transmissions=len(sends))
            out.append(RetxClassification(send.t, seq, send.eid, cause,
                                          prev_t))
    out.sort(key=lambda c: (c.t, c.seq))
    return out


def _classify_one(t: float, prev_t: float, eid: int, rto_eids: set,
                  drops, arrivals, transmissions: int) -> str:
    if eid > 0 and eid in rto_eids:
        # The tcp.rto record and the go-back-N resend share one engine
        # event; provenance makes the attribution exact.
        return RTO
    if any(prev_t <= td < t for td in drops):
        return GENUINE
    if any(prev_t <= ta < t for ta in arrivals):
        return SPURIOUS
    if len(arrivals) >= transmissions:
        # Every copy ever sent arrived — the earlier one was merely
        # late (reordering/jitter), so this resend was spurious.
        return SPURIOUS
    return UNCONFIRMED


def tally(classifications: List[RetxClassification]) -> Dict[str, int]:
    """Count per class, every class present (zero when unseen)."""
    counts = {cause: 0 for cause in ALL_CLASSES}
    for c in classifications:
        counts[c.cause] += 1
    return counts
