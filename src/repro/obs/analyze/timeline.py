"""Per-flow timelines reconstructed from a flat trace record stream.

A :class:`FlowTimeline` is the analyzer's working representation of one
flow: every emission site's records sorted into typed tracks (sends,
arrivals, cwnd/ssthresh progression, RTT samples, recovery episodes,
SUSS decisions, ...).  Downstream passes — phase segmentation,
retransmission classification, anomaly detectors — all consume
timelines instead of raw records.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.obs import records as obsrec
from repro.obs.records import TraceRecord


class Send(NamedTuple):
    t: float
    seq: int
    size: int
    retx: bool
    eid: int


class Arrival(NamedTuple):
    t: float
    ptype: str
    seq: int
    size: int
    eid: int


class Drop(NamedTuple):
    t: float
    reason: str
    seq: int
    site: str
    eid: int


class CwndSample(NamedTuple):
    t: float
    cwnd: int
    ssthresh: int
    flight: int
    eid: int


class RttSample(NamedTuple):
    t: float
    rtt: float


class PacingSample(NamedTuple):
    t: float
    rate: float  # 0.0 encodes "pure ACK clocking" (no pacer)


class Rto(NamedTuple):
    t: float
    backoff: float
    eid: int


class RecoveryEvent(NamedTuple):
    t: float
    enter: bool
    point: int
    eid: int


class SsExit(NamedTuple):
    t: float
    cwnd: int
    reason: str
    eid: int


class SussDecision(NamedTuple):
    t: float
    round: int
    growth: int
    verdict: str
    eid: int


class SussPlan(NamedTuple):
    t: float
    target: int
    rate: float
    guard: float
    eid: int


class SussAbort(NamedTuple):
    t: float
    cwnd: int
    target: int
    eid: int


class DeliveredSample(NamedTuple):
    t: float
    delivered: int


class FlowTimeline:
    """Typed event tracks for one flow, in trace (time) order."""

    def __init__(self, flow: int) -> None:
        self.flow = flow
        self.sends: List[Send] = []
        self.arrivals: List[Arrival] = []
        self.drops: List[Drop] = []
        self.cwnd: List[CwndSample] = []
        self.rtt: List[RttSample] = []
        self.pacing: List[PacingSample] = []
        self.rtos: List[Rto] = []
        self.recovery: List[RecoveryEvent] = []
        self.ss_exits: List[SsExit] = []
        self.suss_decisions: List[SussDecision] = []
        self.suss_plans: List[SussPlan] = []
        self.suss_aborts: List[SussAbort] = []
        self.delivered: List[DeliveredSample] = []
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None
        self.record_count = 0

    # ------------------------------------------------------------------
    def add(self, record: TraceRecord) -> None:
        """Route one record of this flow into its track."""
        self.record_count += 1
        t = record.time
        if self.first_time is None or t < self.first_time:
            self.first_time = t
        if self.last_time is None or t > self.last_time:
            self.last_time = t
        f = record.fields
        kind = record.kind
        if kind == obsrec.PKT_SEND:
            self.sends.append(Send(t, f.get("seq", -1), f.get("size", 0),
                                   bool(f.get("retx", False)), record.eid))
        elif kind == obsrec.PKT_RECV:
            self.arrivals.append(Arrival(t, f.get("ptype", "?"),
                                         f.get("seq", -1), f.get("size", 0),
                                         record.eid))
        elif kind == obsrec.PKT_DROP:
            self.drops.append(Drop(t, f.get("reason", "?"), f.get("seq", -1),
                                   f.get("link", f.get("site", "?")),
                                   record.eid))
        elif kind == obsrec.CC_CWND:
            self.cwnd.append(CwndSample(t, f.get("cwnd", 0),
                                        f.get("ssthresh", 0),
                                        f.get("flight", 0), record.eid))
        elif kind == obsrec.TCP_RTT:
            self.rtt.append(RttSample(t, f.get("rtt", 0.0)))
        elif kind == obsrec.TCP_PACING:
            self.pacing.append(PacingSample(t, f.get("rate", 0.0)))
        elif kind == obsrec.TCP_RTO:
            self.rtos.append(Rto(t, f.get("backoff", 1.0), record.eid))
        elif kind == obsrec.TCP_RECOVERY:
            self.recovery.append(RecoveryEvent(t, bool(f.get("enter")),
                                               f.get("point", -1),
                                               record.eid))
        elif kind == obsrec.CC_SS_EXIT:
            self.ss_exits.append(SsExit(t, f.get("cwnd", 0),
                                        f.get("reason", "?"), record.eid))
        elif kind == obsrec.SUSS_DECISION:
            self.suss_decisions.append(
                SussDecision(t, f.get("round", -1), f.get("growth", 0),
                             f.get("verdict", "?"), record.eid))
        elif kind == obsrec.SUSS_PLAN:
            self.suss_plans.append(SussPlan(t, f.get("target", 0),
                                            f.get("rate", 0.0),
                                            f.get("guard", 0.0), record.eid))
        elif kind == obsrec.SUSS_ABORT:
            self.suss_aborts.append(SussAbort(t, f.get("cwnd", 0),
                                              f.get("target", 0), record.eid))
        elif kind == obsrec.TCP_DELIVERED:
            self.delivered.append(DeliveredSample(t, f.get("delivered", 0)))
        # unknown kinds still count toward record_count/time bounds

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        if self.first_time is None or self.last_time is None:
            return 0.0
        return self.last_time - self.first_time

    @property
    def data_arrivals(self) -> List[Arrival]:
        """DATA packets reaching the receiving host."""
        return [a for a in self.arrivals if a.ptype == "DATA"]

    @property
    def retransmits(self) -> List[Send]:
        return [s for s in self.sends if s.retx]

    @property
    def bytes_sent(self) -> int:
        return sum(s.size for s in self.sends)

    @property
    def bytes_delivered(self) -> int:
        return self.delivered[-1].delivered if self.delivered else 0

    @property
    def max_cwnd(self) -> int:
        return max((c.cwnd for c in self.cwnd), default=0)

    @property
    def mss(self) -> int:
        """Segment size estimate: the largest data send (0 if no sends)."""
        return max((s.size for s in self.sends), default=0)

    def sends_of_seq(self) -> Dict[int, List[Send]]:
        """Transmissions grouped by sequence number, in send order."""
        out: Dict[int, List[Send]] = {}
        for send in self.sends:
            out.setdefault(send.seq, []).append(send)
        return out

    def goodput(self) -> float:
        """Delivered bytes per second over the flow's active span."""
        if self.duration <= 0:
            return 0.0
        return self.bytes_delivered / self.duration


def build_timelines(records: Iterable[TraceRecord]
                    ) -> Tuple[Dict[int, FlowTimeline], List[TraceRecord]]:
    """Split a record stream into per-flow timelines.

    Returns ``(timelines, unattributed)`` — the second element collects
    flow-less records (``flow == -1``: AQM count drops, campaign job
    lifecycle) which cannot be assigned to any timeline but still
    matter for whole-trace summaries.
    """
    timelines: Dict[int, FlowTimeline] = {}
    unattributed: List[TraceRecord] = []
    for record in records:
        if record.flow < 0:
            unattributed.append(record)
            continue
        timeline = timelines.get(record.flow)
        if timeline is None:
            timeline = timelines[record.flow] = FlowTimeline(record.flow)
        timeline.add(record)
    return timelines, unattributed
