"""Congestion-control phase segmentation of a flow timeline.

Maps the explicit CC transition records — SUSS plan installs and
aborts, HyStart slow-start exit, fast-recovery enter/exit, RTO — onto
contiguous phase segments:

``slow_start``
    exponential growth (including post-RTO go-back-N slow start:
    ``on_rto`` resets cwnd below ssthresh, re-entering slow start);
``suss_accelerated``
    a SUSS pacing plan is driving cwnd toward its target;
``congestion_avoidance``
    after slow-start exit (HyStart or loss);
``recovery``
    inside a fast-recovery episode.
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.obs.analyze.timeline import FlowTimeline

SLOW_START = "slow_start"
SUSS_ACCELERATED = "suss_accelerated"
CONGESTION_AVOIDANCE = "congestion_avoidance"
RECOVERY = "recovery"

#: every phase name the segmenter can produce
ALL_PHASES = (SLOW_START, SUSS_ACCELERATED, CONGESTION_AVOIDANCE, RECOVERY)


class PhaseSegment(NamedTuple):
    start: float
    end: float
    phase: str


def segment_phases(timeline: FlowTimeline) -> List[PhaseSegment]:
    """Contiguous CC phase segments covering the flow's active span."""
    if timeline.first_time is None:
        return []
    # (time, tiebreak, tag): tiebreak orders same-instant transitions the
    # way the stack applies them (abort/exit before a new plan).
    events = []
    for plan in timeline.suss_plans:
        events.append((plan.t, 2, "plan"))
    for abort in timeline.suss_aborts:
        events.append((abort.t, 1, "abort"))
    for ss_exit in timeline.ss_exits:
        events.append((ss_exit.t, 0, "ss_exit"))
    for rec in timeline.recovery:
        events.append((rec.t, 0, "rec_enter" if rec.enter else "rec_exit"))
    for rto in timeline.rtos:
        events.append((rto.t, 3, "rto"))
    events.sort()

    segments: List[PhaseSegment] = []
    state = SLOW_START
    start = timeline.first_time

    def close(until: float, next_state: str) -> None:
        nonlocal state, start
        if until > start:
            segments.append(PhaseSegment(start, until, state))
        start = until
        state = next_state

    for t, _, tag in events:
        if tag == "plan" and state == SLOW_START:
            close(t, SUSS_ACCELERATED)
        elif tag == "abort" and state == SUSS_ACCELERATED:
            close(t, SLOW_START)
        elif tag == "ss_exit" and state in (SLOW_START, SUSS_ACCELERATED):
            close(t, CONGESTION_AVOIDANCE)
        elif tag == "rec_enter" and state != RECOVERY:
            close(t, RECOVERY)
        elif tag == "rec_exit" and state == RECOVERY:
            # Loss already forced slow-start exit: recovery resumes in CA.
            close(t, CONGESTION_AVOIDANCE)
        elif tag == "rto":
            # RTO collapses cwnd below ssthresh: back to slow start.
            close(t, SLOW_START)
    end = timeline.last_time if timeline.last_time is not None else start
    if end > start or not segments:
        segments.append(PhaseSegment(start, end, state))
    return segments


def phase_at(segments: List[PhaseSegment], t: float) -> str:
    """The phase active at time ``t`` (clamped to the covered span)."""
    if not segments:
        return SLOW_START
    for segment in segments:
        if segment.start <= t < segment.end:
            return segment.phase
    return segments[-1].phase if t >= segments[-1].end else segments[0].phase
