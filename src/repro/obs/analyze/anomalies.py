"""Pluggable anomaly detectors over flow timelines.

A detector is any object with a ``name`` string and a
``detect(timeline) -> List[Finding]`` method; :func:`default_detectors`
returns the built-in set.  Detectors see one flow at a time and emit
structured :class:`~repro.obs.analyze.findings.Finding` objects — the
CLI and campaign integration render or attach them, never interpret
them.
"""

from __future__ import annotations

from typing import List, Protocol, runtime_checkable

from repro.obs.analyze.findings import Finding
from repro.obs.analyze.timeline import FlowTimeline


@runtime_checkable
class AnomalyDetector(Protocol):
    name: str

    def detect(self, timeline: FlowTimeline) -> List[Finding]: ...


# ----------------------------------------------------------------------
class PacingStallDetector:
    """A SUSS pacing plan is active but sends stop flowing.

    While a plan paces at ``rate``, consecutive data sends should be
    roughly ``mss / rtt`` apart; a gap of ``stall_factor`` times that
    (default 8) with the plan still active means the pacer stalled
    (app-limited source, lost wakeup, rwnd clamp).  Gaps where the
    sender was window-limited (latest cwnd sample shows
    ``flight + mss > cwnd``) are expected — SUSS paces cwnd *growth*,
    actual sends still wait for window — and are not flagged.
    """

    name = "pacing_stall"

    def __init__(self, stall_factor: float = 8.0) -> None:
        self.stall_factor = stall_factor

    def detect(self, timeline: FlowTimeline) -> List[Finding]:
        findings: List[Finding] = []
        mss = timeline.mss
        if not mss:
            return findings
        for plan in timeline.suss_plans:
            if plan.rate <= 0:
                continue
            window_end = self._plan_end(timeline, plan.t)
            step = mss / plan.rate
            threshold = self.stall_factor * step
            sends = [s for s in timeline.sends
                     if plan.t <= s.t <= window_end]
            for prev, cur in zip(sends, sends[1:]):
                gap = cur.t - prev.t
                if gap > threshold and not self._window_limited(
                        timeline, prev.t, mss):
                    findings.append(Finding(
                        self.name, "warning", timeline.flow, prev.t,
                        f"pacing stalled for {gap * 1e3:.2f} ms "
                        f"(expected ~{step * 1e3:.3f} ms between sends)",
                        eid=cur.eid,
                        data={"gap": gap, "expected_step": step,
                              "plan_rate": plan.rate,
                              "plan_target": plan.target}))
        return findings

    @staticmethod
    def _window_limited(timeline: FlowTimeline, t: float, mss: int) -> bool:
        """True when the last cwnd sample at or before ``t`` shows no
        room for another segment.

        The sample's ``flight`` predates sends emitted later in the
        same event (and after it), so sends in ``[sample.t, t]`` are
        added back before comparing against cwnd."""
        latest = None
        for sample in timeline.cwnd:
            if sample.t > t:
                break
            latest = sample
        if latest is None:
            return False
        sent_since = sum(s.size for s in timeline.sends
                         if latest.t <= s.t <= t)
        return latest.flight + sent_since + mss > latest.cwnd

    @staticmethod
    def _plan_end(timeline: FlowTimeline, plan_t: float) -> float:
        """The plan runs until the next abort/ss-exit/RTO/recovery-enter
        boundary (or the end of the flow)."""
        boundaries = ([a.t for a in timeline.suss_aborts]
                      + [x.t for x in timeline.ss_exits]
                      + [r.t for r in timeline.rtos]
                      + [r.t for r in timeline.recovery if r.enter]
                      + [p.t for p in timeline.suss_plans if p.t > plan_t])
        later = [b for b in boundaries if b > plan_t]
        end = timeline.last_time if timeline.last_time is not None else plan_t
        return min(later) if later else end


class CwndCollapseDetector:
    """cwnd halves (or worse) with no loss signal in between.

    A cwnd reduction is *expected* next to a recovery entry, an RTO, a
    slow-start exit, an attributed drop, or a SUSS abort; a collapse
    with none of those nearby points at a congestion-control bug (or an
    unrecorded signal such as ECN).  Samples with an effectively
    infinite ssthresh are exempt: a model-based controller (BBR) sizes
    cwnd from its bandwidth/RTT model and legitimately shrinks it with
    no loss signal (drain, ProbeRTT)."""

    name = "cwnd_collapse"

    #: ssthresh at or above this is "never reduced by loss" — the
    #: controller is not loss-window based at that point
    INFINITE_SSTHRESH = 2 ** 60

    def __init__(self, collapse_ratio: float = 0.5) -> None:
        self.collapse_ratio = collapse_ratio

    def detect(self, timeline: FlowTimeline) -> List[Finding]:
        findings: List[Finding] = []
        justification = sorted(
            [r.t for r in timeline.recovery if r.enter]
            + [r.t for r in timeline.rtos]
            + [x.t for x in timeline.ss_exits]
            + [d.t for d in timeline.drops]
            + [a.t for a in timeline.suss_aborts])
        for prev, cur in zip(timeline.cwnd, timeline.cwnd[1:]):
            if prev.cwnd <= 0:
                continue
            if prev.ssthresh >= self.INFINITE_SSTHRESH \
                    and cur.ssthresh >= self.INFINITE_SSTHRESH:
                continue
            if cur.cwnd <= prev.cwnd * self.collapse_ratio:
                if any(prev.t <= tj <= cur.t for tj in justification):
                    continue
                findings.append(Finding(
                    self.name, "error", timeline.flow, cur.t,
                    f"cwnd collapsed {prev.cwnd} -> {cur.cwnd} with no "
                    f"loss/RTO/recovery signal in "
                    f"[{prev.t:.6f}, {cur.t:.6f}]",
                    eid=cur.eid,
                    data={"cwnd_before": prev.cwnd, "cwnd_after": cur.cwnd}))
        return findings


class RtoSpikeDetector:
    """Retransmission-timeout pathology: exponential backoff spikes
    (backoff ≥ 4 means at least two consecutive unanswered RTOs) or a
    pile-up of RTO events on one flow."""

    name = "rto_spike"

    def __init__(self, backoff_threshold: float = 4.0,
                 count_threshold: int = 3) -> None:
        self.backoff_threshold = backoff_threshold
        self.count_threshold = count_threshold

    def detect(self, timeline: FlowTimeline) -> List[Finding]:
        findings: List[Finding] = []
        for rto in timeline.rtos:
            if rto.backoff >= self.backoff_threshold:
                findings.append(Finding(
                    self.name, "warning", timeline.flow, rto.t,
                    f"RTO backoff reached x{rto.backoff:g} "
                    f"(consecutive timeouts)",
                    eid=rto.eid, data={"backoff": rto.backoff}))
        if len(timeline.rtos) >= self.count_threshold:
            last = timeline.rtos[-1]
            findings.append(Finding(
                self.name, "warning", timeline.flow, last.t,
                f"{len(timeline.rtos)} RTOs on one flow",
                eid=last.eid, data={"count": len(timeline.rtos)}))
        return findings


class SussAbortDetector:
    """SUSS pacing plans that died before reaching their cwnd target.

    Aborts are part of SUSS's safety design (recovery or slow-start
    exit cancels the plan), so a small shortfall is informational; an
    abort that left more than half the planned growth on the table is
    worth a warning — the accelerate decision badly overestimated."""

    name = "suss_abort"

    def detect(self, timeline: FlowTimeline) -> List[Finding]:
        findings: List[Finding] = []
        for abort in timeline.suss_aborts:
            shortfall = abort.target - abort.cwnd
            frac = shortfall / abort.target if abort.target > 0 else 0.0
            severity = "warning" if frac > 0.5 else "info"
            findings.append(Finding(
                self.name, severity, timeline.flow, abort.t,
                f"SUSS plan aborted at cwnd={abort.cwnd} of "
                f"target {abort.target} ({frac:.0%} short)",
                eid=abort.eid,
                data={"cwnd": abort.cwnd, "target": abort.target,
                      "shortfall": shortfall}))
        return findings


def default_detectors() -> List[AnomalyDetector]:
    """The built-in detector set, in reporting order."""
    return [CwndCollapseDetector(), RtoSpikeDetector(),
            PacingStallDetector(), SussAbortDetector()]
