"""Telemetry exports: OpenMetrics text exposition and the `top` view.

Two consumers need the same live aggregates in different shapes:

* monitoring systems scrape **OpenMetrics** text — rendered straight
  from a :class:`~repro.obs.metrics.MetricRegistry`
  (:func:`render_openmetrics`) or from a ``status.json`` snapshot
  (:func:`status_registry` + render), served by the stdlib-only
  :class:`MetricsServer` when a port is requested;
* humans watch ``repro top`` — a single-screen ANSI dashboard rendered
  by :func:`render_top` from the same snapshot (``--once`` prints one
  frame for CI logs).

The exposition follows the OpenMetrics text format: one ``# TYPE`` line
per metric family, counters suffixed ``_total``, histograms exploded
into cumulative ``_bucket{le=...}`` samples plus ``_sum``/``_count``,
and a terminating ``# EOF`` line.  Metric names are sanitised
(``run.queue_wait`` → ``repro_run_queue_wait``) and label values
escaped per the spec.
"""

from __future__ import annotations

import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from threading import Thread
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry

#: content type monitoring scrapers expect for OpenMetrics payloads.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8")

_NAME_SANITISE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def metric_name(name: str) -> str:
    """``run.queue_wait`` → ``repro_run_queue_wait``."""
    return "repro_" + _NAME_SANITISE.sub("_", name)


def _escape_label(value: Any) -> str:
    text = str(value)
    for raw, escaped in _LABEL_ESCAPES.items():
        text = text.replace(raw, escaped)
    return text


def _label_str(labels: Mapping[str, Any],
               extra: Optional[Mapping[str, Any]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"'
                     for key, value in sorted(merged.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value or value in (float("inf"), float("-inf")):
        raise ValueError(f"non-finite metric value {value!r}")
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_openmetrics(registry: MetricRegistry) -> str:
    """Render every instrument in ``registry`` as OpenMetrics text."""
    lines: List[str] = []
    for name in registry.names():
        family = metric_name(name)
        kind = registry.type_of(name)
        lines.append(f"# TYPE {family} {kind}")
        for labels in registry.labels_of(name):
            instrument = registry.get(name, **labels)
            if isinstance(instrument, Counter):
                lines.append(f"{family}_total{_label_str(labels)} "
                             f"{_format_value(instrument.value)}")
            elif isinstance(instrument, Gauge):
                value = instrument.value
                if value is None:
                    continue
                lines.append(f"{family}{_label_str(labels)} "
                             f"{_format_value(value)}")
            elif isinstance(instrument, Histogram):
                cumulative = 0
                for bound, count in zip(instrument.bounds,
                                        instrument.bucket_counts):
                    cumulative += count
                    lines.append(
                        f"{family}_bucket"
                        f"{_label_str(labels, {'le': _format_value(bound)})}"
                        f" {cumulative}")
                lines.append(
                    f"{family}_bucket{_label_str(labels, {'le': '+Inf'})}"
                    f" {instrument.count}")
                lines.append(f"{family}_sum{_label_str(labels)} "
                             f"{_format_value(instrument.total)}")
                lines.append(f"{family}_count{_label_str(labels)} "
                             f"{instrument.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def status_registry(status: Mapping[str, Any]) -> MetricRegistry:
    """Rebuild a registry from a ``status.json`` snapshot.

    ``repro top --metrics-out`` runs in a different process from the
    scheduler, so it reconstructs the scrapeable aggregates from the
    snapshot rather than the live registry.
    """
    registry = MetricRegistry()
    registry.gauge("run.total").set(status.get("total", 0))
    registry.gauge("run.done").set(status.get("done", 0))
    registry.gauge("run.workers").set(status.get("workers", 1))
    registry.gauge("run.finished").set(1 if status.get("finished") else 0)
    registry.gauge("run.elapsed_seconds").set(status.get("elapsed", 0.0))
    for outcome in ("executed", "cached", "failed"):
        registry.counter("run.jobs",
                         status=outcome).add(status.get(outcome, 0))
    registry.counter("run.retries").add(status.get("retries", 0))
    for kind, count in (status.get("by_kind") or {}).items():
        registry.counter("run.jobs_by_kind", kind=kind).add(count)
    for gauge_key in ("eta", "cache_ratio", "throughput"):
        value = status.get(gauge_key)
        if value is not None:
            name = {"eta": "run.eta_seconds"}.get(gauge_key,
                                                  f"run.{gauge_key}")
            registry.gauge(name).set(value)
    resources = status.get("resources") or {}
    for mode in ("user", "system"):
        registry.counter("run.cpu_seconds",
                         mode=mode).add(resources.get(f"cpu_{mode}", 0.0))
    registry.gauge("run.max_rss_kb").set(resources.get("max_rss_kb", 0))
    for key in ("engine_events", "flows_modelled"):
        registry.counter(f"run.{key}").add(resources.get(key, 0))
    for lane, stats in (status.get("lanes") or {}).items():
        registry.gauge("run.lane_jobs",
                       worker=lane).set(stats.get("jobs", 0))
        registry.gauge("run.lane_busy_seconds",
                       worker=lane).set(stats.get("busy", 0.0))
    return registry


# ----------------------------------------------------------------------
# human view: repro top
# ----------------------------------------------------------------------
def _human_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    return f"{minutes}m{secs:02d}s"


def _human_count(n: float) -> str:
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(n) >= threshold:
            return f"{n / threshold:.1f}{suffix}"
    return str(int(n))


def _bar(fraction: float, width: int) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_top(status: Mapping[str, Any], width: int = 78) -> str:
    """One dashboard frame from a status snapshot (plain text)."""
    total = status.get("total", 0)
    done = status.get("done", 0)
    fraction = done / total if total else 0.0
    state = "complete" if status.get("finished") else "running"
    title = f"repro top — {status.get('tool', 'run')} [{state}]"
    elapsed = f"elapsed {_human_duration(status.get('elapsed'))}"
    lines = [f"{title}{' ' * max(width - len(title) - len(elapsed), 1)}"
             f"{elapsed}"]
    lines.append(
        f"jobs [{_bar(fraction, 20)}] {done}/{total} ({fraction:.0%})"
        f"  exec {status.get('executed', 0)}"
        f"  cache {status.get('cached', 0)}"
        f"  fail {status.get('failed', 0)}"
        f"  retry {status.get('retries', 0)}")
    throughput = status.get("throughput")
    cache_ratio = status.get("cache_ratio")
    lines.append(
        f"rate {throughput:.2f} jobs/s" if throughput is not None
        else "rate --")
    lines[-1] += (f"   cache {cache_ratio:.1%}" if cache_ratio is not None
                  else "   cache --")
    lines[-1] += f"   eta {_human_duration(status.get('eta'))}"
    res = status.get("resources") or {}
    engine_events = res.get("engine_events", 0)
    exec_total = status.get("exec_total") or 0.0
    event_rate = (f" ({_human_count(engine_events / exec_total)}/s cpu)"
                  if engine_events and exec_total else "")
    lines.append(
        f"res  cpu {res.get('cpu_user', 0.0):.1f}s u"
        f"/{res.get('cpu_system', 0.0):.1f}s s"
        f"  rss {res.get('max_rss_kb', 0) / 1024:.0f}MB"
        f"  engine {_human_count(engine_events)}ev{event_rate}"
        f"  flowsim {_human_count(res.get('flows_modelled', 0))}")
    by_kind = status.get("by_kind") or {}
    if by_kind:
        parts = "  ".join(f"{kind}:{count}"
                          for kind, count in sorted(by_kind.items()))
        lines.append(f"kind {parts}")
    lanes = status.get("lanes") or {}
    if lanes:
        lines.append("workers")
        for lane, stats in sorted(lanes.items()):
            label = "inline" if lane == "inline" else f"pid {lane}"
            last = stats.get("last", "")
            if len(last) > 40:
                last = last[:37] + "..."
            lines.append(
                f"  {label:<10} {stats.get('jobs', 0):>4} jobs"
                f"  busy {_human_duration(stats.get('busy', 0.0)):>7}"
                f"  {stats.get('last_status', ''):<7} {last}")
    return "\n".join(line[:width] for line in lines)


# ----------------------------------------------------------------------
# scrape endpoint
# ----------------------------------------------------------------------
class MetricsServer:
    """Minimal stdlib ``/metrics`` endpoint for live scraping.

    Serves whatever the ``render`` callable returns at scrape time on a
    daemon thread; ``port=0`` binds an ephemeral port (reported by
    :attr:`port` after :meth:`start`).
    """

    def __init__(self, render: Callable[[], str],
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self._render = render
        self._host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[Thread] = None

    def start(self) -> int:
        render = self._render

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404)
                    return
                payload = render().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", OPENMETRICS_CONTENT_TYPE)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes shouldn't spam the campaign's stderr

        self._server = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler)
        self._server.daemon_threads = True
        self._thread = Thread(target=self._server.serve_forever,
                              name="repro-metrics", daemon=True)
        self._thread.start()
        return self.port

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("MetricsServer not started")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}/metrics"

    def close(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
