"""Causal index over provenance-stamped traces.

Since record-schema v2 every :class:`~repro.obs.records.TraceRecord`
carries ``(eid, parent_eid)``: the engine event in whose execution it
was emitted and that event's nearest record-emitting causal ancestor
(see ``repro.sim.engine`` — origin threading bridges silent plumbing
events such as link serialisation).  :class:`CausalIndex` turns a flat
record stream back into that DAG so questions like *"what chain of
events led to this SUSS accelerate decision?"* are answerable from the
trace alone, with no live simulator.

The index is pure data-plumbing over records — it lives in ``obs`` (a
leaf layer) and imports nothing above it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.obs.records import TraceRecord

#: safety bound on chain walks; real chains are far shorter, a longer
#: one means a corrupted trace (the walk reports it as truncated).
MAX_CHAIN_HOPS = 1000


class CausalIndex:
    """Maps event ids to their records and causal parents.

    ``eid`` 0 is the root context (emitted outside any engine event) and
    is never indexed as an event: ``records_of(0)`` returns the root
    records but chains terminate there.
    """

    def __init__(self, records: Iterable[TraceRecord]) -> None:
        self.records: List[TraceRecord] = list(records)
        self._by_eid: Dict[int, List[TraceRecord]] = {}
        for record in self.records:
            self._by_eid.setdefault(record.eid, []).append(record)
        self._children: Optional[Dict[int, List[int]]] = None

    def __len__(self) -> int:
        return len(self.records)

    def __contains__(self, eid: int) -> bool:
        return eid in self._by_eid

    def eids(self) -> List[int]:
        """All event ids with records, ascending (0 excluded)."""
        return sorted(eid for eid in self._by_eid if eid > 0)

    def records_of(self, eid: int) -> List[TraceRecord]:
        """Records emitted during event ``eid`` (empty when unknown)."""
        return list(self._by_eid.get(eid, ()))

    def parent_of(self, eid: int) -> Optional[int]:
        """Causal parent eid of ``eid``, or None when ``eid`` is unknown.

        All records of one event agree on their parent (they share the
        execution context), so the first record is authoritative.
        """
        group = self._by_eid.get(eid)
        if not group:
            return None
        return group[0].parent_eid

    def children_of(self, eid: int) -> List[int]:
        """Eids whose records name ``eid`` as causal parent (ascending)."""
        if self._children is None:
            children: Dict[int, List[int]] = {}
            for child in sorted(e for e in self._by_eid if e > 0):
                parent = self._by_eid[child][0].parent_eid
                children.setdefault(parent, []).append(child)
            self._children = children
        return list(self._children.get(eid, ()))

    def chain(self, eid: int, max_hops: int = MAX_CHAIN_HOPS) -> List[int]:
        """The causal chain ``[eid, parent, grandparent, ...]``.

        Stops at the root context (parent 0), at an eid absent from this
        trace (filtered out or corrupt), on a cycle, or after
        ``max_hops`` entries.  The starting ``eid`` itself must exist.
        """
        if eid not in self._by_eid:
            return []
        out: List[int] = []
        seen = set()
        cur: Optional[int] = eid
        while (cur is not None and cur != 0 and cur not in seen
               and len(out) < max_hops):
            if cur not in self._by_eid:
                break  # parent known by id only; records were filtered
            seen.add(cur)
            out.append(cur)
            cur = self.parent_of(cur)
        return out


# ----------------------------------------------------------------------
# explanation rendering
# ----------------------------------------------------------------------
def record_summary(record: TraceRecord) -> str:
    """One-line human summary: kind plus compact sorted fields."""
    parts = "".join(f" {k}={_fmt(v)}"
                    for k, v in sorted(record.fields.items()))
    flow = f" flow={record.flow}" if record.flow >= 0 else ""
    return f"{record.kind}{flow}{parts}"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def explain_event(index: CausalIndex, eid: int) -> Dict[str, Any]:
    """Structured causal explanation of event ``eid``.

    Returns ``{"target", "found", "chain", "complete"}`` where ``chain``
    lists hops from the event back toward the root, each hop carrying
    ``{"eid", "peid", "t", "records"}`` (records as flat dicts).
    ``complete`` is True when the walk ended at the root context rather
    than at a missing parent or the hop bound.
    """
    hops = index.chain(eid)
    chain = []
    for hop in hops:
        group = index.records_of(hop)
        chain.append({
            "eid": hop,
            "peid": group[0].parent_eid,
            "t": group[0].time,
            "records": [r.to_dict() for r in group],
        })
    complete = bool(hops) and index.parent_of(hops[-1]) == 0
    return {"target": eid, "found": eid in index, "chain": chain,
            "complete": complete}


def render_explanation(explanation: Dict[str, Any]) -> str:
    """Human-readable causal chain, newest event first."""
    target = explanation["target"]
    if not explanation["found"]:
        return f"event {target}: no records in this trace"
    lines = [f"causal chain for event {target} "
             f"({len(explanation['chain'])} hops, newest first):"]
    for depth, hop in enumerate(explanation["chain"]):
        arrow = "└─ caused by " if depth else ""
        indent = "  " * depth
        head = f"{indent}{arrow}event {hop['eid']} @ t={hop['t']:.6f}"
        lines.append(head)
        for rec in hop["records"]:
            fields = {k: v for k, v in rec.items()
                      if k not in ("t", "kind", "flow", "eid", "peid")}
            record = TraceRecord(rec["t"], rec["kind"], rec["flow"], fields)
            lines.append(f"{indent}     {record_summary(record)}")
    if not explanation["complete"]:
        lines.append("  (chain truncated: parent records not in trace)")
    return "\n".join(lines)


def find_record(records: Iterable[TraceRecord], *, at: Optional[float] = None,
                flow: Optional[int] = None,
                kinds: Optional[Iterable[str]] = None
                ) -> Optional[TraceRecord]:
    """Locate the most recent record at or before ``at`` (or the last
    overall), optionally restricted to a flow and/or kind set."""
    kindset = frozenset(kinds) if kinds is not None else None
    best: Optional[TraceRecord] = None
    for record in records:
        if flow is not None and record.flow != flow:
            continue
        if kindset is not None and record.kind not in kindset:
            continue
        if at is not None and record.time > at:
            continue
        if best is None or record.time >= best.time:
            best = record
    return best
