"""Run-level telemetry: campaign spans, resource accounting, live status.

The per-packet observability stack (records/sinks/metrics, DESIGN.md §7)
answers "what did the simulation do?".  This module answers the same
question one layer up, about the harness that *runs* simulations: which
worker executed which JobSpec, how long each attempt queued vs executed,
what was a cache hit, why a retry fired, and where CPU and memory went.
It is the substrate the distributed-campaign arc (ROADMAP items 4-5)
reports through.

Three pieces, all stdlib-only so any layer may depend on them:

* **process counters** (:func:`add_engine_events`,
  :func:`add_flows_modelled`) — cumulative per-process work counters.
  The engines add one delta per ``run()`` call and the flowsim driver
  one per sweep, so the hot loops stay untouched and the disabled-cost
  budget (≤2% on bench_core_speed) holds.
* **resource sampling** (:func:`sample_resources`,
  :func:`resource_delta`) — CPU via :func:`os.times`, peak RSS via
  :mod:`resource` (guarded import; absent on some platforms), plus the
  process counters, so a worker can report exactly the work a job did.
* :class:`RunTelemetry` — the per-run collector: typed
  :class:`JobSpan` records with retry lineage (emitted through the
  existing :class:`~repro.obs.tracer.Observability` machinery as
  ``campaign.span`` trace records), live aggregates in a
  :class:`~repro.obs.metrics.MetricRegistry` (for OpenMetrics
  exposition), and a throttled atomic ``status.json`` snapshot that
  ``repro top`` renders.

Wall-clock use is deliberate and legal here: ``repro/obs/`` is exempt
from DET001, and nothing this module produces participates in golden
digests or the deterministic run-ledger body (:mod:`repro.obs.ledger`
keeps wall-clock strictly in the ``.run.json`` sidecar).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.metrics import MetricRegistry
from repro.obs.records import CAMPAIGN_SPAN

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None  # type: ignore[assignment]

#: schema version of the status snapshot and span dict encodings.
STATUS_SCHEMA_VERSION = 1

#: histogram buckets for queue-wait / exec-time spans (seconds).
SPAN_BUCKETS = (0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0,
                30.0, 100.0, 300.0, 1000.0)


# ----------------------------------------------------------------------
# process-wide work counters
# ----------------------------------------------------------------------
class ProcessCounters:
    """Cumulative work counters for this process.

    Producers (engine backends, flowsim driver) add one delta per run,
    not per event, so reading them is always cheap and enabling
    telemetry costs the hot paths nothing.
    """

    __slots__ = ("engine_events", "flows_modelled")

    def __init__(self) -> None:
        self.engine_events = 0
        self.flows_modelled = 0

    def snapshot(self) -> Dict[str, int]:
        return {"engine_events": self.engine_events,
                "flows_modelled": self.flows_modelled}


#: the process-global counter instance all producers feed.
counters = ProcessCounters()


def add_engine_events(n: int) -> None:
    """Record ``n`` engine events processed (one call per ``run()``)."""
    counters.engine_events += n


def add_flows_modelled(n: int) -> None:
    """Record ``n`` analytically modelled flows (one call per sweep)."""
    counters.flows_modelled += n


# ----------------------------------------------------------------------
# resource sampling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResourceSample:
    """Point-in-time resource reading for this process."""

    cpu_user: float
    cpu_system: float
    max_rss_kb: int
    engine_events: int
    flows_modelled: int


def sample_resources() -> ResourceSample:
    """Sample this process's CPU time, peak RSS, and work counters."""
    times = os.times()
    rss = 0
    if _resource is not None:
        rss = int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)
    return ResourceSample(cpu_user=times.user, cpu_system=times.system,
                          max_rss_kb=rss,
                          engine_events=counters.engine_events,
                          flows_modelled=counters.flows_modelled)


def resource_delta(before: ResourceSample,
                   after: ResourceSample) -> Dict[str, Any]:
    """JSON envelope of the work done between two samples.

    CPU and the work counters are true deltas; ``max_rss_kb`` is the
    process peak at the *after* sample (ru_maxrss is a high-water mark
    and cannot be differenced meaningfully).
    """
    return {
        "cpu_user": max(after.cpu_user - before.cpu_user, 0.0),
        "cpu_system": max(after.cpu_system - before.cpu_system, 0.0),
        "max_rss_kb": after.max_rss_kb,
        "engine_events": after.engine_events - before.engine_events,
        "flows_modelled": after.flows_modelled - before.flows_modelled,
    }


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
@dataclass
class JobSpan:
    """One scheduler-level execution span: a single attempt of a job.

    ``span_id`` is ``<job_hash[:12]>#<attempt>``; ``retry_of`` names the
    span of the previous attempt of the same job, giving each failure a
    causal chain the same way trace records carry (eid, peid).
    """

    span_id: str
    job_hash: str
    kind: str
    label: str
    status: str                      # "ok" | "failed" | "retry"
    cached: bool = False
    attempt: int = 0
    worker: Optional[int] = None
    queue_wait: float = 0.0
    exec_time: float = 0.0
    retry_of: Optional[str] = None
    error: Optional[str] = None
    resources: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON form; optional fields are dropped when unset."""
        out: Dict[str, Any] = {
            "span": self.span_id, "hash": self.job_hash,
            "kind": self.kind, "label": self.label,
            "status": self.status, "cached": self.cached,
            "attempt": self.attempt,
            "queue_wait": round(self.queue_wait, 6),
            "exec": round(self.exec_time, 6),
        }
        if self.worker is not None:
            out["worker"] = self.worker
        if self.retry_of is not None:
            out["retry_of"] = self.retry_of
        if self.error is not None:
            out["error"] = self.error
        if self.resources is not None:
            out["resources"] = self.resources
        return out


class RunTelemetry:
    """Span collector + live aggregates for one campaign-shaped run.

    The scheduler calls :meth:`start`, then :meth:`record_span` once per
    attempt outcome (cache hit, success, retryable failure, terminal
    failure), and :meth:`complete` with the spec-ordered results.  Along
    the way this object

    * appends every span to :attr:`spans` and emits it as a
      ``campaign.span`` trace record when an
      :class:`~repro.obs.tracer.Observability` hub is attached,
    * keeps ``run.*`` instruments in :attr:`metrics` current for
      OpenMetrics exposition, and
    * rewrites ``status_path`` atomically (throttled to
      ``status_interval``) so ``repro top`` can watch the run live.

    Everything here is wall-clock and explicitly *not* deterministic;
    the deterministic view of the same run is the ledger body built by
    :mod:`repro.obs.ledger` from :attr:`jobs` / :attr:`values`.
    """

    def __init__(self, tool: str = "campaign", obs: Optional[Any] = None,
                 status_path: Optional[str] = None,
                 status_interval: float = 0.5) -> None:
        self.tool = tool
        self.obs = obs
        self.status_path = status_path
        self.status_interval = status_interval
        self.metrics = MetricRegistry()
        self.spans: List[JobSpan] = []
        self.total = 0
        self.workers = 1
        self.executed = 0
        self.cached = 0
        self.failed = 0
        self.retries = 0
        self.by_kind: Dict[str, int] = {}
        self.queue_wait_total: float = 0.0
        self.exec_total: float = 0.0
        self.retry_seconds: float = 0.0
        self.lanes: Dict[str, Dict[str, Any]] = {}
        self.resources: Dict[str, Any] = {
            "cpu_user": 0.0, "cpu_system": 0.0, "max_rss_kb": 0,
            "engine_events": 0, "flows_modelled": 0,
        }
        self.finished = False
        self.jobs: List[Dict[str, str]] = []
        self.values: List[Any] = []
        self._last_span: Dict[str, str] = {}
        self._start: Optional[float] = None
        self._last_status_write = 0.0

    # ------------------------------------------------------------------
    def start(self, total: int, workers: int = 1) -> None:
        self.total = total
        self.workers = max(workers, 1)
        self._start = time.monotonic()
        self.metrics.gauge("run.total").set(total)
        self.metrics.gauge("run.workers").set(self.workers)
        self.write_status(force=True)

    @property
    def elapsed(self) -> float:
        if self._start is None:
            return 0.0
        return time.monotonic() - self._start

    @property
    def done(self) -> int:
        return self.executed + self.cached + self.failed

    @property
    def cache_ratio(self) -> Optional[float]:
        return self.cached / self.done if self.done else None

    @property
    def throughput(self) -> Optional[float]:
        """Finished jobs per wall-clock second so far."""
        elapsed = self.elapsed
        return self.done / elapsed if elapsed > 0 and self.done else None

    @property
    def eta(self) -> Optional[float]:
        """Remaining wall-clock estimate, charging retry time to jobs."""
        if self.executed == 0 or self.total <= 0:
            return None
        mean_cost = (self.exec_total + self.retry_seconds) / self.executed
        remaining = max(self.total - self.done, 0)
        return mean_cost * remaining / self.workers

    # ------------------------------------------------------------------
    def record_span(self, job_hash: str, kind: str, label: str, *,
                    status: str, cached: bool = False, attempt: int = 0,
                    worker: Optional[int] = None,
                    queue_wait: float = 0.0, exec_time: float = 0.0,
                    error: Optional[str] = None,
                    resources: Optional[Mapping[str, Any]] = None,
                    ) -> JobSpan:
        """Record one attempt outcome and update every live view."""
        span = JobSpan(
            span_id=f"{job_hash[:12]}#{attempt}", job_hash=job_hash,
            kind=kind, label=label, status=status, cached=cached,
            attempt=attempt, worker=worker,
            queue_wait=max(queue_wait, 0.0), exec_time=max(exec_time, 0.0),
            retry_of=self._last_span.get(job_hash), error=error,
            resources=dict(resources) if resources else None)
        self._last_span[job_hash] = span.span_id
        self.spans.append(span)
        self._aggregate(span)
        if self.obs is not None:
            fields = span.to_dict()
            # "kind" is the record kind in emit(); the job kind travels
            # as job_kind in the trace-record fields.
            fields["job_kind"] = fields.pop("kind")
            self.obs.emit(self.elapsed, CAMPAIGN_SPAN, -1, **fields)
        self.write_status()
        return span

    def _aggregate(self, span: JobSpan) -> None:
        metrics = self.metrics
        if span.status == "retry":
            self.retries += 1
            self.retry_seconds += span.exec_time
            metrics.counter("run.retries").add()
        else:
            if span.cached:
                self.cached += 1
            elif span.status == "ok":
                self.executed += 1
            else:
                self.failed += 1
            self.by_kind[span.kind] = self.by_kind.get(span.kind, 0) + 1
            outcome = "cached" if span.cached else span.status
            metrics.counter("run.jobs", status=outcome).add()
            metrics.counter("run.jobs_by_kind", kind=span.kind).add()
        if not span.cached:
            self.queue_wait_total += span.queue_wait
            if span.status != "retry":
                # Retry attempts' time is already in retry_seconds;
                # adding it here too would double-charge the ETA mean.
                self.exec_total += span.exec_time
            metrics.histogram("run.queue_wait",
                              buckets=SPAN_BUCKETS).observe(span.queue_wait)
            metrics.histogram("run.exec_seconds",
                              buckets=SPAN_BUCKETS).observe(span.exec_time)
        if span.resources:
            self._absorb_resources(span.resources)
        lane_key = str(span.worker) if span.worker is not None else "inline"
        lane = self.lanes.setdefault(
            lane_key, {"attempts": 0, "jobs": 0, "busy": 0.0,
                       "last": "", "last_status": ""})
        lane["attempts"] += 1
        if span.status != "retry":
            lane["jobs"] += 1
        lane["busy"] += span.exec_time
        lane["last"] = span.label
        lane["last_status"] = "cached" if span.cached else span.status
        self._refresh_gauges()

    def _absorb_resources(self, delta: Mapping[str, Any]) -> None:
        res = self.resources
        metrics = self.metrics
        for key in ("cpu_user", "cpu_system"):
            amount = float(delta.get(key, 0.0) or 0.0)
            res[key] += amount
            metrics.counter("run.cpu_seconds",
                            mode=key.split("_", 1)[1]).add(amount)
        rss = int(delta.get("max_rss_kb", 0) or 0)
        if rss > res["max_rss_kb"]:
            res["max_rss_kb"] = rss
            metrics.gauge("run.max_rss_kb").set(rss)
        for key in ("engine_events", "flows_modelled"):
            amount = int(delta.get(key, 0) or 0)
            if amount > 0:
                res[key] += amount
                metrics.counter(f"run.{key}").add(amount)

    def _refresh_gauges(self) -> None:
        metrics = self.metrics
        metrics.gauge("run.done").set(self.done)
        metrics.gauge("run.elapsed_seconds").set(round(self.elapsed, 3))
        if self.cache_ratio is not None:
            metrics.gauge("run.cache_ratio").set(round(self.cache_ratio, 4))
        if self.throughput is not None:
            metrics.gauge("run.throughput").set(round(self.throughput, 4))
        eta = self.eta
        if eta is not None:
            metrics.gauge("run.eta_seconds").set(round(eta, 3))

    # ------------------------------------------------------------------
    def complete(self, results: Sequence[Any]) -> None:
        """Capture the spec-ordered results and finalise the run.

        ``results`` duck-types the scheduler's CampaignResult (``spec``
        with ``job_hash``/``kind``/``label``, plus ``value``) so this
        layer never imports ``repro.campaign``.  Spec order is the
        deterministic order the ledger body is built in.
        """
        self.jobs = [{"hash": r.spec.job_hash, "kind": r.spec.kind,
                      "label": r.spec.label or r.spec.kind}
                     for r in results]
        self.values = [r.value for r in results]
        self.finished = True
        self._refresh_gauges()
        self.write_status(force=True)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable live view (the ``status.json`` payload)."""
        return {
            "schema": STATUS_SCHEMA_VERSION,
            "tool": self.tool,
            "finished": self.finished,
            "total": self.total,
            "done": self.done,
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
            "retries": self.retries,
            "by_kind": dict(sorted(self.by_kind.items())),
            "elapsed": round(self.elapsed, 3),
            "eta": None if self.eta is None else round(self.eta, 3),
            "cache_ratio": (None if self.cache_ratio is None
                            else round(self.cache_ratio, 4)),
            "throughput": (None if self.throughput is None
                           else round(self.throughput, 4)),
            "queue_wait_total": round(self.queue_wait_total, 3),
            "exec_total": round(self.exec_total, 3),
            "retry_seconds": round(self.retry_seconds, 3),
            "workers": self.workers,
            "lanes": {k: dict(v) for k, v in sorted(self.lanes.items())},
            "resources": dict(self.resources),
        }

    def write_status(self, force: bool = False) -> None:
        """Atomically rewrite ``status_path`` (throttled unless forced)."""
        if self.status_path is None:
            return
        now = time.monotonic()
        if not force and now - self._last_status_write < self.status_interval:
            return
        self._last_status_write = now
        tmp = f"{self.status_path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, sort_keys=True, indent=2)
            handle.write("\n")
        os.replace(tmp, self.status_path)

    def execution_record(self) -> Dict[str, Any]:
        """The wall-clock sidecar payload for :func:`write_ledger`."""
        return {"status": self.snapshot(),
                "spans": [span.to_dict() for span in self.spans]}
