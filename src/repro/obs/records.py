"""Typed trace records — the unit of the observability subsystem.

Every instrumented component emits :class:`TraceRecord` objects: a
simulation timestamp, a *kind* from the closed vocabulary below, the
flow the record belongs to (``-1`` for flow-less records such as link
drops of unattributable packets or campaign job lifecycle events), and
a flat ``fields`` mapping of JSON-serialisable values.

The record's canonical line encoding (:meth:`TraceRecord.to_line`) is
the contract the golden-trace regression suite hashes: sorted keys, no
whitespace, ``repr``-exact floats via :func:`json.dumps`.  Two runs of
the same seeded simulation must produce byte-identical line streams —
anything wall-clock, platform, or ordering dependent is banned from
``fields``.

Since schema version 2 every record also carries causal provenance: the
engine event id in whose execution context it was emitted (``eid``) and
that event's parent event id (``peid`` on the wire).  Records emitted
outside any engine event — setup code, campaign job lifecycle — carry
``eid=0, peid=0`` (the root context).  Eids are assigned in scheduling
order, so they are exactly as deterministic as the event stream itself
and safe to include in golden digests.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

#: version of the canonical record encoding.  Bump whenever the reserved
#: key set or their semantics change; the golden store records the
#: version it was captured under so a stale store fails loudly instead
#: of producing unexplainable digest mismatches.
#:
#: * v1 — ``t``/``kind``/``flow`` + flat fields (PR 3).
#: * v2 — adds causal provenance ``eid``/``peid`` (this PR).
SCHEMA_VERSION = 2

# ----------------------------------------------------------------------
# record kinds (the closed vocabulary)
# ----------------------------------------------------------------------
#: data segment left the sender (seq, size, retx)
PKT_SEND = "pkt.send"
#: a packet reached a host's endpoint dispatch (pkind, size)
PKT_RECV = "pkt.recv"
#: a packet was dropped (site, reason; flow when attributable)
PKT_DROP = "pkt.drop"
#: cwnd/ssthresh after a congestion-control event (cwnd, ssthresh, flight)
CC_CWND = "cc.cwnd"
#: slow-start exit (cwnd, reason)
CC_SS_EXIT = "cc.ss_exit"
#: an RTT sample reached the estimator (rtt)
TCP_RTT = "tcp.rtt"
#: retransmission timeout fired (backoff)
TCP_RTO = "tcp.rto"
#: fast-recovery transition (enter, point)
TCP_RECOVERY = "tcp.recovery"
#: the sender's pacing rate changed (rate; None encoded as 0.0)
TCP_PACING = "tcp.pacing"
#: receiver-side in-order delivery progressed (delivered)
TCP_DELIVERED = "tcp.delivered"
#: SUSS Algorithm-1 decision at blue-train completion
#: (round, growth, accepted, reason)
SUSS_DECISION = "suss.decision"
#: SUSS pacing-plan install (rate, target, guard)
SUSS_PLAN = "suss.plan"
#: SUSS pacing aborted before reaching its target (cwnd)
SUSS_ABORT = "suss.abort"
#: campaign job lifecycle (label, status, runtime, cached) — wall-clock
#: fields are allowed here; campaign records are never part of golden
#: digests, which hash simulation streams only.
CAMPAIGN_JOB = "campaign.job"
#: one scheduler-level execution span (span, hash, kind, status, attempt,
#: worker, queue_wait, exec, retry_of) — the run-telemetry view of a job
#: attempt, causally linked to the attempt it retried.  Wall-clock, like
#: campaign.job, and likewise never part of golden digests.
CAMPAIGN_SPAN = "campaign.span"
#: one analytically modelled flow from the flowsim fidelity tier
#: (model, size, fct, rounds, retx).  ``t`` is the flow's arrival time
#: on the modelled timeline, not an engine timestamp — flowsim runs no
#: engine events, so these records always carry the root causal context.
FLOWSIM_FLOW = "flowsim.flow"

#: every kind the stack can emit, for filter validation
ALL_KINDS = frozenset({
    PKT_SEND, PKT_RECV, PKT_DROP,
    CC_CWND, CC_SS_EXIT,
    TCP_RTT, TCP_RTO, TCP_RECOVERY, TCP_PACING, TCP_DELIVERED,
    SUSS_DECISION, SUSS_PLAN, SUSS_ABORT,
    CAMPAIGN_JOB, CAMPAIGN_SPAN, FLOWSIM_FLOW,
})


class TraceRecord:
    """One structured trace event."""

    __slots__ = ("time", "kind", "flow", "fields", "eid", "parent_eid")

    def __init__(self, time: float, kind: str, flow: int = -1,
                 fields: Optional[Mapping[str, Any]] = None,
                 eid: int = 0, parent_eid: int = 0) -> None:
        self.time = time
        self.kind = kind
        self.flow = flow
        self.fields: Dict[str, Any] = dict(fields) if fields else {}
        self.eid = eid
        self.parent_eid = parent_eid

    def to_dict(self) -> Dict[str, Any]:
        """Flat dict form (reserved keys first; fields merged in)."""
        out: Dict[str, Any] = {"t": self.time, "kind": self.kind,
                               "flow": self.flow, "eid": self.eid,
                               "peid": self.parent_eid}
        out.update(self.fields)
        return out

    def to_line(self) -> str:
        """Canonical single-line JSON encoding (the digest contract)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"), allow_nan=False)

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        data = json.loads(line)
        time = data.pop("t")
        kind = data.pop("kind")
        flow = data.pop("flow", -1)
        eid = data.pop("eid", 0)
        parent_eid = data.pop("peid", 0)
        return cls(time, kind, flow, data, eid, parent_eid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (self.time == other.time and self.kind == other.kind
                and self.flow == other.flow and self.fields == other.fields
                and self.eid == other.eid
                and self.parent_eid == other.parent_eid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = "".join(f" {k}={v!r}" for k, v in sorted(self.fields.items()))
        return (f"<TraceRecord t={self.time:.6f} {self.kind} "
                f"flow={self.flow} eid={self.eid}<-{self.parent_eid}{extra}>")


def parse_kinds(spec: str) -> frozenset:
    """Parse a comma-separated kind filter, validating each name."""
    kinds = {part.strip() for part in spec.split(",") if part.strip()}
    unknown = kinds - ALL_KINDS
    if unknown:
        raise ValueError(
            f"unknown trace kind(s) {sorted(unknown)}; "
            f"known: {sorted(ALL_KINDS)}")
    return frozenset(kinds)
