"""Metric registries: counters, gauges, and histograms with labels.

The experiment harnesses used to accumulate retransmit counts, RTT
samples, queue occupancy, and goodput in ad-hoc attributes scattered
over the stack.  The registry centralises that: each instrument is
identified by a name plus a sorted label set (``flow=1``,
``link="btl"``), handles are cached by the emitting component so the
hot path is a bare attribute update, and :meth:`MetricRegistry.snapshot`
renders everything as one JSON-serialisable dict.

Instruments are deliberately minimal and allocation-free per update:

* :class:`Counter` — monotonically non-decreasing float/int total;
* :class:`Gauge` — last-written value;
* :class:`Histogram` — streaming count/sum/min/max plus fixed
  power-of-two-style bucket counts (no per-sample storage).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, Any], ...]

#: default histogram bucket upper bounds (seconds / bytes / ratios all
#: fit a geometric ladder; the overflow bucket is implicit)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1,
    1.0, 3.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
)


class Counter:
    """Monotonic total; ``add`` rejects negative increments."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Last-observed value (queue depth, pacing rate, cwnd)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming distribution: count/sum/min/max + bucket counts."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "minimum",
                 "maximum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1: overflow
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """Approximate ``q``-th percentile (0–100) from bucket counts.

        Linear interpolation inside the containing bucket, clamped to
        the observed ``[minimum, maximum]`` (so the overflow bucket and
        the first bucket report real extremes, not bound guesses).
        Returns None for a zero-sample histogram — callers that need a
        non-raising aggregate over possibly-empty instruments pair this
        with :data:`repro.metrics.summary.EMPTY_SUMMARY`.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0 or self.minimum is None or self.maximum is None:
            return None
        rank = q / 100.0 * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lo = self.bounds[i - 1] if i > 0 else self.minimum
                hi = (self.bounds[i] if i < len(self.bounds)
                      else self.maximum)
                fraction = (rank - cumulative) / bucket_count
                value = lo + (hi - lo) * fraction
                return min(max(value, self.minimum), self.maximum)
            cumulative += bucket_count
        return self.maximum


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class MetricRegistry:
    """Instrument store keyed by (name, labels).

    ``counter``/``gauge``/``histogram`` create on first use and return
    the cached instrument afterwards; callers hold the handle and update
    it directly in hot paths.  A name is bound to one instrument type —
    mixing types under one name raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], Any] = {}
        self._types: Dict[str, type] = {}

    def _get(self, cls, name: str, labels: Dict[str, Any],
             factory) -> Any:
        bound = self._types.setdefault(name, cls)
        if bound is not cls:
            raise ValueError(
                f"metric {name!r} is a {bound.__name__}, not a {cls.__name__}")
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels, Gauge)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels,
                         lambda: Histogram(buckets))

    # ------------------------------------------------------------------
    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """The instrument registered under (name, labels), or None."""
        return self._instruments.get((name, _label_key(labels)))

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """Counter/gauge value shortcut (None when unregistered)."""
        instrument = self.get(name, **labels)
        return None if instrument is None else instrument.value

    def names(self) -> List[str]:
        return sorted(self._types)

    def type_of(self, name: str) -> Optional[str]:
        """Instrument family bound to ``name``: ``"counter"``,
        ``"gauge"``, ``"histogram"``, or None when unregistered.
        Exposition formats (OpenMetrics) need the family to pick the
        sample suffix, so this is public API rather than ``_types``."""
        cls = self._types.get(name)
        return None if cls is None else cls.__name__.lower()

    def labels_of(self, name: str) -> List[Dict[str, Any]]:
        """Every label set registered under ``name``."""
        return [dict(key) for (n, key) in sorted(self._instruments)
                if n == name]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable dump of every instrument, sorted for
        deterministic output (campaign ``--stats-json``, test goldens)."""
        out: Dict[str, Any] = {}
        for (name, key), instrument in sorted(self._instruments.items()):
            label_str = ",".join(f"{k}={v}" for k, v in key) or "_"
            entry: Dict[str, Any]
            if isinstance(instrument, Histogram):
                entry = {"type": "histogram", "count": instrument.count,
                         "sum": instrument.total, "min": instrument.minimum,
                         "max": instrument.maximum,
                         "buckets": list(instrument.bucket_counts)}
            elif isinstance(instrument, Gauge):
                entry = {"type": "gauge", "value": instrument.value}
            else:
                entry = {"type": "counter", "value": instrument.value}
            out.setdefault(name, {})[label_str] = entry
        return out
