"""Golden-trace digests: stable hashes of structured event streams.

A golden trace pins the *dynamics* of a fixed-seed run: every packet
departure, cwnd update, and SUSS decision, in order.  The digest is the
SHA-256 of the canonical JSONL encoding (identical to hashing the
corresponding ``.jsonl`` file), so a digest mismatch means the event
stream itself changed.

Alongside each digest the full gzipped JSONL stream is stored, which is
what turns a bare hash mismatch into a *readable first-divergence diff*
(:func:`first_divergence`): the failing test reports the index, the
golden line, and the actual line where the streams part ways.

This module is pure record-plumbing; the runs that *produce* golden
streams live in :mod:`repro.experiments.goldens` (the layer that may
build simulations), and ``repro trace --update-golden`` regenerates the
stored files deliberately.
"""

from __future__ import annotations

import gzip
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, NamedTuple, Optional

from repro.obs.records import SCHEMA_VERSION, TraceRecord

#: digest index filename inside a golden directory
DIGEST_FILE = "digests.json"

#: reserved key in the digest index recording the record-schema version
#: the store was captured under (absent = v1, the pre-provenance schema)
SCHEMA_KEY = "_schema"


def record_lines(records: Iterable[TraceRecord]) -> List[str]:
    """Canonical line encoding of a record stream."""
    return [record.to_line() for record in records]


def digest_lines(lines: Iterable[str]) -> str:
    """SHA-256 over newline-terminated canonical lines."""
    h = hashlib.sha256()
    for line in lines:
        h.update(line.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def trace_digest(records: Iterable[TraceRecord]) -> str:
    return digest_lines(record_lines(records))


class Divergence(NamedTuple):
    """First point where two line streams differ."""

    index: int            # 0-based line index
    golden: Optional[str]  # None when the golden stream ended first
    actual: Optional[str]  # None when the actual stream ended first

    def describe(self) -> str:
        if self.golden is None:
            return (f"actual stream has {self.index} matching lines, then "
                    f"extra line {self.index}:\n  + {self.actual}")
        if self.actual is None:
            return (f"actual stream ended after {self.index} lines; golden "
                    f"continues with:\n  - {self.golden}")
        return (f"first divergence at line {self.index}:\n"
                f"  golden: {self.golden}\n"
                f"  actual: {self.actual}")


def first_divergence(golden: List[str],
                     actual: List[str]) -> Optional[Divergence]:
    """Locate the first differing line, or None when streams match."""
    for index, (g, a) in enumerate(zip(golden, actual)):
        if g != a:
            return Divergence(index, g, a)
    if len(golden) > len(actual):
        return Divergence(len(actual), golden[len(actual)], None)
    if len(actual) > len(golden):
        return Divergence(len(golden), None, actual[len(golden)])
    return None


# ----------------------------------------------------------------------
# golden store (digests.json + <name>.jsonl.gz per stream)
# ----------------------------------------------------------------------
def stream_path(golden_dir: Path, name: str) -> Path:
    safe = name.replace("/", "_").replace("+", "_")
    return Path(golden_dir) / f"{safe}.jsonl.gz"


def load_digests(golden_dir: Path) -> Dict[str, Dict[str, object]]:
    """The digest index (stream entries only), or {} when missing."""
    index = load_index(golden_dir)
    return {name: entry for name, entry in index.items()
            if name != SCHEMA_KEY}


def load_index(golden_dir: Path) -> Dict[str, object]:
    """The raw digest index including the schema marker, or {}."""
    path = Path(golden_dir) / DIGEST_FILE
    if not path.is_file():
        return {}
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def stored_schema(golden_dir: Path) -> int:
    """Record-schema version the store was captured under (1 if unmarked)."""
    return int(load_index(golden_dir).get(SCHEMA_KEY, 1))


def load_stream(golden_dir: Path, name: str) -> List[str]:
    """The stored golden line stream for ``name``."""
    path = stream_path(golden_dir, name)
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        return fh.read().splitlines()


def save_golden(golden_dir: Path, name: str, lines: List[str]) -> str:
    """Persist one golden stream + its digest; returns the digest.

    The gzip stream is written with ``mtime=0`` so regeneration without
    a dynamics change is byte-identical (no spurious VCS churn).
    """
    golden_dir = Path(golden_dir)
    golden_dir.mkdir(parents=True, exist_ok=True)
    digest = digest_lines(lines)
    payload = ("\n".join(lines) + "\n" if lines else "").encode("utf-8")
    with open(stream_path(golden_dir, name), "wb") as raw:
        with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as fh:
            fh.write(payload)
    index = load_index(golden_dir)
    index[name] = {"digest": digest, "records": len(lines)}
    index[SCHEMA_KEY] = SCHEMA_VERSION
    with open(golden_dir / DIGEST_FILE, "w", encoding="utf-8") as fh:
        json.dump(index, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return digest
