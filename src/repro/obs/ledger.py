"""Content-addressed run ledgers: the durable record of a run.

A *ledger* is a canonical-JSON manifest written next to the result
store after a campaign / validate / flowsim run.  Its body contains
only deterministic facts — tool, mode, code fingerprint, base seed, the
spec-ordered job list (hash/kind/label), a digest of the spec-ordered
result values, and a deterministic summary (per-kind counts, validate
claim verdicts) — so running the same specs with the same seeds yields
a byte-identical file whether the run was cold, warm (all cache hits),
or parallel.  The ledger id is the SHA-256 of that canonical body,
making every figure and verdict auditable after the fact: the file
names the exact inputs, the code that ran them, and a checksum of what
they produced.

Wall-clock execution evidence (spans, worker lanes, resource totals
from :mod:`repro.obs.runtime`) is deliberately *not* part of the body:
it lands in a ``<ledger>.run.json`` sidecar keyed by the same id, so
audit data survives without breaking content-addressing.

Stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: version of the ledger body schema.  Bump on any key change; the
#: committed fixture ``tests/golden/ledger_schema.json`` gates drift.
LEDGER_SCHEMA_VERSION = 1

#: how many id hex digits name the file (collision-safe at run scale).
ID_PREFIX_LEN = 16


def canonical_json(value: Any) -> str:
    """The repo-wide canonical encoding: sorted keys, no whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


@dataclass(frozen=True)
class RunLedger:
    """Deterministic manifest of one run (see module docstring)."""

    tool: str                       # "campaign" | "validate" | "flowsim"
    mode: str                       # tool-specific mode string
    code_fingerprint: str
    base_seed: int
    jobs: Tuple[Dict[str, str], ...]   # spec order: {hash, kind, label}
    results_digest: str             # sha256 of canonical spec-ordered values
    summary: Dict[str, Any] = field(default_factory=dict)
    schema: int = LEDGER_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "tool": self.tool,
            "mode": self.mode,
            "code_fingerprint": self.code_fingerprint,
            "base_seed": self.base_seed,
            "jobs": [dict(job) for job in self.jobs],
            "results_digest": self.results_digest,
            "summary": self.summary,
        }

    @property
    def ledger_id(self) -> str:
        """SHA-256 of the canonical body — the content address."""
        return hashlib.sha256(
            canonical_json(self.to_dict()).encode("utf-8")).hexdigest()


def build_ledger(tool: str, mode: str, code_fingerprint: str,
                 base_seed: int, jobs: Sequence[Mapping[str, str]],
                 values: Sequence[Any],
                 summary: Optional[Mapping[str, Any]] = None) -> RunLedger:
    """Assemble a :class:`RunLedger` from spec-ordered jobs + values.

    ``jobs`` and ``values`` must be in spec order (the scheduler returns
    results that way) so the digest is independent of completion order.
    The default summary records job count and per-kind counts; callers
    merge tool-specific deterministic facts (validate verdicts) on top.
    """
    if len(jobs) != len(values):
        raise ValueError(
            f"jobs/values length mismatch: {len(jobs)} vs {len(values)}")
    by_kind: Dict[str, int] = {}
    normalised = []
    for job in jobs:
        entry = {"hash": str(job["hash"]), "kind": str(job["kind"]),
                 "label": str(job.get("label") or job["kind"])}
        by_kind[entry["kind"]] = by_kind.get(entry["kind"], 0) + 1
        normalised.append(entry)
    merged: Dict[str, Any] = {"jobs": len(normalised),
                              "by_kind": dict(sorted(by_kind.items()))}
    if summary:
        merged.update(summary)
    digest = hashlib.sha256(
        canonical_json(list(values)).encode("utf-8")).hexdigest()
    return RunLedger(tool=tool, mode=mode,
                     code_fingerprint=code_fingerprint,
                     base_seed=base_seed, jobs=tuple(normalised),
                     results_digest=digest, summary=merged)


def ledger_filename(ledger: RunLedger) -> str:
    return f"ledger-{ledger.ledger_id[:ID_PREFIX_LEN]}.json"


def sidecar_filename(ledger_path: str) -> str:
    """The wall-clock sidecar path for a ledger file path."""
    base, ext = os.path.splitext(ledger_path)
    return f"{base}.run{ext}"


def write_ledger(ledger: RunLedger, directory: str,
                 execution: Optional[Mapping[str, Any]] = None) -> str:
    """Write the canonical ledger (and optional sidecar); return its path.

    The body is canonical JSON + newline, written atomically, so two
    runs of the same inputs produce byte-identical files.  ``execution``
    (a :meth:`RunTelemetry.execution_record` payload) lands in the
    ``.run.json`` sidecar — pretty-printed, wall-clock, not addressed.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, ledger_filename(ledger))
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(ledger.to_dict()) + "\n")
    os.replace(tmp, path)
    if execution is not None:
        sidecar = sidecar_filename(path)
        tmp = f"{sidecar}.tmp.{os.getpid()}"
        payload = {"ledger_id": ledger.ledger_id, **execution}
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
        os.replace(tmp, sidecar)
    return path


def load_ledger(path: str) -> Tuple[Dict[str, Any],
                                    Optional[Dict[str, Any]]]:
    """Load a ledger body (verifying its address) plus its sidecar.

    Raises ValueError when the file's content no longer hashes to the
    id in its name — a tampered or hand-edited ledger fails loudly.
    """
    with open(path, "r", encoding="utf-8") as handle:
        body = json.load(handle)
    if body.get("schema") != LEDGER_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: ledger schema {body.get('schema')!r}, "
            f"expected {LEDGER_SCHEMA_VERSION}")
    digest = hashlib.sha256(
        canonical_json(body).encode("utf-8")).hexdigest()
    name = os.path.basename(path)
    if name.startswith("ledger-"):
        claimed = name[len("ledger-"):].split(".")[0]
        if claimed and not digest.startswith(claimed):
            raise ValueError(
                f"{path}: content hashes to {digest[:ID_PREFIX_LEN]}, "
                f"file name claims {claimed} — ledger was modified")
    execution: Optional[Dict[str, Any]] = None
    sidecar = sidecar_filename(path)
    if os.path.exists(sidecar):
        with open(sidecar, "r", encoding="utf-8") as handle:
            execution = json.load(handle)
    return body, execution


def schema_paths(value: Any, prefix: str = "") -> List[str]:
    """Flatten a ledger body into sorted ``path:type`` strings.

    Dict keys become dotted paths, list elements collapse to ``[]`` (the
    union of element schemas), and leaves record their JSON type name.
    The committed fixture of these paths is the drift gate: adding,
    removing, or retyping a ledger field fails the gate until the
    fixture (and schema version) are updated deliberately.
    """
    paths: set = set()
    if isinstance(value, Mapping):
        if not value:
            paths.add(f"{prefix}:object")
        for key, child in value.items():
            paths.update(schema_paths(child, f"{prefix}.{key}" if prefix
                                      else str(key)))
    elif isinstance(value, (list, tuple)):
        if not value:
            paths.add(f"{prefix}[]:empty")
        for child in value:
            paths.update(schema_paths(child, f"{prefix}[]"))
    else:
        if isinstance(value, bool):
            type_name = "bool"
        elif isinstance(value, int):
            type_name = "int"
        elif isinstance(value, float):
            type_name = "float"
        elif isinstance(value, str):
            type_name = "str"
        elif value is None:
            type_name = "null"
        else:  # pragma: no cover - canonical JSON admits nothing else
            type_name = type(value).__name__
        paths.add(f"{prefix}:{type_name}")
    return sorted(paths)
