"""Profiling hooks: per-event-type wall-time and fire-count aggregation.

The engine hands every fired event to :meth:`EventProfiler.fire`, which
times the callback and aggregates (count, total seconds, max seconds)
per callback ``__qualname__`` — the event *type* in a simulator where
behaviour is callbacks, not classes.  Aggregation is O(1) per event and
allocation-free after the first sighting of each key, so profiled runs
stay within a small constant factor of unprofiled ones.

Wall-clock note: this module is the one place outside ``campaign/``
allowed to read real time (see
:func:`repro.analysis.lint.applicable_rules`) — profiling *is* the
measurement of real time.  Profiler output must never flow into
simulation results or trace digests.

A process-global profiler can be installed so that code which builds
its own ``Simulator`` instances internally (the experiment harnesses)
still aggregates into one report — that is what ``repro profile
<experiment>`` uses, via :func:`install_global` /
:func:`from_env` (``REPRO_PROFILE=1``).
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: environment variable that switches engine profiling on for new Simulators
ENV_VAR = "REPRO_PROFILE"

_TRUTHY = {"1", "true", "yes", "on"}


class EventProfiler:
    """Aggregates per-event-type wall time across one or more runs."""

    def __init__(self) -> None:
        #: key -> [fires, total_seconds, max_seconds]
        self.stats: Dict[str, List[float]] = {}
        self.events = 0

    # ------------------------------------------------------------------
    def fire(self, callback: Callable[..., None], args: Tuple[Any, ...]) -> None:
        """Run ``callback(*args)``, timing it under the callback's name."""
        start = time.perf_counter()
        try:
            callback(*args)
        finally:
            elapsed = time.perf_counter() - start
            self.note(getattr(callback, "__qualname__", repr(callback)),
                      elapsed)

    def note(self, key: str, elapsed: float) -> None:
        """Record one fire of ``key`` taking ``elapsed`` seconds."""
        self.events += 1
        entry = self.stats.get(key)
        if entry is None:
            self.stats[key] = [1, elapsed, elapsed]
        else:
            entry[0] += 1
            entry[1] += elapsed
            if elapsed > entry[2]:
                entry[2] = elapsed

    # ------------------------------------------------------------------
    #: sort key name -> index into a rows() tuple
    SORT_KEYS = {"total": 2, "count": 1, "mean": 3}

    def rows(self, sort: str = "total"
             ) -> List[Tuple[str, int, float, float, float]]:
        """(key, fires, total_s, mean_s, max_s) tuples.

        ``sort`` picks the descending sort column: ``total`` (default),
        ``count`` (fires), or ``mean`` (seconds per fire); ties fall
        back to the key name for deterministic output.
        """
        column = self.SORT_KEYS.get(sort)
        if column is None:
            raise ValueError(f"unknown sort key {sort!r}; "
                             f"known: {', '.join(sorted(self.SORT_KEYS))}")
        out = []
        for key, (fires, total, peak) in self.stats.items():
            out.append((key, int(fires), total, total / fires, peak))
        out.sort(key=lambda row: (-row[column], row[0]))
        return out

    def total_seconds(self) -> float:
        return sum(total for _, total, _ in self.stats.values())

    def format_report(self, top: Optional[int] = None,
                      sort: str = "total") -> str:
        """Human-readable table of the hottest event types."""
        # Imported here, not at module scope: obs is loaded while repro.cc
        # is still initialising, and repro.core.__init__ (which a fresh
        # core.units import triggers) reaches back into cc for SussCubic.
        from repro.core.units import MICROS_PER_SECOND

        rows = self.rows(sort=sort)
        if top is not None:
            rows = rows[:top]
        if not rows:
            return "no events profiled"
        width = max(len(row[0]) for row in rows)
        width = max(width, len("event type"))
        lines = [f"{'event type':<{width}}  {'fires':>9}  {'total':>10}  "
                 f"{'mean':>10}  {'max':>10}"]
        lines.append("-" * len(lines[0]))
        for key, fires, total, mean, peak in rows:
            lines.append(f"{key:<{width}}  {fires:>9}  {total:>9.4f}s  "
                         f"{mean * MICROS_PER_SECOND:>8.2f}us  "
                         f"{peak * MICROS_PER_SECOND:>8.2f}us")
        lines.append(f"{self.events} events, "
                     f"{self.total_seconds():.4f}s in callbacks")
        return "\n".join(lines)

    def collapsed_stacks(self) -> List[str]:
        """Folded-stack lines for flamegraph tooling.

        One line per key, ``frame;frame <count>``: qualname segments
        become stack frames (``Link.transmit`` → ``Link;transmit``) and
        the count is total wall time in integer microseconds (clamped
        to ≥1 so a key that fired is never rendered as empty).  Sorted
        by key, so equal profiles fold to identical output —
        :func:`parse_collapsed` is the exact inverse, which the
        round-trip test pins.
        """
        from repro.core.units import MICROS_PER_SECOND  # see format_report

        lines = []
        for key in sorted(self.stats):
            total = self.stats[key][1]
            micros = max(int(round(total * MICROS_PER_SECOND)), 1)
            lines.append(f"{key.replace('.', ';')} {micros}")
        return lines

    def reset(self) -> None:
        self.stats.clear()
        self.events = 0


def parse_collapsed(lines: List[str]) -> Dict[str, int]:
    """Inverse of :meth:`EventProfiler.collapsed_stacks`.

    Maps each folded stack back to its dotted profiler key with the
    microsecond count — the round-trip contract flamegraph consumers
    rely on (and the fold-format test asserts).
    """
    out: Dict[str, int] = {}
    for line in lines:
        stack, _, count = line.rpartition(" ")
        if not stack:
            raise ValueError(f"malformed folded line {line!r}")
        out[stack.replace(";", ".")] = int(count)
    return out


# ----------------------------------------------------------------------
# process-global profiler (for harnesses that build Simulators internally)
# ----------------------------------------------------------------------
_GLOBAL: Optional[EventProfiler] = None


def install_global(profiler: Optional[EventProfiler] = None) -> EventProfiler:
    """Install (or create) the process-global profiler and return it.

    Every subsequently-constructed :class:`repro.sim.engine.Simulator`
    that resolves its observability from the environment aggregates into
    this instance.
    """
    global _GLOBAL
    _GLOBAL = profiler if profiler is not None else EventProfiler()
    return _GLOBAL


def clear_global() -> None:
    """Uninstall the process-global profiler."""
    global _GLOBAL
    _GLOBAL = None


def global_profiler() -> Optional[EventProfiler]:
    return _GLOBAL


def profile_enabled() -> bool:
    """True when ``REPRO_PROFILE`` requests profiled runs."""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def from_env() -> Optional[EventProfiler]:
    """The profiler new Simulators should use, per globals/environment.

    An explicitly installed global profiler wins; otherwise
    ``REPRO_PROFILE=1`` lazily installs one (shared by every Simulator
    in the process, so multi-run harnesses aggregate into one report).
    """
    if _GLOBAL is not None:
        return _GLOBAL
    if profile_enabled():
        return install_global()
    return None
