"""Trace sinks: where structured records go.

A sink is anything with ``emit(record)`` and ``close()`` — the protocol
is duck-typed so tests can pass ad-hoc validating sinks.  The built-in
sinks cover the three consumption modes of the evaluation:

* :class:`MemorySink` / :class:`RingBufferSink` — in-process analysis
  (property tests, invariant checks) without touching the filesystem;
* :class:`JsonlSink` — one canonical JSON object per line, the on-disk
  interchange format (``repro trace``, CI failure artifacts);
* :class:`DigestSink` — a streaming SHA-256 over the canonical line
  encoding, used by the golden-trace suite and the ``jobs=1`` vs
  ``jobs=4`` determinism cross-check without buffering the stream;
* :class:`TeeSink` — fan one stream out to several sinks.

The CSV exporter lives with the other CSV code as
:class:`repro.trace.csvout.CsvTraceSink` (the trace layer sits above
``obs`` in the DAG).
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Deque, Iterator, List, Optional, Protocol, Sequence, TextIO, runtime_checkable

from repro.obs.records import TraceRecord


@runtime_checkable
class TraceSink(Protocol):
    """Destination for trace records."""

    def emit(self, record: TraceRecord) -> None: ...

    def close(self) -> None: ...


class MemorySink:
    """Unbounded in-memory record list (tests, small runs)."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def emit(self, record: TraceRecord) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def by_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def by_flow(self, flow: int) -> List[TraceRecord]:
        return [r for r in self.records if r.flow == flow]


class RingBufferSink(MemorySink):
    """Bounded sink keeping only the newest ``capacity`` records.

    The invariant tests attach one of these to long runs so memory stays
    flat while the most recent dynamics remain inspectable — the same
    role the kernel's ring-buffered trace buffers play.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._ring: Deque[TraceRecord] = deque(maxlen=capacity)
        self.emitted = 0  # total offered, including overwritten
        # A real counter, not ``emitted - len``: draining empties the
        # ring without having dropped anything, so the derived form
        # over-reports after the first drain (and exactly at wrap the
        # two definitions must both read 0).
        self._dropped = 0

    @property
    def records(self) -> List[TraceRecord]:  # type: ignore[override]
        return list(self._ring)

    @property
    def dropped(self) -> int:
        """Records overwritten because the buffer was full."""
        return self._dropped

    def emit(self, record: TraceRecord) -> None:
        if len(self._ring) == self.capacity:
            self._dropped += 1
        self._ring.append(record)
        self.emitted += 1

    def drain(self) -> List[TraceRecord]:
        """Remove and return the buffered records, oldest first.

        ``emitted`` and ``dropped`` keep their lifetime counts; only the
        buffer contents reset, so a monitor can drain periodically and
        still account for every record offered.
        """
        out = list(self._ring)
        self._ring.clear()
        return out

    def __len__(self) -> int:
        return len(self._ring)


class JsonlSink:
    """Write each record as one canonical JSON line.

    Accepts either an open text stream or a path (opened on first emit
    so constructing an unused sink never touches the filesystem).
    """

    def __init__(self, target) -> None:
        self._path: Optional[str] = None
        self._stream: Optional[TextIO] = None
        self._owns_stream = False
        if isinstance(target, str):
            self._path = target
        else:
            self._stream = target
        self.lines = 0

    def emit(self, record: TraceRecord) -> None:
        if self._stream is None:
            assert self._path is not None
            self._stream = open(self._path, "w", encoding="utf-8")
            self._owns_stream = True
        self._stream.write(record.to_line())
        self._stream.write("\n")
        self.lines += 1

    def close(self) -> None:
        if self._stream is not None:
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()
                self._stream = None


class DigestSink:
    """Streaming SHA-256 over the canonical line encoding.

    ``digest()`` may be read at any point; it covers everything emitted
    so far.  Hashing line-by-line (with a newline separator) makes the
    digest equal to hashing the equivalent JSONL file byte-for-byte.
    """

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.records = 0

    def emit(self, record: TraceRecord) -> None:
        self._hash.update(record.to_line().encode("utf-8"))
        self._hash.update(b"\n")
        self.records += 1

    def close(self) -> None:
        pass

    def digest(self) -> str:
        return self._hash.hexdigest()


class TeeSink:
    """Replicate every record to each of several sinks."""

    def __init__(self, sinks: Sequence[TraceSink]) -> None:
        if not sinks:
            raise ValueError("TeeSink needs at least one sink")
        self.sinks = list(sinks)

    def emit(self, record: TraceRecord) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
