"""The tracer and the per-run :class:`Observability` bundle.

``Observability`` is what a :class:`repro.sim.engine.Simulator` carries
as ``sim.obs``: a tracer (structured records → sink), a metric registry,
and optionally an engine profiler.  Components guard every hook site
with a single ``sim.obs is not None`` test, so a run with observability
disabled (the default) pays one attribute check per instrumented event
and nothing else — the overhead contract DESIGN.md §7 documents.

Environment activation (mirrors ``REPRO_SANITIZE``):

``REPRO_TRACE=jsonl:PATH``
    stream canonical JSONL to ``PATH``;
``REPRO_TRACE=ring[:N]``
    keep the newest ``N`` (default 65536) records in memory;
``REPRO_TRACE=mem``
    keep every record in memory;
``REPRO_TRACE=digest``
    maintain a streaming digest only (golden/determinism checks);
``REPRO_TRACE_KINDS=pkt.send,cc.cwnd``
    restrict emission to the listed kinds (default: all).

CSV output is not an environment mode — construct a
:class:`repro.trace.csvout.CsvTraceSink` programmatically (the CSV code
lives above ``obs`` in the layer DAG).
"""

from __future__ import annotations

import os
from typing import Any, FrozenSet, Optional

from repro.obs import profile as _profile
from repro.obs.metrics import MetricRegistry
from repro.obs.records import TraceRecord, parse_kinds
from repro.obs.sinks import (
    DigestSink,
    JsonlSink,
    MemorySink,
    RingBufferSink,
    TraceSink,
)

#: environment variable that switches tracing on for new Simulators
ENV_VAR = "REPRO_TRACE"
KINDS_ENV_VAR = "REPRO_TRACE_KINDS"


class Tracer:
    """Routes records of enabled kinds into a sink."""

    __slots__ = ("sink", "kinds")

    def __init__(self, sink: TraceSink,
                 kinds: Optional[FrozenSet[str]] = None) -> None:
        self.sink = sink
        #: None means "all kinds"
        self.kinds = kinds

    def wants(self, kind: str) -> bool:
        return self.kinds is None or kind in self.kinds

    def emit(self, time: float, kind: str, flow: int = -1,
             **fields: Any) -> None:
        if self.kinds is None or kind in self.kinds:
            self.sink.emit(TraceRecord(time, kind, flow, fields))

    def close(self) -> None:
        self.sink.close()


class Observability:
    """Per-run observability bundle: tracer + metric registry + profiler.

    ``provenance`` is the causal-context source — duck-typed as anything
    with ``current_eid`` / ``_sched_origin`` integer attributes.
    :class:`repro.sim.engine.Simulator` binds itself here on
    construction, so every record emitted during an engine event carries
    ``(eid, parent_eid)`` where ``parent_eid`` is the nearest
    *record-emitting* causal ancestor; after the first emit the current
    event is promoted (``_sched_origin`` becomes its own eid) to be the
    origin of everything it schedules, which keeps chains walkable
    across silent plumbing events.  The pre-promotion origin is cached
    here (``_origin_peid``) so later records of the same event still
    stamp the ancestor, not the event itself — all records of one event
    agree on their parent.  With no provenance bound (e.g. campaign-side
    emission outside any simulation) records carry the root context
    ``(0, 0)``.
    """

    __slots__ = ("tracer", "metrics", "profiler", "provenance",
                 "_origin_peid")

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricRegistry] = None,
                 profiler: Optional[_profile.EventProfiler] = None,
                 provenance: Optional[Any] = None) -> None:
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.profiler = profiler
        self.provenance = provenance
        self._origin_peid = 0

    def emit(self, time: float, kind: str, flow: int = -1,
             **fields: Any) -> None:
        """Emit a trace record if a tracer wants this kind (cheap no-op
        otherwise)."""
        tracer = self.tracer
        if tracer is not None and (tracer.kinds is None
                                   or kind in tracer.kinds):
            prov = self.provenance
            eid = 0 if prov is None else prov.current_eid
            if eid == 0:
                tracer.sink.emit(TraceRecord(time, kind, flow, fields))
                return
            origin = prov._sched_origin
            if origin != eid:
                # First record of this event: remember its true origin
                # for the rest of the event, then promote — events it
                # schedules from here on cite it as their origin.
                # (origin == eid can only mean "already promoted": an
                # event's inherited origin always predates its own eid.)
                self._origin_peid = origin
                prov._sched_origin = eid
            tracer.sink.emit(TraceRecord(
                time, kind, flow, fields, eid, self._origin_peid))

    def close(self) -> None:
        if self.tracer is not None:
            self.tracer.close()


# ----------------------------------------------------------------------
# construction helpers
# ----------------------------------------------------------------------
def tracing(sink: TraceSink, kinds: Optional[FrozenSet[str]] = None,
            profiler: Optional[_profile.EventProfiler] = None
            ) -> Observability:
    """Shorthand: an Observability tracing into ``sink``."""
    return Observability(tracer=Tracer(sink, kinds), profiler=profiler)


def _sink_from_spec(spec: str) -> TraceSink:
    mode, _, arg = spec.partition(":")
    mode = mode.strip().lower()
    if mode == "jsonl":
        if not arg:
            raise ValueError("REPRO_TRACE=jsonl:PATH needs a path")
        return JsonlSink(arg)
    if mode == "ring":
        return RingBufferSink(int(arg) if arg else 65536)
    if mode == "mem":
        return MemorySink()
    if mode == "digest":
        return DigestSink()
    raise ValueError(
        f"unknown REPRO_TRACE mode {mode!r}; "
        f"known: jsonl:PATH, ring[:N], mem, digest")


def trace_enabled() -> bool:
    """True when ``REPRO_TRACE`` requests traced runs."""
    return bool(os.environ.get(ENV_VAR, "").strip())


def from_env() -> Optional[Observability]:
    """Observability per the environment, or None when fully disabled.

    Tracing comes from ``REPRO_TRACE``/``REPRO_TRACE_KINDS``; profiling
    from an installed global profiler or ``REPRO_PROFILE`` (see
    :mod:`repro.obs.profile`).  With neither requested the result is
    None and instrumented code paths reduce to one pointer test.
    """
    spec = os.environ.get(ENV_VAR, "").strip()
    profiler = _profile.from_env()
    if not spec and profiler is None:
        return None
    tracer = None
    if spec:
        kinds_spec = os.environ.get(KINDS_ENV_VAR, "").strip()
        kinds = parse_kinds(kinds_spec) if kinds_spec else None
        tracer = Tracer(_sink_from_spec(spec), kinds)
    return Observability(tracer=tracer, profiler=profiler)
