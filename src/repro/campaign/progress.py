"""Campaign telemetry: jobs done/failed/cached, per-job runtime, ETA.

The reporter always *counts* (so the CLI can emit machine-readable stats
even in quiet mode); it only *prints* when given a stream.  Lines are
throttled to at most one per ``min_interval`` seconds, except for
failures and the final job, which always print.

Beyond the aggregate counters, the reporter keeps one record per
finished job (label, status, attempts, runtime) which ``stats()``
exports — this is what ``repro campaign --stats-json`` persists.  When
an :class:`repro.obs.Observability` bundle is attached, every finished
job additionally emits a ``campaign.job`` trace record stamped with
wall-clock elapsed time (the campaign layer owns real time; these
records never participate in simulation trace digests).
"""

from __future__ import annotations

import sys
import time
from typing import IO, Any, Dict, List, Optional

from repro.obs import records as obsrec
from repro.obs.tracer import Observability


class ProgressReporter:
    """Counts campaign events and narrates them to a stream."""

    def __init__(self, stream: Optional[IO[str]] = None,
                 min_interval: float = 0.0,
                 obs: Optional[Observability] = None):
        self.stream = stream
        self.min_interval = min_interval
        self.obs = obs
        self.total = 0
        self.jobs = 1
        self.executed = 0
        self.cached = 0
        self.failed = 0
        self.retries = 0
        self.retry_seconds = 0.0
        self.runtimes: List[float] = []
        self.job_records: List[Dict[str, Any]] = []
        self._started_at: Optional[float] = None
        self._last_print = 0.0

    # ------------------------------------------------------------------
    @property
    def done(self) -> int:
        return self.executed + self.cached + self.failed

    @property
    def eta(self) -> Optional[float]:
        """Estimated seconds left, from mean job *cost* and worker count.

        Cost charges failed-attempt time to the jobs that caused it:
        the naive mean-of-runtimes underestimates under retries (a job
        that burned two timeouts before succeeding looks as cheap as a
        clean one), so retry wall-clock reported via :meth:`job_retry`
        is folded into the per-job mean.  ``remaining`` is clamped at
        zero so late stragglers can't drive the estimate negative.
        """
        if not self.runtimes or self.total <= 0:
            return None
        mean = ((sum(self.runtimes) + self.retry_seconds)
                / len(self.runtimes))
        remaining = max(self.total - self.done, 0)
        return mean * remaining / max(self.jobs, 1)

    def stats(self) -> Dict[str, Any]:
        elapsed = (time.monotonic() - self._started_at
                   if self._started_at is not None else 0.0)
        return {"total": self.total, "executed": self.executed,
                "cached": self.cached, "failed": self.failed,
                "retries": self.retries, "elapsed": elapsed,
                "job_records": list(self.job_records)}

    # ------------------------------------------------------------------
    def start(self, total: int, jobs: int = 1) -> None:
        self.total = total
        self.jobs = jobs
        self._started_at = time.monotonic()
        self._emit(f"campaign: {total} jobs on {jobs} worker(s)", force=True)

    def job_retry(self, label: str, runtime: float,
                  error: Optional[str] = None) -> None:
        """A failed attempt that will be retried; not a finished job.

        ``runtime`` is the wall-clock the attempt burned — it feeds the
        ETA's per-job cost but never the done counters.
        """
        self.retries += 1
        self.retry_seconds += runtime
        line = f"[{self.done}/{self.total}] retry  {label} ({runtime:.2f}s)"
        if error:
            line += f" — {error}"
        self._emit(line, force=True)

    def job_done(self, label: str, status: str, runtime: float,
                 cached: bool = False, error: Optional[str] = None,
                 attempts: int = 1,
                 job_hash: Optional[str] = None) -> None:
        if cached:
            self.cached += 1
        elif status == "ok":
            self.executed += 1
            self.runtimes.append(runtime)
        else:
            self.failed += 1
        record: Dict[str, Any] = {"label": label, "status": status,
                                  "runtime": runtime, "cached": cached,
                                  "attempts": attempts}
        if job_hash:
            record["hash"] = job_hash
        if error:
            record["error"] = error
        self.job_records.append(record)
        if self.obs is not None:
            elapsed = (time.monotonic() - self._started_at
                       if self._started_at is not None else 0.0)
            self.obs.emit(elapsed, obsrec.CAMPAIGN_JOB, -1, **record)
        tag = "cached" if cached else status
        line = (f"[{self.done}/{self.total}] {tag:<6} {label}"
                f" ({runtime:.2f}s)")
        if error:
            line += f" — {error}"
        eta = self.eta
        if eta is not None and self.done < self.total:
            line += f" | eta {eta:.0f}s"
        self._emit(line, force=(status != "ok" or self.done == self.total))

    def finish(self) -> Dict[str, Any]:
        stats = self.stats()
        self._emit(
            f"campaign done: executed={stats['executed']} "
            f"cached={stats['cached']} failed={stats['failed']} "
            f"elapsed={stats['elapsed']:.1f}s", force=True)
        return stats

    # ------------------------------------------------------------------
    def _emit(self, line: str, force: bool = False) -> None:
        if self.stream is None:
            return
        now = time.monotonic()
        if not force and now - self._last_print < self.min_interval:
            return
        self._last_print = now
        print(line, file=self.stream, flush=True)


def stderr_reporter(min_interval: float = 0.0) -> ProgressReporter:
    return ProgressReporter(stream=sys.stderr, min_interval=min_interval)
