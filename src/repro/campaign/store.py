"""Content-addressed on-disk result store.

Records are JSON files keyed by ``(code fingerprint, job hash)``:

    <root>/<fingerprint[:16]>/<hash[:2]>/<hash>.json

The *code fingerprint* is a SHA-256 over the source of every ``.py`` file
in the ``repro`` package, so editing any simulator/CC/experiment code
invalidates the whole cache (stale results can never leak across code
versions), while re-running an unchanged tree is pure cache hits.  The
``REPRO_CAMPAIGN_FINGERPRINT`` environment variable overrides the
computed fingerprint (used by tests and by CI smoke runs).

Only successful job results are stored — failures and timeouts stay
uncached so an interrupted or partially failed campaign retries exactly
the unfinished work on the next invocation (that is the resume
mechanism: resume *is* replaying the campaign against a warm cache).
Writes are atomic (temp file + ``os.replace``) so a killed campaign
never leaves a torn record, and unreadable/corrupt records degrade to
cache misses.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

_FINGERPRINT_CACHE: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of all ``repro`` package sources (cached per process)."""
    env = os.environ.get("REPRO_CAMPAIGN_FINGERPRINT")
    if env:
        return env
    global _FINGERPRINT_CACHE
    if _FINGERPRINT_CACHE is not None:
        return _FINGERPRINT_CACHE
    import repro
    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _FINGERPRINT_CACHE = digest.hexdigest()
    return _FINGERPRINT_CACHE


class ResultStore:
    """JSON record store addressed by job hash under one code fingerprint."""

    def __init__(self, root: os.PathLike, fingerprint: Optional[str] = None):
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()

    @property
    def generation_dir(self) -> Path:
        return self.root / self.fingerprint[:16]

    def path_for(self, job_hash: str) -> Path:
        return self.generation_dir / job_hash[:2] / f"{job_hash}.json"

    def get(self, job_hash: str) -> Optional[Dict[str, Any]]:
        """Load a record, or None on miss/corruption (corrupt = miss)."""
        path = self.path_for(job_hash)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or "value" not in record:
            return None
        return record

    def put(self, job_hash: str, record: Dict[str, Any]) -> Path:
        """Atomically persist a record for ``job_hash``."""
        path = self.path_for(job_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{job_hash}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(record, fh, sort_keys=True)
        os.replace(tmp, path)
        return path

    def iter_hashes(self) -> Iterator[str]:
        if not self.generation_dir.is_dir():
            return
        for path in self.generation_dir.glob("*/*.json"):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_hashes())

    def __contains__(self, job_hash: str) -> bool:
        return self.path_for(job_hash).is_file()
