"""``repro.campaign`` — parallel, cached, fault-tolerant experiment campaigns.

The paper's evaluation is thousands of independent seeded downloads; this
package turns them into a schedulable job system:

* :mod:`~repro.campaign.spec` — declarative :class:`JobSpec` with a
  stable content hash;
* :mod:`~repro.campaign.jobs` — registered job kinds and the worker
  entry point (timeouts, fault injection);
* :mod:`~repro.campaign.scheduler` — process-pool fan-out with bounded
  retries, crash recovery, and deterministic result ordering;
* :mod:`~repro.campaign.store` — content-addressed on-disk result cache
  keyed by job hash + code fingerprint (also the resume mechanism);
* :mod:`~repro.campaign.progress` — done/failed/cached counts, per-job
  runtimes, and ETA for the CLI.
"""

from repro.campaign.jobs import JOB_KINDS, execute_job, register
from repro.campaign.progress import ProgressReporter, stderr_reporter
from repro.campaign.scheduler import (
    CampaignResult,
    campaign_stats,
    collect_values,
    run_campaign,
)
from repro.campaign.spec import (
    JobSpec,
    canonical_json,
    fairness_job,
    flowsim_sweep_job,
    single_flow_job,
    stability_job,
)
from repro.campaign.store import ResultStore, code_fingerprint

__all__ = [
    "JOB_KINDS",
    "CampaignResult",
    "JobSpec",
    "ProgressReporter",
    "ResultStore",
    "campaign_stats",
    "canonical_json",
    "code_fingerprint",
    "collect_values",
    "execute_job",
    "fairness_job",
    "flowsim_sweep_job",
    "register",
    "run_campaign",
    "single_flow_job",
    "stability_job",
    "stderr_reporter",
]
