"""Job kinds and the worker-side entry point.

``JOB_KINDS`` maps a :class:`~repro.campaign.spec.JobSpec` kind to a
function ``params -> result dict``; results must be JSON-serialisable so
they can cross the process boundary and land in the
:class:`~repro.campaign.store.ResultStore` unchanged.

:func:`execute_job` is the function worker processes actually run.  It
enforces the per-job wall-clock timeout (``SIGALRM``) and interprets the
fault-injection knobs (``_crash_attempts``, ``_fail_attempts``,
``_sleep`` under ``params["knobs"]``) that the test suite uses to
exercise the scheduler's retry and crash-recovery paths.  Experiment
imports happen inside the job functions: the experiment layer depends on
the campaign layer, not the other way round.
"""

from __future__ import annotations

import contextlib
import os
import signal
import time
from typing import Any, Callable, Dict, Iterator, Mapping, Optional

JOB_KINDS: Dict[str, Callable[[Mapping[str, Any]], Dict[str, Any]]] = {}


def register(kind: str):
    """Register a job runner under ``kind`` (decorator)."""
    def decorate(fn):
        JOB_KINDS[kind] = fn
        return fn
    return decorate


def _run_analytical_flow(params: Mapping[str, Any]) -> Dict[str, Any]:
    """The ``fidelity="analytical"`` arm of a single-flow job: the same
    (scenario, cc, size) cell evaluated by the paired closed-form model
    instead of the packet simulator.  The result dict keeps the packet
    schema — ``retransmissions`` and ``drops`` become rounded
    expectations — so downstream aggregation is tier-agnostic."""
    from repro.flowsim.crossval import SCHEME_PAIRS
    from repro.flowsim.model import PathParams, create_model
    from repro.workloads.scenarios import PathScenario

    scenario = PathScenario(**params["scenario"])
    cc = params["cc"]
    model_name = SCHEME_PAIRS.get(cc, cc)
    path = PathParams.from_scenario(
        scenario, delayed_ack=params.get("delayed_ack", False))
    est = create_model(model_name).estimate(params["size_bytes"], path)
    return {
        "scenario": scenario.name,
        "cc": cc,
        "size_bytes": params["size_bytes"],
        "seed": params["seed"],
        "fct": est.fct,
        "completed": True,
        "retransmissions": round(est.retransmits),
        "rto_count": 0,
        "data_packets_sent": est.segments,
        "drops": round(est.retransmits),
        "loss_rate": est.loss_rate,
        "fidelity": "analytical",
        "model": est.model,
        "ss_rounds": est.ss_rounds,
        "rounds_saved": est.rounds_saved,
    }


@register("single_flow")
def run_single_flow_job(params: Mapping[str, Any]) -> Dict[str, Any]:
    """One seeded download; mirrors :func:`repro.experiments.runner.run_single_flow`."""
    if params.get("fidelity", "packet") == "analytical":
        return _run_analytical_flow(params)

    from repro.experiments.runner import run_single_flow
    from repro.workloads.scenarios import PathScenario

    scenario = PathScenario(**params["scenario"])
    obs = None
    digest_sink = None
    memory_sink = None
    if params.get("trace_digest") or params.get("analyze"):
        from repro.obs.sinks import DigestSink, MemorySink, TeeSink
        from repro.obs.tracer import Observability, Tracer

        sinks = []
        if params.get("trace_digest"):
            digest_sink = DigestSink()
            sinks.append(digest_sink)
        if params.get("analyze"):
            memory_sink = MemorySink()
            sinks.append(memory_sink)
        sink = sinks[0] if len(sinks) == 1 else TeeSink(sinks)
        obs = Observability(tracer=Tracer(sink))
    result = run_single_flow(
        scenario, params["cc"], params["size_bytes"], seed=params["seed"],
        delayed_ack=params.get("delayed_ack", False),
        ecn=params.get("ecn", False), obs=obs)
    value = {
        "scenario": scenario.name,
        "cc": result.cc,
        "size_bytes": result.size_bytes,
        "seed": result.seed,
        "fct": result.fct,
        "completed": result.completed,
        "retransmissions": result.retransmissions,
        "rto_count": result.rto_count,
        "data_packets_sent": result.data_packets_sent,
        "drops": result.drops,
        "loss_rate": result.loss_rate,
    }
    if obs is not None:
        obs.close()
    if digest_sink is not None:
        value["trace_digest"] = digest_sink.digest()
        value["trace_records"] = digest_sink.records
    if memory_sink is not None:
        from repro.obs.analyze import analyze_records

        analysis = analyze_records(memory_sink.records)
        value["analysis"] = {
            "flows": {str(flow): report.summary()
                      for flow, report in analysis.flows.items()},
            "findings": [f.to_dict() for f in analysis.findings],
        }
    return value


@register("topo_flow")
def run_topo_flow_job(params: Mapping[str, Any]) -> Dict[str, Any]:
    """One seeded download over an embedded topogen scenario."""
    from repro.experiments.runner import run_topo_flow

    return run_topo_flow(
        params["topo"], params["cc"], params["size_bytes"],
        seed=params["seed"],
        cross_load=params.get("cross_load", 1.0),
        cross_cc=params.get("cross_cc", "cubic"))


@register("stability")
def run_stability_job(params: Mapping[str, Any]) -> Dict[str, Any]:
    """One seeded Table-1 run: a large flow vs twelve small flows."""
    from repro.experiments.runner import run_local_testbed
    from repro.workloads.flows import stability_workload
    from repro.workloads.scenarios import LocalTestbedConfig

    config = LocalTestbedConfig(
        bottleneck_mbps=params["bottleneck_mbps"],
        rtts=tuple(params["rtts"]),
        buffer_bdp=params["buffer_bdp"],
        reference_rtt=params["large_rtt"])
    small_cc = "cubic+suss" if params["suss"] else "cubic"
    specs = stability_workload(
        large_size=params["large_size"], large_cc=params["large_cc"],
        small_size=params["small_size"], small_cc=small_cc,
        n_small=params["n_small"])
    run = run_local_testbed(config, specs, until=params["horizon"],
                            seed=params["seed"], collect=False)
    n_small = params["n_small"]
    small_fcts = [run.fct_of(fid) for fid in range(2, 2 + n_small)]
    done = [f for f in small_fcts if f is not None]
    return {
        "large_cc": params["large_cc"],
        "seed": params["seed"],
        "horizon": params["horizon"],
        "large_fct": run.fct_of(1),
        "small_fct_mean": (sum(done) / len(done)) if done else None,
        "n_small_done": len(done),
        "n_small": n_small,
    }


@register("fairness_cell")
def run_fairness_cell_job(params: Mapping[str, Any]) -> Dict[str, Any]:
    """One Fig.-15 Jain-fairness cell (four staggered flows + late joiner)."""
    from repro.experiments.runner import run_fairness_cell

    return run_fairness_cell(
        params["rtt"], params["buffer_bdp"], params["cc"],
        bottleneck_mbps=params["bottleneck_mbps"],
        join_time=params["join_time"], horizon=params["horizon"],
        seed=params["seed"],
        recovery_threshold=params.get("recovery_threshold", 0.95),
        window=params.get("window", 2.0))


@register("flowsim_sweep")
def run_flowsim_sweep_job(params: Mapping[str, Any]) -> Dict[str, Any]:
    """One analytical fleet sweep (or one shard of a sharded sweep)."""
    from repro.flowsim.driver import (
        SweepConfig,
        run_sweep,
        shard_seed,
        sweep_to_value,
    )
    from repro.flowsim.model import PathParams

    seed = params["seed"]
    shard = params.get("shard")
    if shard is not None:
        seed = shard_seed(seed, shard)
    config = SweepConfig(
        path=PathParams(**params["path"]),
        flows=params["flows"],
        size_dist=params.get("size_dist", "campus"),
        arrival_rate=params.get("arrival_rate", 1000.0),
        seed=seed,
        models=tuple(params.get("models", ("csa00", "csa00+suss"))))
    value = sweep_to_value(run_sweep(config))
    value["seed"] = params["seed"]  # report the sweep seed, not the derived
    if shard is not None:
        value["shard"] = shard
        value["shards"] = params["shards"]
    return value


@contextlib.contextmanager
def _wall_clock_limit(seconds: Optional[float]) -> Iterator[None]:
    """Raise TimeoutError after ``seconds`` of wall-clock time (SIGALRM)."""
    if not seconds or not hasattr(signal, "SIGALRM"):
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(f"job exceeded wall-clock timeout of {seconds}s")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_job(payload: Mapping[str, Any], attempt: int,
                timeout: Optional[float] = None) -> Dict[str, Any]:
    """Worker entry: run one job, returning its result envelope.

    The envelope is ``{"value", "runtime", "worker", "resources"}`` —
    the value plus the execution evidence the run-telemetry layer turns
    into spans (worker pid, CPU/RSS/engine-event deltas around the job).
    Only ``value`` and ``runtime`` land in the result store.

    ``attempt`` is 1-based; fault-injection knobs compare against it so an
    injected crash/failure clears after the configured number of attempts.
    """
    from repro.obs import runtime as obs_runtime

    kind = payload["kind"]
    params = payload["params"]
    knobs = params.get("knobs") or {}
    if attempt <= knobs.get("_crash_attempts", 0):
        os._exit(13)  # hard worker death: exercises BrokenProcessPool recovery
    if attempt <= knobs.get("_fail_attempts", 0):
        raise RuntimeError(f"injected failure (attempt {attempt})")
    runner = JOB_KINDS.get(kind)
    if runner is None:
        raise KeyError(f"unknown job kind {kind!r}; "
                       f"known: {', '.join(sorted(JOB_KINDS))}")
    before = obs_runtime.sample_resources()
    start = time.perf_counter()
    with _wall_clock_limit(timeout):
        if knobs.get("_sleep"):
            time.sleep(knobs["_sleep"])
        value = runner(params)
    runtime = time.perf_counter() - start
    after = obs_runtime.sample_resources()
    return {"value": value, "runtime": runtime, "worker": os.getpid(),
            "resources": obs_runtime.resource_delta(before, after)}
