"""Declarative experiment jobs with stable content hashes.

A campaign is a list of :class:`JobSpec`\\ s.  Each spec is a pure-data
description of one simulation — the job *kind* (which registered runner
executes it, see :mod:`repro.campaign.jobs`) plus a JSON-serialisable
``params`` mapping (scenario fields, cc, size, seed, knobs).  Because the
spec is data, it can be shipped to a worker process, written next to its
result on disk, and hashed: :attr:`JobSpec.job_hash` is a SHA-256 over
the canonical JSON of ``(kind, params)``, so two specs collide exactly
when they describe the same simulation.  The display ``label`` is
excluded from the hash.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Union

from repro.core.units import MILLIS_PER_SECOND, Bytes, PerSecond, Seconds
from repro.workloads.scenarios import INTERNET_SCENARIOS, PathScenario
from repro.workloads.topo import TopologySpec, resolve_topo


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace, no NaN)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


@dataclass(frozen=True)
class JobSpec:
    """One schedulable simulation job.

    ``params`` must contain only JSON-serialisable values (numbers,
    strings, bools, None, lists, dicts) — it is the unit of caching and
    of inter-process transport.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    label: str = ""  # human-readable; not part of the identity hash

    @property
    def job_hash(self) -> str:
        payload = canonical_json({"kind": self.kind, "params": self.params})
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": self.params, "label": self.label}

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "JobSpec":
        return cls(kind=data["kind"], params=dict(data["params"]),
                   label=data.get("label", ""))


def _resolve_scenario(scenario: Union[str, PathScenario]) -> PathScenario:
    if isinstance(scenario, str):
        if scenario not in INTERNET_SCENARIOS:
            known = ", ".join(sorted(INTERNET_SCENARIOS))
            raise KeyError(f"unknown scenario {scenario!r}; known: {known}")
        return INTERNET_SCENARIOS[scenario]
    return scenario


def single_flow_job(scenario: Union[str, PathScenario], cc: str,
                    size_bytes: Bytes, seed: int = 0, *,
                    delayed_ack: bool = False, ecn: bool = False,
                    trace_digest: bool = False,
                    analyze: bool = False,
                    fidelity: str = "packet",
                    knobs: Optional[Mapping[str, Any]] = None) -> JobSpec:
    """Spec for one seeded download (the :func:`run_single_flow` unit).

    The scenario is embedded by value (its dataclass fields), so custom
    ``replace()``-derived scenarios hash and replay correctly.

    ``trace_digest=True`` makes the job run under a streaming
    :class:`repro.obs.DigestSink` and report the SHA-256 of its trace in
    the result (the determinism cross-check uses this to compare
    ``jobs=1`` against ``jobs=N`` runs).  ``analyze=True`` traces the
    run in memory, feeds it through :func:`repro.obs.analyze.analyze_records`,
    and attaches each flow's summary plus any anomaly findings to the
    result.  ``fidelity`` picks the tier: ``"packet"`` (the default
    event-level simulation) or ``"analytical"`` (the closed-form
    :mod:`repro.flowsim` model paired with ``cc``).  All three keys are
    added to ``params`` only when non-default, so pre-existing job
    hashes — and therefore cached results — are unaffected.
    """
    if fidelity not in ("packet", "analytical"):
        raise ValueError(f"unknown fidelity {fidelity!r}; "
                         f"known: packet, analytical")
    sc = _resolve_scenario(scenario)
    params: Dict[str, Any] = {
        "scenario": dataclasses.asdict(sc),
        "cc": cc,
        "size_bytes": int(size_bytes),
        "seed": int(seed),
        "delayed_ack": bool(delayed_ack),
        "ecn": bool(ecn),
    }
    if trace_digest:
        params["trace_digest"] = True
    if analyze:
        params["analyze"] = True
    if fidelity != "packet":
        params["fidelity"] = fidelity
    if knobs:
        params["knobs"] = dict(knobs)
    return JobSpec(kind="single_flow", params=params,
                   label=f"{sc.name} {cc} {size_bytes}B seed={seed}"
                         + ("" if fidelity == "packet" else f" [{fidelity}]"))


def topo_flow_job(scenario: Union[str, TopologySpec, Mapping[str, Any]],
                  cc: str, size_bytes: Bytes, seed: int = 0, *,
                  cross_load: float = 1.0, cross_cc: str = "cubic",
                  knobs: Optional[Mapping[str, Any]] = None) -> JobSpec:
    """Spec for one seeded download over a topogen scenario.

    The topology is embedded by value — its canonical dict — so the job
    hashes, ships to workers, and replays standalone; two jobs collide
    exactly when scenario + workload + seed match.  ``cross_load``
    scales the spec's declared cross-traffic plans (0 disables them; 1,
    the default, runs them as declared) and is added to ``params`` only
    when non-default so unscaled job hashes stay stable.
    """
    spec = resolve_topo(scenario)
    params: Dict[str, Any] = {
        "topo": spec.canonical(),
        "cc": cc,
        "size_bytes": int(size_bytes),
        "seed": int(seed),
    }
    if cross_load != 1.0:
        params["cross_load"] = float(cross_load)
    if cross_cc != "cubic":
        params["cross_cc"] = cross_cc
    if knobs:
        params["knobs"] = dict(knobs)
    return JobSpec(kind="topo_flow", params=params,
                   label=f"{spec.name} {cc} {size_bytes}B seed={seed}")


def flowsim_sweep_job(path: Mapping[str, Any], flows: int, *,
                      size_dist: str = "campus",
                      models: Sequence[str] = ("csa00", "csa00+suss"),
                      seed: int = 1, arrival_rate: PerSecond = 1000.0,
                      shard: int = 0, shards: int = 1,
                      knobs: Optional[Mapping[str, Any]] = None) -> JobSpec:
    """Spec for one analytical fleet sweep (the :mod:`repro.flowsim` tier).

    ``path`` is the field mapping of a
    :class:`repro.flowsim.model.PathParams` (``dataclasses.asdict`` of
    one, or a hand-written dict) — embedded by value like scenarios so
    the job hashes and replays standalone.  Million-flow sweeps shard
    like any other campaign work: ``shards > 1`` splits ``flows`` into
    near-equal pieces whose size streams are derived per shard from the
    sweep seed, so the union of shard fleets is a deterministic function
    of ``(seed, shards)`` and results merge with
    :func:`repro.flowsim.driver.merge_sweep_values`.  The shard keys are
    added to ``params`` only when sharded, so unsharded sweep hashes
    stay stable.
    """
    if flows <= 0:
        raise ValueError("flows must be positive")
    if not 0 <= shard < shards:
        raise ValueError("need 0 <= shard < shards")
    base = flows // shards
    shard_flows = base + (1 if shard < flows % shards else 0)
    params: Dict[str, Any] = {
        "path": dict(path),
        "flows": int(shard_flows),
        "size_dist": size_dist,
        "models": list(models),
        "seed": int(seed),
        "arrival_rate": float(arrival_rate),
    }
    if shards > 1:
        params["shard"] = int(shard)
        params["shards"] = int(shards)
    if knobs:
        params["knobs"] = dict(knobs)
    shard_tag = f" shard {shard + 1}/{shards}" if shards > 1 else ""
    return JobSpec(kind="flowsim_sweep", params=params,
                   label=(f"flowsim {size_dist} x{shard_flows} "
                          f"seed={seed}{shard_tag}"))


def stability_job(large_cc: str, buffer_bdp: float, large_rtt: Seconds,
                  suss: bool, large_size: Bytes, small_size: Bytes, n_small: int,
                  bottleneck_mbps: float, horizon: Seconds, seed: int,
                  rtts: Sequence[Seconds], *,
                  knobs: Optional[Mapping[str, Any]] = None) -> JobSpec:
    """Spec for one seeded Table-1 stability run (large flow + small flows)."""
    params: Dict[str, Any] = {
        "large_cc": large_cc,
        "buffer_bdp": float(buffer_bdp),
        "large_rtt": float(large_rtt),
        "suss": bool(suss),
        "large_size": int(large_size),
        "small_size": int(small_size),
        "n_small": int(n_small),
        "bottleneck_mbps": float(bottleneck_mbps),
        "horizon": float(horizon),
        "seed": int(seed),
        "rtts": [float(r) for r in rtts],
    }
    if knobs:
        params["knobs"] = dict(knobs)
    suss_tag = "suss-on" if suss else "suss-off"
    return JobSpec(kind="stability", params=params,
                   label=(f"table1 {large_cc} buf={buffer_bdp} "
                          f"rtt={large_rtt * MILLIS_PER_SECOND:.0f}ms {suss_tag} "
                          f"seed={seed}"))


def fairness_job(rtt: Seconds, buffer_bdp: float, cc: str, *,
                 bottleneck_mbps: float = 50.0, join_time: Seconds = 16.0,
                 horizon: Seconds = 40.0, seed: int = 0,
                 recovery_threshold: float = 0.95, window: float = 2.0,
                 knobs: Optional[Mapping[str, Any]] = None) -> JobSpec:
    """Spec for one Fig.-15 fairness cell (four flows plus a late joiner)."""
    params: Dict[str, Any] = {
        "rtt": float(rtt),
        "buffer_bdp": float(buffer_bdp),
        "cc": cc,
        "bottleneck_mbps": float(bottleneck_mbps),
        "join_time": float(join_time),
        "horizon": float(horizon),
        "seed": int(seed),
        "recovery_threshold": float(recovery_threshold),
        "window": float(window),
    }
    if knobs:
        params["knobs"] = dict(knobs)
    return JobSpec(kind="fairness_cell", params=params,
                   label=(f"fig15 {cc} rtt={rtt * MILLIS_PER_SECOND:.0f}ms "
                          f"buf={buffer_bdp} seed={seed}"))
