"""Fan jobs out across worker processes; collect deterministic results.

The scheduler is the only stateful piece of the campaign subsystem.  Its
contract:

* **Deterministic ordering** — results come back in spec order whatever
  the completion order, so a campaign's output is identical at any
  ``jobs`` level (each job is a self-contained seeded simulation).
* **Caching** — with a :class:`~repro.campaign.store.ResultStore`, hits
  are returned without touching the pool and misses are persisted on
  success; an interrupted campaign resumes by simply re-running it.
* **Fault tolerance** — a job that raises is retried up to ``retries``
  times; a *worker crash* (the pool breaks) requeues every in-flight job
  against a fresh pool, with the same per-job attempt bound; per-job
  wall-clock timeouts are enforced worker-side via ``SIGALRM``.
* ``jobs <= 1`` runs inline in this process (no pool, no fork cost) and
  must produce byte-identical summaries to any parallel run.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.jobs import execute_job
from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import JobSpec
from repro.campaign.store import ResultStore
from repro.obs.runtime import RunTelemetry


@dataclass
class CampaignResult:
    """Outcome of one job: value on success, error string on failure."""

    spec: JobSpec
    status: str  # "ok" | "failed"
    value: Optional[Dict[str, Any]]
    error: Optional[str]
    attempts: int
    runtime: float
    cached: bool

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def campaign_stats(results: Sequence[CampaignResult]) -> Dict[str, int]:
    """Aggregate counts the way the CLI and CI smoke test report them."""
    executed = sum(1 for r in results if r.ok and not r.cached)
    cached = sum(1 for r in results if r.cached)
    failed = sum(1 for r in results if not r.ok)
    return {"total": len(results), "executed": executed,
            "cached": cached, "failed": failed}


def collect_values(results: Sequence[CampaignResult]) -> List[Dict[str, Any]]:
    """Values in spec order; raises on the first failed job."""
    values = []
    for result in results:
        if not result.ok:
            raise RuntimeError(
                f"campaign job failed after {result.attempts} attempt(s): "
                f"{result.spec.label or result.spec.kind}: {result.error}")
        values.append(result.value)
    return values


def run_campaign(specs: Iterable[JobSpec], *, jobs: int = 1,
                 store: Optional[ResultStore] = None,
                 timeout: Optional[float] = None, retries: int = 2,
                 progress: Optional[ProgressReporter] = None,
                 telemetry: Optional[RunTelemetry] = None
                 ) -> List[CampaignResult]:
    """Run every spec; return one :class:`CampaignResult` per spec, in order.

    With a :class:`~repro.obs.runtime.RunTelemetry` attached, every
    attempt outcome (cache hit, success, retry, terminal failure)
    becomes a span with queue-wait / exec-time / worker attribution, and
    the spec-ordered results are handed to ``telemetry.complete`` for
    run-ledger assembly.  Telemetry never alters scheduling decisions.
    """
    spec_list = list(specs)
    reporter = progress or ProgressReporter(stream=None)
    reporter.start(len(spec_list), jobs=max(jobs, 1))
    if telemetry is not None:
        telemetry.start(len(spec_list), workers=max(jobs, 1))
    results: List[Optional[CampaignResult]] = [None] * len(spec_list)

    pending: List[int] = []
    for index, spec in enumerate(spec_list):
        record = store.get(spec.job_hash) if store is not None else None
        if record is not None:
            results[index] = CampaignResult(
                spec=spec, status="ok", value=record["value"], error=None,
                attempts=0, runtime=record.get("runtime", 0.0), cached=True)
            reporter.job_done(spec.label or spec.kind, "ok",
                              results[index].runtime, cached=True,
                              attempts=0, job_hash=spec.job_hash)
            if telemetry is not None:
                telemetry.record_span(
                    spec.job_hash, spec.kind, spec.label or spec.kind,
                    status="ok", cached=True)
        else:
            pending.append(index)

    if pending:
        runner = _run_inline if jobs <= 1 else _run_pool
        runner(spec_list, pending, results, jobs, store, timeout, retries,
               reporter, telemetry)
    if telemetry is not None:
        telemetry.complete(results)
    reporter.finish()
    return results  # type: ignore[return-value]  # every slot is filled


# ----------------------------------------------------------------------
def _finish(spec_list: List[JobSpec], results: List[Optional[CampaignResult]],
            store: Optional[ResultStore], reporter: ProgressReporter,
            telemetry: Optional[RunTelemetry], index: int, status: str,
            value: Optional[Dict[str, Any]], error: Optional[str],
            attempts: int, runtime: float,
            worker: Optional[int] = None, queue_wait: float = 0.0,
            resources: Optional[Dict[str, Any]] = None) -> None:
    spec = spec_list[index]
    results[index] = CampaignResult(spec=spec, status=status, value=value,
                                    error=error, attempts=attempts,
                                    runtime=runtime, cached=False)
    if status == "ok" and store is not None:
        store.put(spec.job_hash, {"spec": spec.to_json(), "value": value,
                                  "runtime": runtime, "attempts": attempts})
    reporter.job_done(spec.label or spec.kind, status, runtime, error=error,
                      attempts=attempts, job_hash=spec.job_hash)
    if telemetry is not None:
        telemetry.record_span(
            spec.job_hash, spec.kind, spec.label or spec.kind,
            status=status, attempt=attempts, worker=worker,
            queue_wait=queue_wait, exec_time=runtime, error=error,
            resources=resources)


def _retry(spec_list: List[JobSpec], reporter: ProgressReporter,
           telemetry: Optional[RunTelemetry], index: int, attempt: int,
           elapsed: float, error: str) -> None:
    """Narrate one failed-but-retryable attempt to every observer."""
    spec = spec_list[index]
    reporter.job_retry(spec.label or spec.kind, elapsed, error=error)
    if telemetry is not None:
        telemetry.record_span(
            spec.job_hash, spec.kind, spec.label or spec.kind,
            status="retry", attempt=attempt, exec_time=elapsed, error=error)


def _run_inline(spec_list, pending, results, jobs, store, timeout, retries,
                reporter, telemetry) -> None:
    for index in pending:
        payload = spec_list[index].to_json()
        attempts = 0
        last_error = None
        while attempts <= retries:
            attempts += 1
            began = time.monotonic()
            try:
                out = execute_job(payload, attempts, timeout)
            except Exception as exc:  # noqa: BLE001 — worker faults are data
                last_error = f"{type(exc).__name__}: {exc}"
                if attempts <= retries:
                    _retry(spec_list, reporter, telemetry, index, attempts,
                           time.monotonic() - began, last_error)
            else:
                _finish(spec_list, results, store, reporter, telemetry,
                        index, "ok", out["value"], None, attempts,
                        out["runtime"], worker=out.get("worker"),
                        resources=out.get("resources"))
                break
        else:
            _finish(spec_list, results, store, reporter, telemetry, index,
                    "failed", None, last_error, attempts, 0.0)


def _run_pool(spec_list, pending, results, jobs, store, timeout, retries,
              reporter, telemetry) -> None:
    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
    else:  # pragma: no cover — non-POSIX fallback
        ctx = multiprocessing.get_context()
    queue = deque(pending)
    attempts: Dict[int, int] = {index: 0 for index in pending}
    executor: Optional[ProcessPoolExecutor] = None
    in_flight: Dict[Future, Tuple[int, float]] = {}

    def retry_or_fail(index: int, error: str, elapsed: float) -> None:
        if attempts[index] <= retries:
            _retry(spec_list, reporter, telemetry, index, attempts[index],
                   elapsed, error)
            queue.append(index)
        else:
            _finish(spec_list, results, store, reporter, telemetry, index,
                    "failed", None, error, attempts[index], 0.0)

    try:
        while queue or in_flight:
            if executor is None:
                executor = ProcessPoolExecutor(max_workers=jobs,
                                               mp_context=ctx)
            # Keep the pool saturated with a small overcommit so workers
            # never idle between waits.
            while queue and len(in_flight) < 2 * jobs:
                index = queue.popleft()
                attempts[index] += 1
                future = executor.submit(execute_job,
                                         spec_list[index].to_json(),
                                         attempts[index], timeout)
                in_flight[future] = (index, time.monotonic())
            done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
            pool_broken = False
            for future in done:
                index, submitted = in_flight.pop(future)
                elapsed = time.monotonic() - submitted
                try:
                    out = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    retry_or_fail(index, "worker process crashed", elapsed)
                except Exception as exc:  # noqa: BLE001
                    retry_or_fail(index, f"{type(exc).__name__}: {exc}",
                                  elapsed)
                else:
                    # Submit-to-collect minus worker-side execution is
                    # the span's queue wait (clamped: clock domains are
                    # the parent's monotonic vs the worker's
                    # perf_counter, so tiny negatives are possible).
                    _finish(spec_list, results, store, reporter, telemetry,
                            index, "ok", out["value"], None, attempts[index],
                            out["runtime"], worker=out.get("worker"),
                            queue_wait=max(elapsed - out["runtime"], 0.0),
                            resources=out.get("resources"))
            if pool_broken:
                # The whole pool is dead: every other in-flight job is
                # doomed too.  Requeue them (bounded by the same per-job
                # attempt budget) and start a fresh pool.
                for future, (index, submitted) in list(in_flight.items()):
                    retry_or_fail(index, "worker pool broke mid-job",
                                  time.monotonic() - submitted)
                in_flight.clear()
                executor.shutdown(wait=False, cancel_futures=True)
                executor = None
    finally:
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
