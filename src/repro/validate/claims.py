"""Declarative registry of the paper's checkable claims.

A :class:`Claim` encodes one assertion from the SUSS paper's evaluation
as data: which experiment harness backs it, how its baseline and
treatment arms expand into multi-seed :class:`~repro.campaign.spec.JobSpec`
fan-outs, which metric each job result contributes, in which direction
the treatment is supposed to win, and by how much.  The replication
driver (:mod:`repro.validate.driver`) turns claims into campaign jobs
and folds the results into verdicts.

Claims never run anything at import time; they only *describe*.  Each
experiment harness lists the claims that cover it in a module-level
``CLAIM_IDS`` tuple, and ``tests/test_validate_claims.py`` asserts both
directions of that binding so the registry and the harnesses cannot
drift apart.

Modes: ``quick`` uses scaled-down workloads and few seeds (the PR smoke
gate, under two minutes cold); ``full`` uses paper-scale settings (the
scheduled CI job).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.campaign.spec import (
    JobSpec,
    fairness_job,
    single_flow_job,
    stability_job,
    topo_flow_job,
)
from repro.experiments.fig16_stability_trace import PAIR_RTTS
from repro.workloads.flows import MB
from repro.workloads.scenarios import FIG13_SCENARIO, FIG14_SCENARIO

MODES = ("quick", "full")

#: statistical-test families a claim can gate on
KINDS = ("improvement", "non_regression")

#: which way the metric is better: smaller ("lower") or larger ("higher")
DIRECTIONS = ("lower", "higher")

#: effect scale: "relative" divides by the baseline mean, "absolute" does not
EFFECTS = ("relative", "absolute")


@dataclass(frozen=True)
class Claim:
    """One checkable paper assertion, bound to an experiment harness.

    ``build_arms(mode, base_seed)`` expands to ``{"baseline": [specs],
    "treatment": [specs]}``; ``extract(value)`` pulls this claim's scalar
    metric out of one job-result dict (the same extractor serves both
    arms).  ``threshold`` is the minimum improvement (``improvement``
    kind) or the maximum tolerated regression (``non_regression`` kind),
    on the ``effect`` scale.
    """

    id: str
    title: str
    paper: str                  # paper anchor, e.g. "Fig. 11/12"
    harness: str                # repro.experiments module this validates
    kind: str
    direction: str
    effect: str
    threshold: float
    build_arms: Callable[[str, int], Dict[str, List[JobSpec]]] = field(
        compare=False, repr=False)
    extract: Callable[[Mapping[str, Any]], float] = field(
        compare=False, repr=False)
    alpha: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown claim kind {self.kind!r}")
        if self.direction not in DIRECTIONS:
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.effect not in EFFECTS:
            raise ValueError(f"unknown effect scale {self.effect!r}")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be strictly inside (0, 1)")


CLAIMS: Dict[str, Claim] = {}


def register_claim(claim: Claim) -> Claim:
    """Add ``claim`` to the registry; duplicate ids are a bug."""
    if claim.id in CLAIMS:
        raise ValueError(f"duplicate claim id {claim.id!r}")
    CLAIMS[claim.id] = claim
    return claim


def get_claim(claim_id: str) -> Claim:
    if claim_id not in CLAIMS:
        known = ", ".join(sorted(CLAIMS))
        raise KeyError(f"unknown claim {claim_id!r}; known: {known}")
    return CLAIMS[claim_id]


def iter_claims(ids: Optional[Sequence[str]] = None) -> List[Claim]:
    """Claims in registry (id) order, optionally restricted to ``ids``."""
    if ids is None:
        return [CLAIMS[cid] for cid in sorted(CLAIMS)]
    return [get_claim(cid) for cid in ids]


def _mode_count(mode: str, quick: int, full: int) -> int:
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; known: {', '.join(MODES)}")
    return quick if mode == "quick" else full


# ----------------------------------------------------------------------
# Fig. 11/12 — FCT vs flow size (Tokyo scenarios).

def _fct_claim(claim_id: str, title: str, *, scenario: str, size: int,
               baseline_cc: str, treatment_cc: str, kind: str,
               threshold: float, paper: str = "Fig. 11/12",
               harness: str = "fig11_12_fct",
               quick_seeds: int = 5, full_seeds: int = 15) -> Claim:
    def build_arms(mode: str, base_seed: int) -> Dict[str, List[JobSpec]]:
        n = _mode_count(mode, quick_seeds, full_seeds)
        return {
            "baseline": [single_flow_job(scenario, baseline_cc, size,
                                         seed=base_seed + i)
                         for i in range(n)],
            "treatment": [single_flow_job(scenario, treatment_cc, size,
                                          seed=base_seed + i)
                          for i in range(n)],
        }

    return register_claim(Claim(
        id=claim_id, title=title, paper=paper, harness=harness, kind=kind,
        direction="lower", effect="relative", threshold=threshold,
        build_arms=build_arms, extract=lambda value: value["fct"]))


_fct_claim(
    "fig11-fct-wired-2mb",
    "SUSS improves mean FCT over CUBIC by >= 15% for 2 MB flows on the "
    "Tokyo fiber path (paper: > 20%)",
    scenario="google-tokyo/wired", size=2 * MB,
    baseline_cc="cubic", treatment_cc="cubic+suss",
    kind="improvement", threshold=0.15)

_fct_claim(
    "fig11-fct-5g-2mb",
    "SUSS improves mean FCT over CUBIC by >= 15% for 2 MB flows on the "
    "Tokyo 5G path (paper: > 20%)",
    scenario="google-tokyo/5g", size=2 * MB,
    baseline_cc="cubic", treatment_cc="cubic+suss",
    kind="improvement", threshold=0.15)

_fct_claim(
    "fig11-fct-wifi-1mb",
    "SUSS improves mean FCT over CUBIC by >= 10% for 1 MB flows on the "
    "Tokyo WiFi path",
    scenario="google-tokyo/wifi", size=1 * MB,
    baseline_cc="cubic", treatment_cc="cubic+suss",
    kind="improvement", threshold=0.10)

_fct_claim(
    "fig11-fct-vs-bbr-wired",
    "CUBIC+SUSS also beats BBR's mean FCT by >= 10% for 2 MB flows on "
    "the Tokyo fiber path",
    scenario="google-tokyo/wired", size=2 * MB,
    baseline_cc="bbr", treatment_cc="cubic+suss",
    kind="improvement", threshold=0.10)

_fct_claim(
    "fig12-fct-4g-no-regression",
    "SUSS never regresses mean FCT by more than 15% on the jittery Tokyo "
    "4G path (paper: 20-30% improvement, seed-dependent)",
    scenario="google-tokyo/4g", size=2 * MB,
    baseline_cc="cubic", treatment_cc="cubic+suss",
    kind="non_regression", threshold=0.15)


# ----------------------------------------------------------------------
# Fig. 13 — no impact on large flows (DC-to-DC).

def _fig13_claim() -> Claim:
    def build_arms(mode: str, base_seed: int) -> Dict[str, List[JobSpec]]:
        n = _mode_count(mode, 3, 5)
        size = 20 * MB if mode == "quick" else 60 * MB
        return {
            "baseline": [single_flow_job(FIG13_SCENARIO, "cubic", size,
                                         seed=base_seed + i)
                         for i in range(n)],
            "treatment": [single_flow_job(FIG13_SCENARIO, "cubic+suss",
                                          size, seed=base_seed + i)
                          for i in range(n)],
        }

    return register_claim(Claim(
        id="fig13-large-flow-no-regression",
        title="SUSS never slows a large DC-to-DC flow (paper: improvement "
              "tapers to negligible, never negative)",
        paper="Fig. 13", harness="fig13_large_flow",
        kind="non_regression", direction="lower", effect="relative",
        threshold=0.05, build_arms=build_arms,
        extract=lambda value: value["fct"]))


_fig13_claim()


# ----------------------------------------------------------------------
# Fig. 14 — packet loss (Oracle London -> 5G Sweden).

def _fig14_claim() -> Claim:
    def build_arms(mode: str, base_seed: int) -> Dict[str, List[JobSpec]]:
        n = _mode_count(mode, 5, 15)
        return {
            "baseline": [single_flow_job(FIG14_SCENARIO, "cubic", 2 * MB,
                                         seed=base_seed + i)
                         for i in range(n)],
            "treatment": [single_flow_job(FIG14_SCENARIO, "cubic+suss",
                                          2 * MB, seed=base_seed + i)
                          for i in range(n)],
        }

    return register_claim(Claim(
        id="fig14-loss-no-regression",
        title="SUSS pacing does not increase the packet-loss rate of a "
              "2 MB flow by more than 0.2% absolute (paper: SUSS loses "
              "strictly less)",
        paper="Fig. 14", harness="fig14_loss",
        kind="non_regression", direction="lower", effect="absolute",
        threshold=0.002, build_arms=build_arms,
        extract=lambda value: value["loss_rate"]))


_fig14_claim()


# ----------------------------------------------------------------------
# Table 1 — stability: 12 small SUSS flows vs one large flow.

def _stability_arms(mode: str, base_seed: int) -> Dict[str, List[JobSpec]]:
    n = _mode_count(mode, 3, 5)
    if mode == "quick":
        large_size, bottleneck, horizon = 40 * MB, 20.0, 30.0
    else:
        large_size, bottleneck, horizon = 150 * MB, 50.0, 60.0
    rtt, buffer_bdp = 0.05, 1.0

    def spec(suss: bool, seed: int) -> JobSpec:
        return stability_job("cubic", buffer_bdp, rtt, suss, large_size,
                             2 * MB, 12, bottleneck, horizon, seed,
                             (rtt,) + PAIR_RTTS[1:])

    return {
        "baseline": [spec(False, base_seed + i) for i in range(n)],
        "treatment": [spec(True, base_seed + i) for i in range(n)],
    }


def _stability_large_fct(value: Mapping[str, Any]) -> float:
    # An unfinished large flow counts as the horizon: conservative, and
    # keeps the extractor total instead of crashing the fold.
    large = value["large_fct"]
    return large if large is not None else float(value["horizon"])


def _stability_small_fct(value: Mapping[str, Any]) -> float:
    mean = value["small_fct_mean"]
    return mean if mean is not None else float(value["horizon"])


register_claim(Claim(
    id="table1-small-flow-cubic",
    title="With a large CUBIC flow occupying the bottleneck, turning SUSS "
          "on improves mean small-flow FCT by >= 10% (paper Table 1: "
          "~32% average for CUBIC)",
    paper="Table 1", harness="table1_stability",
    kind="improvement", direction="lower", effect="relative",
    threshold=0.10, build_arms=_stability_arms,
    extract=_stability_small_fct))

register_claim(Claim(
    id="table1-large-flow-cubic",
    title="Turning SUSS on for the small flows does not slow the large "
          "CUBIC flow by more than 5% (paper Table 1: no meaningful "
          "large-flow regression)",
    paper="Table 1", harness="table1_stability",
    kind="non_regression", direction="lower", effect="relative",
    threshold=0.05, build_arms=_stability_arms,
    extract=_stability_large_fct))


# ----------------------------------------------------------------------
# Fig. 15 — fairness convergence after a fifth flow joins.

def _fairness_arms(mode: str, base_seed: int) -> Dict[str, List[JobSpec]]:
    n = _mode_count(mode, 3, 5)
    if mode == "quick":
        kwargs = dict(bottleneck_mbps=20.0, join_time=12.0, horizon=30.0)
    else:
        kwargs = dict(bottleneck_mbps=50.0, join_time=16.0, horizon=40.0)
    rtt, buffer_bdp = 0.05, 1.0
    return {
        "baseline": [fairness_job(rtt, buffer_bdp, "cubic",
                                  seed=base_seed + i, **kwargs)
                     for i in range(n)],
        "treatment": [fairness_job(rtt, buffer_bdp, "cubic+suss",
                                   seed=base_seed + i, **kwargs)
                      for i in range(n)],
    }


def _fairness_recovery(value: Mapping[str, Any]) -> float:
    # Never recovering within the horizon counts as the whole post-join
    # window (conservative, same clamp the Fig. 15 benchmark applies).
    recovery = value["recovery_time"]
    if recovery is None:
        return value["horizon"] - value["join_time"]
    return recovery


register_claim(Claim(
    id="fig15-fairness-recovery",
    title="After a fifth flow joins, Jain fairness recovers >= 20% faster "
          "with SUSS on (paper Fig. 15: markedly faster recovery)",
    paper="Fig. 15", harness="fig15_fairness",
    kind="improvement", direction="lower", effect="relative",
    threshold=0.20, build_arms=_fairness_arms,
    extract=_fairness_recovery))

# ----------------------------------------------------------------------
# Topogen scenario classes — SUSS beyond the dumbbell (repro.net.topogen).

def _topo_claim(claim_id: str, title: str, *, scenario: str, kind: str,
                threshold: float, size: int = 2 * MB,
                cross_load: float = 1.0,
                quick_seeds: int = 3, full_seeds: int = 8) -> Claim:
    def build_arms(mode: str, base_seed: int) -> Dict[str, List[JobSpec]]:
        n = _mode_count(mode, quick_seeds, full_seeds)
        flow_size = size if mode == "quick" else 2 * size
        return {
            "baseline": [topo_flow_job(scenario, "cubic", flow_size,
                                       seed=base_seed + i,
                                       cross_load=cross_load)
                         for i in range(n)],
            "treatment": [topo_flow_job(scenario, "cubic+suss", flow_size,
                                        seed=base_seed + i,
                                        cross_load=cross_load)
                          for i in range(n)],
        }

    return register_claim(Claim(
        id=claim_id, title=title, paper="Sec. 7 (beyond the testbed)",
        harness="topo_suite", kind=kind,
        direction="lower", effect="relative", threshold=threshold,
        build_arms=build_arms, extract=lambda value: value["fct"]))


_topo_claim(
    "topo-lfn-fct-improvement",
    "On a long-fat/satellite path (560 ms RTT, 50 Mbps) SUSS improves a "
    "2 MB flow's FCT by >= 15% — the scenario class where compressed "
    "slow start saves the most rounds",
    scenario="lfn-satellite", kind="improvement", threshold=0.15)

_topo_claim(
    "topo-parking-lot-no-harm",
    "On a 3-hop parking lot with per-hop web cross traffic, SUSS does "
    "not regress foreground FCT by more than 10%",
    scenario="parking-lot-3", kind="non_regression", threshold=0.10,
    size=1 * MB)

_topo_claim(
    "topo-multi-bottleneck-no-harm",
    "Crossing two distinct bottlenecks (20 and 15 Mbps hops) with RPC "
    "cross traffic, SUSS does not regress FCT by more than 10%",
    scenario="multi-bottleneck-4", kind="non_regression", threshold=0.10,
    size=1 * MB)

_topo_claim(
    "topo-mesh-no-harm",
    "On an SPF-routed diamond where a second pair shares only the "
    "diamond's edges, SUSS does not regress FCT by more than 10%",
    scenario="mesh-diamond", kind="non_regression", threshold=0.10,
    size=1 * MB)


register_claim(Claim(
    id="fig15-fairness-floor",
    title="The post-join Jain-fairness floor is >= 5% higher with SUSS on "
          "(the join dip is shallower)",
    paper="Fig. 15", harness="fig15_fairness",
    kind="improvement", direction="higher", effect="relative",
    threshold=0.05, build_arms=_fairness_arms,
    extract=lambda value: value["min_fairness_after_join"]))
