"""``repro.validate`` — statistical paper-fidelity and regression gate.

The subsystem answers one question with evidence: *does this tree still
reproduce the paper's claims?*  It has four pieces:

* :mod:`~repro.validate.stats` — pure-stdlib estimators (t and BCa
  bootstrap CIs, Mann-Whitney U, permutation test, Cliff's delta), all
  deterministic via seeded streams;
* :mod:`~repro.validate.claims` — the declarative registry binding each
  paper assertion to an experiment harness, seed counts, and a
  calibrated tolerance;
* :mod:`~repro.validate.driver` — expands claims into cached
  :mod:`repro.campaign` jobs and folds the multi-seed results into
  PASS / FAIL / INCONCLUSIVE verdicts;
* :mod:`~repro.validate.baseline` — recorded metric distributions for
  drift detection across code versions, plus the wall-clock perf gate
  over ``benchmarks/baseline.json``.

Entry point: ``repro validate`` (see :mod:`repro.cli`), or
:func:`run_validation` directly.
"""

from repro.validate.baseline import (
    BaselineStore,
    check_perf,
    detect_drift,
    load_perf_baseline,
    measure_core_speed,
    resolve_fingerprint,
)
from repro.validate.claims import (
    CLAIMS,
    MODES,
    Claim,
    get_claim,
    iter_claims,
    register_claim,
)
from repro.validate.driver import fold_claim, plan_jobs, run_validation
from repro.validate.report import (
    FAIL,
    INCONCLUSIVE,
    PASS,
    ClaimVerdict,
    PerfVerdict,
    ValidationReport,
    load_report,
    report_json,
)

__all__ = [
    "BaselineStore",
    "CLAIMS",
    "Claim",
    "ClaimVerdict",
    "FAIL",
    "INCONCLUSIVE",
    "MODES",
    "PASS",
    "PerfVerdict",
    "ValidationReport",
    "check_perf",
    "detect_drift",
    "fold_claim",
    "get_claim",
    "iter_claims",
    "load_perf_baseline",
    "load_report",
    "measure_core_speed",
    "plan_jobs",
    "register_claim",
    "report_json",
    "resolve_fingerprint",
    "run_validation",
]
