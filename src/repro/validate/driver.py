"""Expand claims into campaign jobs; fold results into verdicts.

:func:`run_validation` is the subsystem's engine.  It takes a set of
:class:`~repro.validate.claims.Claim`\\ s, expands each into its
baseline/treatment :class:`~repro.campaign.spec.JobSpec` arms for the
requested mode, dedupes the specs by content hash (several claims share
jobs — e.g. both Table-1 claims read the same stability runs), executes
them as one :func:`~repro.campaign.run_campaign` (so the result cache,
parallel fan-out, retries, and resume all come for free), and folds the
per-seed metric samples into one :class:`~repro.validate.report.ClaimVerdict`
per claim.

Verdict policy
--------------

``improvement`` claims (the paper says SUSS makes metric X better by at
least T):

* **PASS** — the point improvement clears T *and* a one-sided
  Mann-Whitney test says the treatment arm is better at ``alpha``;
* **FAIL** — the whole bootstrap CI sits below T: the claimed effect is
  confidently absent (this is what an injected regression produces —
  identical arms give a degenerate CI at 0);
* **INCONCLUSIVE** — anything in between (e.g. right effect size but
  too few seeds for significance).

``non_regression`` claims (the paper says SUSS does not make metric X
worse by more than T):

* **PASS** — the point effect is no worse than ``-T``;
* **FAIL** — it is worse than ``-T`` *and* the one-sided test confirms
  the regression at ``alpha``;
* **INCONCLUSIVE** — worse than ``-T`` but not statistically confirmed.

All randomness (bootstrap resampling) is drawn from
``derive_seed(base_seed, "validate.boot:<claim id>")`` streams, so a
report is byte-identical across runs and across ``--jobs`` levels.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Union

from repro.campaign import (
    JobSpec,
    ProgressReporter,
    ResultStore,
    code_fingerprint,
    run_campaign,
)
from repro.obs.runtime import RunTelemetry
from repro.sim.rng import derive_seed
from repro.validate.claims import Claim, get_claim, iter_claims
from repro.validate.report import (
    FAIL,
    INCONCLUSIVE,
    PASS,
    ClaimVerdict,
    ValidationReport,
)
from repro.validate.stats import bootstrap_ci_bca, cliffs_delta, mann_whitney_u


def effect_statistic(claim: Claim):
    """The claim's improvement statistic over (baseline, treatment) arms.

    Positive always means "treatment better", whatever the metric's
    direction; ``relative`` effects are normalised by the baseline mean.
    """
    def stat(baseline: Sequence[float], treatment: Sequence[float]) -> float:
        mb = sum(baseline) / len(baseline)
        mt = sum(treatment) / len(treatment)
        gain = (mb - mt) if claim.direction == "lower" else (mt - mb)
        if claim.effect == "absolute":
            return gain
        return gain / mb if mb != 0.0 else 0.0
    return stat


def _decide(claim: Claim, improvement: float, ci_low: float, ci_high: float,
            p_better: float, p_worse: float) -> tuple:
    """Apply the verdict policy; returns ``(verdict, reason)``."""
    t = claim.threshold
    if claim.kind == "improvement":
        if improvement >= t and p_better <= claim.alpha:
            return PASS, (f"improvement {improvement:+.4g} clears the "
                          f"{t:+.4g} threshold and is significant "
                          f"(p={p_better:.4f} <= alpha={claim.alpha})")
        if ci_high < t:
            return FAIL, (f"the whole CI [{ci_low:+.4g}, {ci_high:+.4g}] "
                          f"sits below the {t:+.4g} threshold: the claimed "
                          f"effect is confidently absent")
        if improvement >= t:
            return INCONCLUSIVE, (
                f"improvement {improvement:+.4g} clears the {t:+.4g} "
                f"threshold but is not significant (p={p_better:.4f} > "
                f"alpha={claim.alpha}); more seeds needed")
        return INCONCLUSIVE, (
            f"improvement {improvement:+.4g} misses the {t:+.4g} threshold "
            f"but the CI reaches {ci_high:+.4g}; more seeds needed")
    # non_regression
    if improvement >= -t:
        return PASS, (f"effect {improvement:+.4g} is within the tolerated "
                      f"regression of {-t:+.4g}")
    if p_worse <= claim.alpha:
        return FAIL, (f"regression {improvement:+.4g} exceeds the "
                      f"{-t:+.4g} tolerance and is significant "
                      f"(p={p_worse:.4f} <= alpha={claim.alpha})")
    return INCONCLUSIVE, (
        f"regression {improvement:+.4g} exceeds the {-t:+.4g} tolerance "
        f"but is not significant (p={p_worse:.4f}); more seeds needed")


def fold_claim(claim: Claim, baseline: Sequence[float],
               treatment: Sequence[float], *, base_seed: int = 0,
               n_resamples: int = 1000,
               confidence: float = 0.95) -> ClaimVerdict:
    """Fold one claim's per-seed samples into a :class:`ClaimVerdict`."""
    if not baseline or not treatment:
        raise ValueError(f"claim {claim.id}: both arms need samples")
    stat = effect_statistic(claim)
    improvement = stat(baseline, treatment)
    rng = random.Random(derive_seed(base_seed, f"validate.boot:{claim.id}"))
    ci_low, ci_high = bootstrap_ci_bca(
        [baseline, treatment], stat, rng,
        n_resamples=n_resamples, confidence=confidence)
    better_side = "less" if claim.direction == "lower" else "greater"
    worse_side = "greater" if claim.direction == "lower" else "less"
    p_better = mann_whitney_u(treatment, baseline, better_side).p_value
    p_worse = mann_whitney_u(treatment, baseline, worse_side).p_value
    delta = cliffs_delta(treatment, baseline)
    verdict, reason = _decide(claim, improvement, ci_low, ci_high,
                              p_better, p_worse)
    return ClaimVerdict(
        claim_id=claim.id, title=claim.title, paper=claim.paper,
        kind=claim.kind, effect=claim.effect, direction=claim.direction,
        threshold=claim.threshold, verdict=verdict,
        improvement=improvement, ci_low=ci_low, ci_high=ci_high,
        confidence=confidence, p_better=p_better, p_worse=p_worse,
        cliffs_delta=delta, n_baseline=len(baseline),
        n_treatment=len(treatment),
        baseline_mean=sum(baseline) / len(baseline),
        treatment_mean=sum(treatment) / len(treatment),
        reason=reason,
        baseline_samples=tuple(baseline),
        treatment_samples=tuple(treatment))


def plan_jobs(claims: Sequence[Claim], mode: str, base_seed: int):
    """Expand claims into arms and a deduped, ordered spec list.

    Returns ``(plan, unique_specs)`` where ``plan`` is a list of
    ``(claim, arms)`` pairs and ``unique_specs`` keeps first-seen order
    (deterministic: claims iterate in id order).
    """
    plan = []
    unique: Dict[str, JobSpec] = {}
    for claim in claims:
        arms = claim.build_arms(mode, base_seed)
        for arm in ("baseline", "treatment"):
            if arm not in arms or not arms[arm]:
                raise ValueError(f"claim {claim.id}: build_arms must "
                                 f"return a non-empty {arm!r} arm")
        plan.append((claim, arms))
        for arm_specs in arms.values():
            for spec in arm_specs:
                unique.setdefault(spec.job_hash, spec)
    return plan, list(unique.values())


def run_validation(claim_ids: Optional[Sequence[Union[str, Claim]]] = None, *,
                   mode: str = "quick", base_seed: int = 0,
                   store: Optional[ResultStore] = None, jobs: int = 1,
                   timeout: Optional[float] = None, retries: int = 1,
                   progress: Optional[ProgressReporter] = None,
                   n_resamples: int = 1000, confidence: float = 0.95,
                   fingerprint: Optional[str] = None,
                   telemetry: Optional[RunTelemetry] = None
                   ) -> ValidationReport:
    """Validate ``claim_ids`` (default: every registered claim).

    Entries may be registered claim ids or :class:`Claim` instances
    (tests drive the driver with synthetic claims that never enter the
    registry).  Jobs shared between claims run once; a warm
    :class:`~repro.campaign.store.ResultStore` turns the whole run into
    pure cache hits with an identical report.
    """
    if claim_ids is None:
        claims = iter_claims()
    else:
        claims = [c if isinstance(c, Claim) else get_claim(c)
                  for c in claim_ids]
    plan, specs = plan_jobs(claims, mode, base_seed)
    results = run_campaign(specs, jobs=jobs, store=store, timeout=timeout,
                           retries=retries, progress=progress,
                           telemetry=telemetry)
    values: Dict[str, dict] = {}
    for result in results:
        if not result.ok:
            raise RuntimeError(
                f"validation job failed after {result.attempts} attempt(s): "
                f"{result.spec.label or result.spec.kind}: {result.error}")
        values[result.spec.job_hash] = result.value

    verdicts: List[ClaimVerdict] = []
    for claim, arms in plan:
        baseline = [claim.extract(values[s.job_hash])
                    for s in arms["baseline"]]
        treatment = [claim.extract(values[s.job_hash])
                     for s in arms["treatment"]]
        verdicts.append(fold_claim(claim, baseline, treatment,
                                   base_seed=base_seed,
                                   n_resamples=n_resamples,
                                   confidence=confidence))
    return ValidationReport(
        mode=mode, base_seed=base_seed,
        code_fingerprint=fingerprint or code_fingerprint(),
        verdicts=verdicts)
