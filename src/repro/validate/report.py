"""Validation verdicts and the :class:`ValidationReport` container.

The driver folds each claim's baseline/treatment samples into a
:class:`ClaimVerdict` — effect point estimate, bootstrap CI, one-sided
p-values, Cliff's delta, and a PASS / FAIL / INCONCLUSIVE call — and
collects them in a :class:`ValidationReport` that renders either as a
human narrative (``render_text``, mirroring
:meth:`repro.obs.analyze.report.TraceAnalysis.render_text`) or as
deterministic JSON (``to_dict`` + :func:`report_json`).

Determinism contract: nothing time- or machine-dependent goes into the
dict — no wall-clock runtimes, no cache-hit flags, no hostnames.  Two
runs with the same code, claims, mode, and seed must produce
byte-identical :func:`report_json` output, warm or cold cache.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

PASS = "PASS"
FAIL = "FAIL"
INCONCLUSIVE = "INCONCLUSIVE"

VERDICTS = (PASS, FAIL, INCONCLUSIVE)


@dataclass(frozen=True)
class ClaimVerdict:
    """The statistical outcome for one claim."""

    claim_id: str
    title: str
    paper: str
    kind: str                     # "improvement" | "non_regression"
    effect: str                   # "relative" | "absolute"
    direction: str                # "lower" | "higher"
    threshold: float
    verdict: str                  # PASS | FAIL | INCONCLUSIVE
    improvement: float            # point estimate on the effect scale
    ci_low: float
    ci_high: float
    confidence: float             # CI confidence level, e.g. 0.95
    p_better: float               # one-sided MW p: treatment better
    p_worse: float                # one-sided MW p: treatment worse
    cliffs_delta: float
    n_baseline: int
    n_treatment: int
    baseline_mean: float
    treatment_mean: float
    reason: str                   # one line explaining the call
    baseline_samples: Tuple[float, ...] = field(default=())
    treatment_samples: Tuple[float, ...] = field(default=())
    drift: Optional[Dict[str, Any]] = None   # set by --against

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "claim_id": self.claim_id,
            "title": self.title,
            "paper": self.paper,
            "kind": self.kind,
            "effect": self.effect,
            "direction": self.direction,
            "threshold": self.threshold,
            "verdict": self.verdict,
            "improvement": self.improvement,
            "ci": [self.ci_low, self.ci_high],
            "confidence": self.confidence,
            "p_better": self.p_better,
            "p_worse": self.p_worse,
            "cliffs_delta": self.cliffs_delta,
            "n_baseline": self.n_baseline,
            "n_treatment": self.n_treatment,
            "baseline_mean": self.baseline_mean,
            "treatment_mean": self.treatment_mean,
            "reason": self.reason,
            "baseline_samples": list(self.baseline_samples),
            "treatment_samples": list(self.treatment_samples),
        }
        if self.drift is not None:
            out["drift"] = self.drift
        return out


@dataclass(frozen=True)
class PerfVerdict:
    """Outcome of one benchmark metric checked against the perf baseline.

    Measured numbers are wall-clock and therefore non-deterministic;
    perf verdicts are reported in a separate section and never feed the
    byte-identical-JSON guarantee of the claims section (the CLI only
    includes them when ``--perf`` was requested).
    """

    metric: str
    baseline: float
    measured: float
    tolerance: float
    verdict: str
    reason: str
    #: display unit — "s" for durations, "x" for ratio metrics
    #: (e.g. classic_vs_fast_speedup)
    unit: str = "s"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "measured": self.measured,
            "tolerance": self.tolerance,
            "verdict": self.verdict,
            "reason": self.reason,
            "unit": self.unit,
        }


@dataclass
class ValidationReport:
    """Every claim verdict from one ``repro validate`` run."""

    mode: str
    base_seed: int
    code_fingerprint: str
    verdicts: List[ClaimVerdict]
    perf: List[PerfVerdict] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out = {v: 0 for v in VERDICTS}
        for verdict in self.verdicts:
            out[verdict.verdict] += 1
        for perf in self.perf:
            out[perf.verdict] += 1
        return out

    @property
    def worst(self) -> str:
        """FAIL beats INCONCLUSIVE beats PASS (for exit-code policy)."""
        counts = self.counts()
        if counts[FAIL]:
            return FAIL
        if counts[INCONCLUSIVE]:
            return INCONCLUSIVE
        return PASS

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "mode": self.mode,
            "base_seed": self.base_seed,
            "code_fingerprint": self.code_fingerprint,
            "counts": self.counts(),
            "overall": self.worst,
            "claims": [v.to_dict() for v in self.verdicts],
        }
        if self.perf:
            out["perf"] = [p.to_dict() for p in self.perf]
        return out

    def render_text(self) -> str:
        counts = self.counts()
        lines = [
            f"validation ({self.mode} mode, seed {self.base_seed}, "
            f"code {self.code_fingerprint[:16]}): "
            f"{len(self.verdicts)} claims — "
            f"{counts[PASS]} pass, {counts[FAIL]} fail, "
            f"{counts[INCONCLUSIVE]} inconclusive"
        ]
        for v in self.verdicts:
            lines.append("")
            lines.extend(render_verdict(v).splitlines())
        if self.perf:
            lines.append("")
            lines.append("performance gate:")
            for p in self.perf:
                lines.append(
                    f"  [{p.verdict}] {p.metric}: {p.measured:.4f}{p.unit} "
                    f"vs baseline {p.baseline:.4f}{p.unit} "
                    f"(tolerance {p.tolerance:.0%}) — {p.reason}")
        lines.append("")
        lines.append(f"overall: {self.worst}")
        return "\n".join(lines)


def _fmt_effect(value: float, effect: str) -> str:
    return f"{value:+.1%}" if effect == "relative" else f"{value:+.4g}"


def render_verdict(v: ClaimVerdict) -> str:
    """Human narrative for one claim, obs.analyze-style."""
    fmt = lambda x: _fmt_effect(x, v.effect)
    lines = [f"[{v.verdict}] {v.claim_id} ({v.paper})"]
    lines.append(f"  {v.title}")
    lines.append(
        f"  improvement {fmt(v.improvement)} "
        f"({v.confidence:.0%} CI {fmt(v.ci_low)} .. {fmt(v.ci_high)}), "
        f"threshold {fmt(v.threshold) if v.kind == 'improvement' else fmt(-v.threshold)}")
    lines.append(
        f"  baseline mean {v.baseline_mean:.6g} (n={v.n_baseline}) vs "
        f"treatment mean {v.treatment_mean:.6g} (n={v.n_treatment}); "
        f"p(better)={v.p_better:.4f}, p(worse)={v.p_worse:.4f}, "
        f"cliffs delta {v.cliffs_delta:+.2f}")
    lines.append(f"  {v.reason}")
    if v.drift is not None:
        d = v.drift
        lines.append(
            f"  drift vs baseline {d['fingerprint'][:16]}: "
            f"{'DRIFTED' if d['drifted'] else 'stable'} "
            f"(p={d['p_value']:.4f}, cliffs delta {d['cliffs_delta']:+.2f})")
    return "\n".join(lines)


def report_json(report: ValidationReport) -> str:
    """Canonical JSON rendering — byte-identical across same-seed runs."""
    return json.dumps(report.to_dict(), sort_keys=True, indent=2) + "\n"


def load_report(path: str) -> Dict[str, Any]:
    """Load a previously written ``report_json`` file as a plain dict."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
