"""Recorded baselines: metric distributions and a perf-regression gate.

Two kinds of baseline live here:

* **Claim baselines** — ``repro validate --record-baseline`` writes each
  claim's per-seed treatment samples to a content-addressed store
  (``<root>/<code fingerprint[:16]>/<claim id>.json``).  A later
  ``repro validate --against <root>`` re-runs the claims and flags any
  claim whose fresh treatment distribution has *drifted* from the
  recorded one — a two-sided seeded permutation test plus a Cliff's
  delta floor, so a real behaviour change fails loudly while resampling
  noise does not.  Drift flips the claim's verdict to FAIL.
* **Perf baselines** — ``benchmarks/baseline.json`` pins wall-clock
  numbers for the ``bench_core_speed`` micro-benchmarks.
  :func:`measure_core_speed` re-times the same three workloads inline
  and :func:`check_perf` compares against the recorded value with a
  per-metric tolerance (scalable via ``--perf-scale`` for noisy CI
  runners).  Perf timing is wall-clock and therefore exempt from the
  byte-identical-report guarantee; it lives in its own report section.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.sim.rng import derive_seed
from repro.validate.report import FAIL, PASS, PerfVerdict
from repro.validate.stats import cliffs_delta, permutation_test

#: Cliff's delta magnitude below which a "significant" drift is ignored
#: (protects near-degenerate distributions where one changed seed makes
#: the permutation test arbitrarily small).
DRIFT_DELTA_FLOOR = 0.5


class BaselineStore:
    """Per-claim treatment-sample distributions under a code fingerprint."""

    def __init__(self, root: os.PathLike, fingerprint: str):
        self.root = Path(root)
        self.fingerprint = fingerprint

    @property
    def generation_dir(self) -> Path:
        return self.root / self.fingerprint[:16]

    def path_for(self, claim_id: str) -> Path:
        return self.generation_dir / f"{claim_id}.json"

    def record(self, claim_id: str, *, mode: str, base_seed: int,
               samples: Sequence[float]) -> Path:
        path = self.path_for(claim_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "claim_id": claim_id,
            "fingerprint": self.fingerprint,
            "mode": mode,
            "base_seed": base_seed,
            "samples": [float(s) for s in samples],
        }
        tmp = path.parent / f".{claim_id}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(record, fh, sort_keys=True, indent=2)
        os.replace(tmp, path)
        return path

    def load(self, claim_id: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self.path_for(claim_id), "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or "samples" not in record:
            return None
        return record

    def claim_ids(self) -> List[str]:
        if not self.generation_dir.is_dir():
            return []
        return sorted(p.stem for p in self.generation_dir.glob("*.json"))


def resolve_fingerprint(root: os.PathLike,
                        requested: Optional[str] = None) -> str:
    """Pick the baseline generation to compare against.

    With ``requested`` (a fingerprint or unique prefix), match it; with
    exactly one generation on disk, use it; otherwise the caller must
    disambiguate — no mtime heuristics, resolution is deterministic.
    """
    rootp = Path(root)
    generations = sorted(p.name for p in rootp.iterdir()
                         if p.is_dir()) if rootp.is_dir() else []
    if not generations:
        raise FileNotFoundError(f"no recorded baselines under {rootp}")
    if requested:
        matches = [g for g in generations if g.startswith(requested[:16])]
        if not matches:
            raise KeyError(f"no baseline generation matches "
                           f"{requested!r}; have: {', '.join(generations)}")
        if len(matches) > 1:
            raise KeyError(f"fingerprint prefix {requested!r} is ambiguous: "
                           f"{', '.join(matches)}")
        return matches[0]
    if len(generations) > 1:
        raise KeyError(
            f"multiple baseline generations under {rootp} "
            f"({', '.join(generations)}); pass --baseline-fingerprint")
    return generations[0]


def detect_drift(claim_id: str, recorded: Sequence[float],
                 fresh: Sequence[float], *, base_seed: int = 0,
                 alpha: float = 0.01,
                 n_resamples: int = 2000) -> Dict[str, Any]:
    """Compare a fresh treatment distribution against the recorded one.

    Drift requires both statistical evidence (two-sided permutation test
    at ``alpha``) and a material effect (|Cliff's delta| >=
    :data:`DRIFT_DELTA_FLOOR`).  Identical distributions short-circuit
    to "stable" without resampling.
    """
    result: Dict[str, Any] = {
        "claim_id": claim_id,
        "n_recorded": len(recorded),
        "n_fresh": len(fresh),
        "alpha": alpha,
    }
    if sorted(recorded) == sorted(fresh):
        result.update(drifted=False, p_value=1.0, cliffs_delta=0.0)
        return result
    rng = random.Random(derive_seed(base_seed, f"validate.drift:{claim_id}"))
    p = permutation_test(list(fresh), list(recorded), rng,
                         n_resamples=n_resamples, alternative="two-sided")
    delta = cliffs_delta(list(fresh), list(recorded))
    result.update(drifted=bool(p <= alpha and abs(delta)
                               >= DRIFT_DELTA_FLOOR),
                  p_value=p, cliffs_delta=delta)
    return result


# ----------------------------------------------------------------------
# Perf gate: inline re-measurement of benchmarks/bench_core_speed.py.

_MSS = 1448


def _bench_engine_events(backend: Optional[str] = None) -> None:
    from repro.sim import Simulator

    sim = Simulator() if backend is None else Simulator(backend=backend)
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < 10_000:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    assert count[0] == 10_000


def _bench_download(cc: str) -> None:
    from repro.net import bdp_bytes, build_path
    from repro.sim import Simulator
    from repro.tcp import open_transfer

    sim = Simulator()
    rate, rtt = 12_500_000, 0.1
    net = build_path(sim, rate, rtt, bdp_bytes(rate, rtt))
    transfer = open_transfer(sim, net.servers[0], net.clients[0],
                             flow_id=1, size_bytes=1400 * _MSS, cc=cc)
    sim.run(until=300.0)
    assert transfer.completed


def _bench_flowsim_fleet() -> None:
    from repro.flowsim.driver import SweepConfig, run_sweep
    from repro.flowsim.model import PathParams

    config = SweepConfig(path=PathParams(rtt=0.04, btl_bw=2_500_000),
                         flows=100_000, size_dist="campus", seed=1)
    result = run_sweep(config)
    assert result.fleets["csa00"].n_flows == 100_000


_PERF_WORKLOADS = {
    "engine_event_throughput": _bench_engine_events,
    "transfer_packet_throughput": lambda: _bench_download("cubic"),
    "suss_transfer_throughput": lambda: _bench_download("cubic+suss"),
    # 2x100k modelled flows; the baseline entry keeps the analytical
    # tier honest about its >= 1e5 flows/sec promise.
    "flowsim_fleet_throughput": _bench_flowsim_fleet,
}


def measure_engine_speedup(repeats: int = 3) -> float:
    """Ratio of classic to fast event-loop time on the engine workload.

    Both backends run the identical chained-tick workload best-of-N;
    the ratio is the fast engine's speedup (> 1 means fast is faster).
    Interleaving the repeats would not help: min-of-N already takes the
    least-disturbed run from each side.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    best: Dict[str, float] = {}
    for backend in ("classic", "fast"):
        best[backend] = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            _bench_engine_events(backend)
            best[backend] = min(best[backend],
                                time.perf_counter() - start)
    return best["classic"] / best["fast"]


def measure_core_speed(repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` wall-clock seconds per ``bench_core_speed`` metric.

    Minimum-of-N is the standard noise reducer for micro-benchmarks: the
    fastest run is the one least disturbed by the machine.  The
    ``classic_vs_fast_speedup`` entry is a ratio (higher is better), not
    a duration; :func:`check_perf` reads the entry's ``direction`` field
    to gate it from the right side.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    out: Dict[str, float] = {}
    for name, workload in _PERF_WORKLOADS.items():
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            workload()
            best = min(best, time.perf_counter() - start)
        out[name] = best
    out["classic_vs_fast_speedup"] = measure_engine_speedup(repeats)
    return out


def load_perf_baseline(path: os.PathLike) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    if baseline.get("bench") != "bench_core_speed":
        raise ValueError(f"{path}: not a bench_core_speed baseline")
    return baseline


def check_perf(baseline: Dict[str, Any], measured: Dict[str, float], *,
               scale: float = 1.0) -> List[PerfVerdict]:
    """One verdict per baseline metric; worse than tolerance => FAIL.

    ``scale`` multiplies each tolerance (CI runners are noisier than the
    machine that recorded the baseline).  Only regressions fail — a
    better run is a reason to re-record, not an error.  Entries default
    to durations (lower is better); an entry with ``"direction":
    "higher"`` (e.g. ``classic_vs_fast_speedup``) fails when the
    measurement falls *below* ``value / (1 + tolerance)`` instead.
    """
    if scale <= 0.0:
        raise ValueError("scale must be positive")
    verdicts: List[PerfVerdict] = []
    for name in sorted(baseline["metrics"]):
        entry = baseline["metrics"][name]
        value, tolerance = entry["value"], entry["tolerance"] * scale
        higher_is_better = entry.get("direction") == "higher"
        unit = "x" if higher_is_better else "s"
        if name not in measured:
            verdicts.append(PerfVerdict(
                metric=name, baseline=value, measured=float("nan"),
                tolerance=tolerance, verdict=FAIL,
                reason="metric missing from measurement", unit=unit))
            continue
        got = measured[name]
        if higher_is_better:
            limit = value / (1.0 + tolerance)
            ok = got >= limit
            fail_reason = (f"{got / value - 1.0:+.0%} below baseline, "
                           f"floor {limit:.2f}x")
        else:
            limit = value * (1.0 + tolerance)
            ok = got <= limit
            fail_reason = (f"{got / value - 1.0:+.0%} slower than baseline, "
                           f"limit {limit:.4f} s")
        if ok:
            verdicts.append(PerfVerdict(
                metric=name, baseline=value, measured=got,
                tolerance=tolerance, verdict=PASS,
                reason=f"within {tolerance:.0%} of baseline", unit=unit))
        else:
            verdicts.append(PerfVerdict(
                metric=name, baseline=value, measured=got,
                tolerance=tolerance, verdict=FAIL, reason=fail_reason,
                unit=unit))
    return verdicts
