"""Statistical estimators for multi-seed replication data.

Everything here is pure standard-library Python and fully deterministic:
the resampling procedures (BCa bootstrap, permutation test) draw from an
injected ``random.Random`` stream, which callers derive from the master
seed via :func:`repro.sim.rng.derive_seed` so that a validation report is
byte-identical across runs.

Contents:

* :func:`t_interval` — Student-t confidence interval for a mean (the
  t quantile is computed from the regularized incomplete beta function,
  no SciPy needed);
* :func:`bootstrap_ci_bca` — bias-corrected-and-accelerated bootstrap CI
  for an arbitrary statistic over one or more sample arms;
* :func:`mann_whitney_u` — rank-sum test with tie correction and
  continuity correction (normal approximation);
* :func:`permutation_test` — seeded label-permutation test on a
  difference of means;
* :func:`cliffs_delta` — non-parametric effect size in [-1, 1].
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

_NORMAL = statistics.NormalDist()


def normal_ppf(p: float) -> float:
    """Inverse standard-normal CDF (delegates to ``statistics``)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be strictly inside (0, 1)")
    return _NORMAL.inv_cdf(p)


# ----------------------------------------------------------------------
# Student's t distribution via the regularized incomplete beta function.

def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Continued-fraction evaluation for the incomplete beta (Lentz)."""
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    return h


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)``: CDF of the Beta(a, b) distribution at ``x``."""
    if not 0.0 <= x <= 1.0:
        raise ValueError("x must be within [0, 1]")
    if x == 0.0 or x == 1.0:
        return x
    ln_front = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
                + a * math.log(x) + b * math.log1p(-x))
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def t_cdf(t: float, df: float) -> float:
    """CDF of Student's t distribution with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError("df must be positive")
    if t == 0.0:
        return 0.5
    x = df / (df + t * t)
    tail = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x)
    return 1.0 - tail if t > 0 else tail


def t_ppf(p: float, df: float) -> float:
    """Quantile of Student's t distribution (bisection on :func:`t_cdf`)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be strictly inside (0, 1)")
    if p == 0.5:
        return 0.0
    lo, hi = -1e3, 1e3
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def t_interval(samples: Sequence[float], confidence: float = 0.95
               ) -> Tuple[float, float]:
    """Two-sided t-based confidence interval for the mean of ``samples``.

    A single sample (or zero spread) degenerates to a point interval.
    """
    if not samples:
        raise ValueError("need at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be strictly inside (0, 1)")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return (mean, mean)
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    if var == 0.0:
        return (mean, mean)
    half = t_ppf(0.5 + confidence / 2.0, n - 1) * math.sqrt(var / n)
    return (mean - half, mean + half)


# ----------------------------------------------------------------------
# BCa bootstrap.

def _percentile_of(sorted_values: Sequence[float], q: float) -> float:
    """Interpolated quantile (``q`` in [0, 1]) over pre-sorted values."""
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = q * (len(sorted_values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    frac = rank - low
    return sorted_values[low] + frac * (sorted_values[high]
                                        - sorted_values[low])


def bootstrap_ci_bca(arms: Sequence[Sequence[float]],
                     stat: Callable[..., float],
                     rng: random.Random, *,
                     n_resamples: int = 1000,
                     confidence: float = 0.95) -> Tuple[float, float]:
    """BCa bootstrap CI for ``stat(*arms)`` over independent sample arms.

    Each arm is resampled with replacement independently; the bias
    correction ``z0`` comes from the bootstrap distribution and the
    acceleration ``a`` from a leave-one-out jackknife across every
    observation of every arm.  Degenerate inputs (no spread anywhere)
    return a point interval, which is the honest answer for fully
    deterministic replications.
    """
    if not arms or any(len(arm) == 0 for arm in arms):
        raise ValueError("every arm needs at least one sample")
    if n_resamples < 10:
        raise ValueError("n_resamples must be at least 10")
    arms = [list(arm) for arm in arms]
    observed = stat(*arms)

    boots: List[float] = []
    for _ in range(n_resamples):
        resampled = [[arm[rng.randrange(len(arm))] for _ in arm]
                     for arm in arms]
        boots.append(stat(*resampled))
    boots.sort()
    if boots[0] == boots[-1]:
        return (observed, observed)

    below = sum(1 for b in boots if b < observed)
    frac = min(max(below / n_resamples, 1.0 / (n_resamples + 1)),
               1.0 - 1.0 / (n_resamples + 1))
    z0 = normal_ppf(frac)

    jackknife: List[float] = []
    for index, arm in enumerate(arms):
        if len(arm) < 2:
            continue  # removing the only observation would empty the arm
        for drop in range(len(arm)):
            reduced = list(arms)
            reduced[index] = arm[:drop] + arm[drop + 1:]
            jackknife.append(stat(*reduced))
    accel = 0.0
    if len(jackknife) >= 2:
        jk_mean = sum(jackknife) / len(jackknife)
        num = sum((jk_mean - j) ** 3 for j in jackknife)
        den = sum((jk_mean - j) ** 2 for j in jackknife) ** 1.5
        if den > 0.0:
            accel = num / (6.0 * den)

    alpha = 1.0 - confidence
    out = []
    for z_alpha in (normal_ppf(alpha / 2.0), normal_ppf(1.0 - alpha / 2.0)):
        adj = z0 + (z0 + z_alpha) / (1.0 - accel * (z0 + z_alpha))
        out.append(_percentile_of(boots, _NORMAL.cdf(adj)))
    return (min(out), max(out))


# ----------------------------------------------------------------------
# Rank-based comparisons.

def _rank_with_ties(values: Sequence[float]) -> List[float]:
    """Ranks (1-based, ties averaged) of ``values``."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while (j + 1 < len(order)
               and values[order[j + 1]] == values[order[i]]):
            j += 1
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


@dataclass(frozen=True)
class MannWhitneyResult:
    """U statistic of the first sample, its z-score, and the p-value."""

    u: float
    z: float
    p_value: float


def mann_whitney_u(a: Sequence[float], b: Sequence[float],
                   alternative: str = "two-sided") -> MannWhitneyResult:
    """Mann-Whitney U rank-sum test (normal approximation, tie-corrected).

    ``alternative='less'`` tests whether ``a`` is stochastically smaller
    than ``b``; ``'greater'`` the reverse; ``'two-sided'`` either.  The
    normal approximation is continuity-corrected; for the tiny sample
    sizes the quick validation mode uses it is conservative enough that a
    clean separation of 3-vs-3 arms still clears alpha = 0.05.
    """
    if alternative not in ("two-sided", "less", "greater"):
        raise ValueError(f"unknown alternative {alternative!r}")
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("both samples need at least one value")
    combined = list(a) + list(b)
    ranks = _rank_with_ties(combined)
    rank_sum_a = sum(ranks[:n])
    u_a = rank_sum_a - n * (n + 1) / 2.0

    total = n + m
    mean_u = n * m / 2.0
    tie_term = 0.0
    seen = {}
    for value in combined:
        seen[value] = seen.get(value, 0) + 1
    for count in seen.values():
        if count > 1:
            tie_term += count ** 3 - count
    var_u = (n * m / 12.0) * ((total + 1) - tie_term / (total * (total - 1)))
    if var_u <= 0.0:  # every value tied with every other
        return MannWhitneyResult(u=u_a, z=0.0, p_value=1.0)
    sigma = math.sqrt(var_u)

    if alternative == "greater":
        z = (u_a - mean_u - 0.5) / sigma
        p = 1.0 - _NORMAL.cdf(z)
    elif alternative == "less":
        z = (u_a - mean_u + 0.5) / sigma
        p = _NORMAL.cdf(z)
    else:
        z = (u_a - mean_u) / sigma
        shift = (abs(u_a - mean_u) - 0.5) / sigma
        p = 2.0 * (1.0 - _NORMAL.cdf(max(shift, 0.0)))
    return MannWhitneyResult(u=u_a, z=z, p_value=min(max(p, 0.0), 1.0))


def permutation_test(a: Sequence[float], b: Sequence[float],
                     rng: random.Random, *,
                     n_resamples: int = 2000,
                     alternative: str = "two-sided") -> float:
    """Seeded permutation test on the difference of means ``mean(a)-mean(b)``.

    Labels are reshuffled ``n_resamples`` times; the p-value uses the
    add-one estimator so it can never be exactly zero.
    """
    if alternative not in ("two-sided", "less", "greater"):
        raise ValueError(f"unknown alternative {alternative!r}")
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("both samples need at least one value")
    if n_resamples < 10:
        raise ValueError("n_resamples must be at least 10")
    combined = list(a) + list(b)
    observed = sum(a) / n - sum(b) / m
    hits = 0
    for _ in range(n_resamples):
        rng.shuffle(combined)
        delta = (sum(combined[:n]) / n) - (sum(combined[n:]) / m)
        if alternative == "greater":
            hits += delta >= observed
        elif alternative == "less":
            hits += delta <= observed
        else:
            hits += abs(delta) >= abs(observed)
    return (hits + 1) / (n_resamples + 1)


def cliffs_delta(a: Sequence[float], b: Sequence[float]) -> float:
    """Cliff's delta effect size: P(a > b) - P(a < b), in [-1, 1]."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("both samples need at least one value")
    greater = sum(1 for x in a for y in b if x > y)
    less = sum(1 for x in a for y in b if x < y)
    return (greater - less) / (n * m)
