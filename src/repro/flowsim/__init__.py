"""repro.flowsim — the analytical (flow-level) fidelity tier.

Packet-level fidelity caps experiments at thousands of flows; this
package models flows in closed form at O(1) cost each, unlocking
million-flow SUSS studies (see DESIGN.md §9 "Fidelity tiers"):

* :mod:`repro.flowsim.model` — the :class:`FlowModel` protocol,
  :class:`PathParams` (a scenario projected onto the analytical tier)
  and :class:`FlowEstimate` (per-flow FCT/loss outputs);
* :mod:`repro.flowsim.csa00` — the CSA00 closed-form FCT structure;
* :mod:`repro.flowsim.suss_term` — SUSS's compressed slow start as a
  growth-schedule override;
* :mod:`repro.flowsim.driver` — memoised fleet driver (millions of
  flows per second) over `repro.workloads` size/arrival distributions;
* :mod:`repro.flowsim.crossval` — packet-vs-analytical agreement
  harness backing the golden tolerance suite.
"""

from repro.flowsim import csa00 as _csa00          # noqa: F401 (registers)
from repro.flowsim import suss_term as _suss_term  # noqa: F401 (registers)
from repro.flowsim.driver import (
    FleetResult,
    SweepConfig,
    SweepResult,
    estimate_fleet,
    poisson_arrivals,
    run_sweep,
    shard_seed,
)
from repro.flowsim.model import (
    FlowEstimate,
    FlowModel,
    PathParams,
    available_models,
    create_model,
)

__all__ = [
    "FleetResult",
    "FlowEstimate",
    "FlowModel",
    "PathParams",
    "SweepConfig",
    "SweepResult",
    "available_models",
    "create_model",
    "estimate_fleet",
    "poisson_arrivals",
    "run_sweep",
    "shard_seed",
]
