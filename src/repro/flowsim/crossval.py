"""Cross-validation: the analytical tier scored against the packet tier.

A closed-form model is only as trustworthy as its agreement with the
packet-level simulator on the scenarios where both can run.  This
harness runs identical (scenario, flow size, scheme) cells through
both tiers — the packet tier over several seeds (jitter gives seed
diversity), the analytical tier once — and scores:

* the **relative median-FCT error** per cell, gated at
  :data:`TOLERANCE_REL_MEDIAN_FCT` (the documented trust boundary of
  DESIGN.md §9), and
* **Cliff's delta** between the paired per-cell FCT vectors of the two
  tiers, a distribution-level check that the analytical tier is not
  systematically biased to one side.

The packet runs here deliberately re-implement the minimal single-flow
recipe (simulator + scenario build + one transfer) instead of calling
:mod:`repro.experiments.runner`: ``flowsim`` sits *below* the
experiments layer in the layering DAG, so the reference runner lives on
this side of the boundary.  The golden agreement numbers are committed
in ``tests/golden/flowsim_crossval.json`` so model drift fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.units import MBPS, Bytes, Seconds
from repro.flowsim.model import FlowEstimate, PathParams, create_model
from repro.metrics.summary import percentile
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.connection import open_transfer
from repro.validate.stats import cliffs_delta
from repro.workloads.scenarios import PathScenario

#: documented trust boundary: the analytical tier's median FCT must sit
#: within this relative distance of the packet tier's on every golden
#: scenario (acceptance criterion; DESIGN.md §9).
TOLERANCE_REL_MEDIAN_FCT = 0.15

#: packet↔analytical scheme pairing: the packet tier's algorithm name
#: and the analytical model that claims to reproduce its FCT.
SCHEME_PAIRS: Dict[str, str] = {
    "cubic": "csa00",
    "cubic+suss": "csa00+suss",
}


def _dumbbell(name: str, rtt: Seconds, mbps: float) -> PathScenario:
    """A clean validation dumbbell: fixed bandwidth, tiny jitter for
    seed diversity, no random loss."""
    return PathScenario(name=name, server="crossval", link_type="wired",
                        client_location="lab", rtt=rtt, btl_bw=mbps * MBPS,
                        bw_variation=0.0, jitter=0.0002, loss_rate=0.0,
                        buffer_bdp=1.5)


#: the golden validation matrix: {low, high} BDP x {short, long} flows
#: x {cubic, cubic+suss} — eight cells (acceptance asks for >= 6).
LOW_BDP = _dumbbell("xval-low-bdp", rtt=0.04, mbps=20.0)     # ~66 segments
HIGH_BDP = _dumbbell("xval-high-bdp", rtt=0.15, mbps=100.0)  # ~1250 segments
SHORT_FLOW = 60_000       # ~42 segments: lives and dies in slow start
LONG_FLOW = 4_000_000     # ~2763 segments: saturates the pipe


@dataclass(frozen=True)
class CrossValCase:
    """One validation cell: a scenario/size/scheme triple plus seeds.

    ``gated`` cells must sit inside the tolerance band for the report to
    pass; ungated cells are *informational* — they quantify the
    analytical tier's error on path classes (jitter-heavy, bandwidth-
    varying) that its closed forms deliberately do not model, and are
    recorded in the report without failing it.
    """

    name: str
    scenario: PathScenario
    cc: str                      # packet-tier algorithm
    size_bytes: Bytes
    seeds: Tuple[int, ...] = (1, 2, 3)
    gated: bool = True
    scenario_class: str = "clean"

    @property
    def model(self) -> str:
        return SCHEME_PAIRS[self.cc]


def default_cases() -> List[CrossValCase]:
    """The full golden matrix (eight cells)."""
    cases: List[CrossValCase] = []
    for bdp_name, scenario in (("low", LOW_BDP), ("high", HIGH_BDP)):
        for size_name, size in (("short", SHORT_FLOW), ("long", LONG_FLOW)):
            for cc in SCHEME_PAIRS:
                suffix = "suss" if cc.endswith("suss") else "base"
                cases.append(CrossValCase(
                    name=f"{bdp_name}bdp-{size_name}-{suffix}",
                    scenario=scenario, cc=cc, size_bytes=size))
    return cases


#: perturbed dumbbells for the informational cells: the same low-BDP
#: path with (a) jitter at 10% of the RTT and (b) a ±25% random-walk
#: bottleneck — both outside the analytical tier's clean-path model.
JITTER_PATH = replace(LOW_BDP, name="xval-jitter", jitter=0.004)
BWVAR_PATH = replace(LOW_BDP, name="xval-bwvar", bw_variation=0.25)


def perturbed_cases() -> List[CrossValCase]:
    """Informational (ungated) cells on jitter/bw-variation classes.

    These quantify the flowsim trust boundary beyond the golden matrix:
    how far the analytical FCT drifts when the path violates the fixed-
    RTT / fixed-bandwidth assumptions.  Their errors are recorded in the
    report's ``class_errors`` section but never fail the gate.
    """
    cases: List[CrossValCase] = []
    for cls, scenario in (("jitter", JITTER_PATH), ("bw_variation",
                                                    BWVAR_PATH)):
        for size_name, size in (("short", SHORT_FLOW), ("long", LONG_FLOW)):
            for cc in SCHEME_PAIRS:
                suffix = "suss" if cc.endswith("suss") else "base"
                cases.append(CrossValCase(
                    name=f"{cls.replace('_', '')}-{size_name}-{suffix}",
                    scenario=scenario, cc=cc, size_bytes=size,
                    gated=False, scenario_class=cls))
    return cases


def all_cases() -> List[CrossValCase]:
    """Golden matrix plus the informational perturbed-path cells."""
    return default_cases() + perturbed_cases()


def quick_cases() -> List[CrossValCase]:
    """CI-budget subset: every BDP x scheme corner on short flows, plus
    one long-flow cell per scheme, with a single seed each."""
    chosen = {"lowbdp-short-base", "lowbdp-short-suss",
              "highbdp-short-base", "highbdp-short-suss",
              "highbdp-long-base", "highbdp-long-suss"}
    return [replace(case, seeds=(1,)) for case in default_cases()
            if case.name in chosen]


def packet_fct(scenario: PathScenario, cc: str, size_bytes: Bytes,
               seed: int) -> Seconds:
    """Reference packet-tier FCT for one seeded single-flow download."""
    sim = Simulator()
    rng = RngRegistry(seed)
    net = scenario.build(sim, rng)
    transfer = open_transfer(sim, net.servers[0], net.clients[0], flow_id=1,
                             size_bytes=size_bytes, cc=cc)
    deadline = 60.0 + 40.0 * size_bytes / scenario.btl_bw + 200.0 * scenario.rtt
    sim.run(until=deadline)
    if not transfer.completed or transfer.fct is None:
        raise RuntimeError(
            f"packet reference flow did not complete: {scenario.name} "
            f"cc={cc} size={size_bytes} seed={seed}")
    return transfer.fct


@dataclass(frozen=True)
class CaseResult:
    """Agreement numbers for one validation cell."""

    name: str
    cc: str
    model: str
    size_bytes: Bytes
    packet_fcts: Tuple[Seconds, ...]
    packet_median: Seconds
    analytical_fct: Seconds
    rel_median_error: float
    gated: bool = True
    scenario_class: str = "clean"

    def within(self, tolerance: float = TOLERANCE_REL_MEDIAN_FCT) -> bool:
        return self.rel_median_error <= tolerance

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "cc": self.cc, "model": self.model,
            "size_bytes": self.size_bytes,
            "packet_fcts": list(self.packet_fcts),
            "packet_median": self.packet_median,
            "analytical_fct": self.analytical_fct,
            "rel_median_error": self.rel_median_error,
            "gated": self.gated,
            "scenario_class": self.scenario_class,
        }


def run_case(case: CrossValCase) -> CaseResult:
    fcts = tuple(packet_fct(case.scenario, case.cc, case.size_bytes, seed)
                 for seed in case.seeds)
    median = percentile(fcts, 50.0)
    path = PathParams.from_scenario(case.scenario)
    est: FlowEstimate = create_model(case.model).estimate(case.size_bytes,
                                                          path)
    rel = abs(est.fct - median) / median
    return CaseResult(name=case.name, cc=case.cc, model=case.model,
                      size_bytes=case.size_bytes, packet_fcts=fcts,
                      packet_median=median, analytical_fct=est.fct,
                      rel_median_error=rel, gated=case.gated,
                      scenario_class=case.scenario_class)


@dataclass(frozen=True)
class CrossValReport:
    """All cell results plus the distribution-level agreement score."""

    cases: Tuple[CaseResult, ...]
    tolerance: float

    @property
    def gated_cases(self) -> Tuple[CaseResult, ...]:
        return tuple(c for c in self.cases if c.gated)

    @property
    def max_rel_error(self) -> float:
        """Worst gated error (the tolerance gate's headline number)."""
        return max(c.rel_median_error for c in self.gated_cases)

    @property
    def worst_case(self) -> str:
        return max(self.gated_cases,
                   key=lambda c: c.rel_median_error).name

    @property
    def delta(self) -> float:
        """Cliff's delta between the tiers' per-cell FCT vectors (near 0
        means no systematic bias toward either tier; gated cells only —
        the perturbed classes are expected to be biased)."""
        packet = [c.packet_median for c in self.gated_cases]
        analytical = [c.analytical_fct for c in self.gated_cases]
        return cliffs_delta(analytical, packet)

    @property
    def passed(self) -> bool:
        """Informational (ungated) cells never fail the gate."""
        return all(c.within(self.tolerance) for c in self.gated_cases)

    def class_errors(self) -> Dict[str, Dict[str, float]]:
        """Per-scenario-class relative-error statistics over all cells.

        This is where the perturbed classes' quantified error lives:
        ``clean`` is the gated matrix, ``jitter``/``bw_variation`` the
        informational classes.
        """
        grouped: Dict[str, List[float]] = {}
        for case in self.cases:
            grouped.setdefault(case.scenario_class, []).append(
                case.rel_median_error)
        return {cls: {"cells": float(len(errs)),
                      "mean_rel_error": sum(errs) / len(errs),
                      "max_rel_error": max(errs)}
                for cls, errs in sorted(grouped.items())}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tolerance": self.tolerance,
            "passed": self.passed,
            "max_rel_error": self.max_rel_error,
            "worst_case": self.worst_case,
            "cliffs_delta": self.delta,
            "class_errors": self.class_errors(),
            "cases": [c.to_dict() for c in self.cases],
        }


def run_crossval(cases: Optional[Sequence[CrossValCase]] = None,
                 tolerance: float = TOLERANCE_REL_MEDIAN_FCT
                 ) -> CrossValReport:
    """Run every cell through both tiers and score agreement."""
    chosen = list(cases) if cases is not None else default_cases()
    if not chosen:
        raise ValueError("need at least one cross-validation case")
    if not any(c.gated for c in chosen):
        raise ValueError("need at least one gated cross-validation case")
    return CrossValReport(cases=tuple(run_case(c) for c in chosen),
                          tolerance=tolerance)
