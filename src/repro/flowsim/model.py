"""Flow-model protocol and shared types for the analytical fidelity tier.

A :class:`FlowModel` maps (flow size, path) to a :class:`FlowEstimate`
in closed form — no engine events, no packets, O(1) per flow.  The two
concrete models are :class:`repro.flowsim.csa00.Csa00Model` (the
Cardwell–Savage–Anderson FCT structure) and its SUSS extension
:class:`repro.flowsim.suss_term.SussCsa00Model` (compressed slow start).

:class:`PathParams` is the analytical tier's view of a scenario: the
handful of numbers the closed forms need, derived from the same
:class:`repro.workloads.scenarios.PathScenario` the packet-level tier
builds networks from, so one scenario definition feeds both tiers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.units import Bytes, BytesPerSec, Seconds, Segments
from repro.net.packet import DEFAULT_MSS, HEADER_BYTES
from repro.tcp.sender import DEFAULT_IW_SEGMENTS
from repro.workloads.scenarios import PathScenario

#: slow-start rounds double per RTT when every data packet is ACKed,
#: and grow 1.5x when the receiver delays every other ACK (the CSA00
#: ``gamma``); matches repro.tcp.receiver's delayed-ACK behaviour.
GAMMA_PER_ACK = 2.0
GAMMA_DELAYED_ACK = 1.5

#: access links in build_dumbbell run at 10x the bottleneck, so each
#: packet pays 1/10 of its bottleneck serialisation twice more (server
#: uplink + client downlink) on top of the bottleneck itself.
ACCESS_SERIALISATION_FACTOR = 1.2


@dataclass(frozen=True)
class PathParams:
    """The analytical tier's path description (all rates in bytes/sec)."""

    rtt: Seconds                  # two-way propagation delay
    btl_bw: BytesPerSec           # bottleneck wire rate
    loss_rate: float = 0.0        # random (non-congestion) loss probability
    mss: Bytes = DEFAULT_MSS      # payload bytes per segment
    header_bytes: Bytes = HEADER_BYTES
    iw_segments: Segments = DEFAULT_IW_SEGMENTS
    delayed_ack: bool = False
    buffer_bdp: float = 1.0       # bottleneck buffer in BDP multiples
    rwnd: Bytes = 1 << 30         # receive window

    def __post_init__(self) -> None:
        if self.rtt <= 0:
            raise ValueError("rtt must be positive")
        if self.btl_bw <= 0:
            raise ValueError("btl_bw must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be within [0, 1)")
        if self.mss <= 0 or self.iw_segments <= 0:
            raise ValueError("mss and iw_segments must be positive")

    @classmethod
    def from_scenario(cls, scenario: PathScenario, *,
                      delayed_ack: bool = False) -> "PathParams":
        """Project a packet-tier scenario onto the analytical tier.

        Bandwidth variation and jitter have zero mean, so the analytical
        tier models the mean path; the cross-validation harness measures
        how much fidelity that costs (DESIGN.md §9).
        """
        return cls(rtt=scenario.rtt, btl_bw=scenario.btl_bw,
                   loss_rate=scenario.loss_rate,
                   buffer_bdp=scenario.buffer_bdp, delayed_ack=delayed_ack)

    # -- derived quantities -------------------------------------------
    @property
    def wire_segment(self) -> Bytes:
        """Wire bytes of one full segment (payload + headers)."""
        return self.mss + self.header_bytes

    @property
    def gamma(self) -> float:
        """Per-round slow-start growth factor under the ACK regime."""
        return GAMMA_DELAYED_ACK if self.delayed_ack else GAMMA_PER_ACK

    @property
    def goodput(self) -> BytesPerSec:
        """Payload throughput of a saturated bottleneck (bytes/sec)."""
        return self.btl_bw * (self.mss / self.wire_segment)

    @property
    def effective_rtt(self) -> Seconds:
        """Propagation plus the per-packet serialisation a data/ACK pair
        pays on the dumbbell (bottleneck + two 10x access links)."""
        per_packet = (self.wire_segment + self.header_bytes) / self.btl_bw
        return self.rtt + ACCESS_SERIALISATION_FACTOR * per_packet

    @property
    def bdp_segments(self) -> Segments:
        """Pipe capacity in full segments."""
        return self.btl_bw * self.rtt / self.wire_segment

    @property
    def rwnd_segments(self) -> Segments:
        return self.rwnd / self.mss

    def segments_of(self, size_bytes: Bytes) -> int:
        """Data packets needed for ``size_bytes`` (CSA00's ``d``)."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        return -(-size_bytes // self.mss)


@dataclass(frozen=True)
class FlowEstimate:
    """Closed-form outcome of one modelled flow.

    ``fct`` mirrors the packet tier's definition (handshake included,
    measured sender-side to the final cumulative ACK).  ``retransmits``
    and ``loss_episodes`` are expectations, not sampled counts: the
    analytical tier reports the mean field of the per-packet process.
    """

    model: str
    size_bytes: Bytes
    segments: int
    fct: Seconds
    handshake_time: Seconds
    ss_time: Seconds              # initial slow-start phase
    loss_recovery_time: Seconds   # expected loss-episode expansion
    ca_time: Seconds              # steady-state / congestion-avoidance tail
    ss_rounds: int
    ss_segments: Segments         # expected packets sent in slow start
    exit_cwnd_segments: Segments  # window when slow start ended
    pipe_saturated: bool          # did the window reach the BDP?
    retransmits: float            # expected retransmissions
    loss_episodes: float          # expected loss events
    rounds_saved: int = 0         # SUSS: slow-start rounds compressed away

    @property
    def loss_rate(self) -> float:
        """Expected retransmissions per data packet (the packet tier's
        ``loss_rate`` analogue)."""
        if self.segments == 0:
            return 0.0
        return self.retransmits / self.segments


class FlowModel:
    """Protocol: a named closed-form flow model.

    Concrete models implement :meth:`estimate`; everything else in the
    subsystem (driver, cross-validation, campaign jobs) sees only this
    surface.
    """

    name: str = "abstract"

    def estimate(self, size_bytes: Bytes, path: PathParams) -> FlowEstimate:
        raise NotImplementedError


#: registered model factories, keyed by the name jobs and the CLI use.
MODELS: Dict[str, Callable[[], FlowModel]] = {}


def register_model(name: str, factory: Callable[[], FlowModel]) -> None:
    MODELS[name] = factory


def create_model(name: str) -> FlowModel:
    try:
        factory = MODELS[name]
    except KeyError:
        raise KeyError(f"unknown flow model {name!r}; "
                       f"known: {', '.join(sorted(MODELS))}") from None
    return factory()


def available_models() -> List[str]:
    return sorted(MODELS)


def slow_start_data(iw: float, gamma: float, rounds: int) -> float:
    """Cumulative segments sent by the end of ``rounds`` slow-start rounds
    (geometric series ``iw * (gamma^rounds - 1) / (gamma - 1)``)."""
    if rounds <= 0:
        return 0.0
    if gamma == 1.0:
        return iw * rounds
    return iw * (gamma ** rounds - 1.0) / (gamma - 1.0)


def rounds_for_data(iw: float, gamma: float, segments: float) -> int:
    """Smallest round count whose cumulative slow-start data covers
    ``segments`` (inverse of :func:`slow_start_data`)."""
    if segments <= 0:
        return 0
    if gamma == 1.0:
        return max(int(math.ceil(segments / iw)), 1)
    inner = segments * (gamma - 1.0) / iw + 1.0
    return max(int(math.ceil(math.log(inner, gamma) - 1e-12)), 1)
