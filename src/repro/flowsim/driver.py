"""Vectorised fleet driver: model millions of flows in closed form.

The driver is where the analytical tier earns its keep: a
:class:`~repro.flowsim.model.FlowModel` is a pure function of
``(segment count, path)``, so a fleet of a million flows drawn from a
flow-size distribution collapses to one closed-form evaluation per
*distinct* segment count plus a dictionary lookup per flow.  Internet
mixes are heavy-tailed but quantised by the MSS — a 100 MB ceiling is
only ~69k distinct segment counts — so the sweep the acceptance
criteria time (10^6 flows, both schemes) does a few tens of thousands
of model evaluations, not two million.

Flow sizes come from :mod:`repro.workloads.distributions` (the same
mix vocabulary the packet tier's cross-traffic uses) and arrival times
from a Poisson process on the modelled timeline; both draw from
:func:`repro.sim.rng.derive_seed`-derived streams so fleets are
reproducible and independent per purpose.

When an :class:`~repro.obs.tracer.Observability` bundle is supplied the
driver emits one ``flowsim.flow`` record per flow through the ordinary
sink machinery — same tooling, different fidelity tier.  For
million-flow sweeps leave ``obs`` unset; the record stream, not the
model, would dominate the run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.units import Bytes, PerSecond, Seconds, Segments
from repro.flowsim.model import FlowEstimate, FlowModel, PathParams, create_model
from repro.metrics.summary import Summary, summarize
from repro.obs.records import FLOWSIM_FLOW
from repro.obs.runtime import add_flows_modelled
from repro.obs.tracer import Observability
from repro.sim.rng import derive_seed
from repro.workloads.distributions import sample_flow_sizes

#: default offered load for the synthetic arrival process, flows/sec.
DEFAULT_ARRIVAL_RATE: PerSecond = 1000.0


def shard_seed(seed: int, shard: int) -> int:
    """Seed for one shard of a sharded sweep: a distinct derived stream
    per shard so the union of shard fleets is one deterministic fleet."""
    return derive_seed(seed, f"flowsim.shard:{shard}")


def poisson_arrivals(n: int, rate: PerSecond, rng: random.Random) -> List[Seconds]:
    """Arrival times of a Poisson process with ``rate`` flows/second."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if rate <= 0.0:
        raise ValueError("rate must be positive")
    expo = rng.expovariate
    t = 0.0
    out: List[float] = []
    append = out.append
    for _ in range(n):
        t += expo(rate)
        append(t)
    return out


@dataclass
class FleetResult:
    """Aggregate outcome of one modelled fleet (one model, one path)."""

    model: str
    n_flows: int
    fcts: List[Seconds] = field(repr=False)
    sizes: List[Bytes] = field(repr=False)
    total_bytes: Bytes = 0
    total_segments: Segments = 0
    expected_retransmits: float = 0.0
    rounds_saved_total: int = 0
    distinct_segment_counts: int = 0

    def fct_summary(self) -> Summary:
        return summarize(self.fcts)

    @property
    def mean_rounds_saved(self) -> float:
        if self.n_flows == 0:
            return 0.0
        return self.rounds_saved_total / self.n_flows


def estimate_fleet(model: FlowModel, sizes: Sequence[int], path: PathParams,
                   *, arrivals: Optional[Sequence[float]] = None,
                   obs: Optional[Observability] = None,
                   flow_base: int = 1) -> FleetResult:
    """Model every flow in ``sizes``, memoising by segment count.

    Two sizes that quantise to the same number of MSS-sized segments
    have identical closed-form outcomes, so the model runs once per
    distinct segment count.  ``arrivals`` (parallel to ``sizes``) only
    matters for the timeline stamped onto emitted ``flowsim.flow``
    records; the analytical tier models flows independently, so
    arrivals never change an FCT.
    """
    if arrivals is not None and len(arrivals) != len(sizes):
        raise ValueError("arrivals must parallel sizes")
    mss = path.mss
    cache: Dict[int, FlowEstimate] = {}
    estimate = model.estimate
    fcts: List[float] = []
    append = fcts.append
    total_bytes = 0
    total_segments = 0
    retx = 0.0
    saved = 0
    emit = obs.emit if obs is not None else None
    for i, size in enumerate(sizes):
        d = -(-size // mss)
        est = cache.get(d)
        if est is None:
            est = estimate(size, path)
            cache[d] = est
        append(est.fct)
        total_bytes += size
        total_segments += d
        retx += est.retransmits
        saved += est.rounds_saved
        if emit is not None:
            t = arrivals[i] if arrivals is not None else 0.0
            emit(t, FLOWSIM_FLOW, flow=flow_base + i, model=model.name,
                 size=size, fct=est.fct, rounds=est.ss_rounds,
                 rounds_saved=est.rounds_saved, retx=est.retransmits)
    return FleetResult(model=model.name, n_flows=len(sizes), fcts=fcts,
                       sizes=list(sizes), total_bytes=total_bytes,
                       total_segments=total_segments,
                       expected_retransmits=retx, rounds_saved_total=saved,
                       distinct_segment_counts=len(cache))


@dataclass(frozen=True)
class SweepConfig:
    """A reproducible fleet sweep: one path, one mix, N flows per model."""

    path: PathParams
    flows: int = 100_000
    size_dist: str = "campus"
    arrival_rate: PerSecond = DEFAULT_ARRIVAL_RATE
    seed: int = 1
    models: Tuple[str, ...] = ("csa00", "csa00+suss")

    def __post_init__(self) -> None:
        if self.flows <= 0:
            raise ValueError("flows must be positive")
        if not self.models:
            raise ValueError("need at least one model")


@dataclass(frozen=True)
class SweepResult:
    """Per-model fleet results plus the headline SUSS comparison."""

    config: SweepConfig
    fleets: Dict[str, FleetResult]

    def improvement(self, baseline: str = "csa00",
                    treatment: str = "csa00+suss",
                    stat: str = "mean") -> float:
        """Relative FCT improvement of ``treatment`` over ``baseline``
        (positive means the treatment is faster — the direction of the
        paper's Fig. 11/12).

        The headline statistic is the mean: on internet mixes the
        *median* flow fits in two slow-start rounds (IW covers it), a
        regime SUSS cannot compress, so the median is often identical
        while the mean captures the tail SUSS accelerates.
        """
        base_summary = self.fleets[baseline].fct_summary()
        treat_summary = self.fleets[treatment].fct_summary()
        base = getattr(base_summary, stat)
        treat = getattr(treat_summary, stat)
        if base == 0.0:
            return 0.0
        return (base - treat) / base


def fleet_to_value(fleet: FleetResult) -> Dict[str, object]:
    """JSON-serialisable digest of one fleet (campaign result unit)."""
    s = fleet.fct_summary()
    return {
        "n": fleet.n_flows,
        "fct_mean": s.mean,
        "fct_std": s.std,
        "fct_median": s.median,
        "fct_p95": s.p95,
        "fct_min": s.minimum,
        "fct_max": s.maximum,
        "total_bytes": fleet.total_bytes,
        "total_segments": fleet.total_segments,
        "expected_retransmits": fleet.expected_retransmits,
        "rounds_saved_mean": fleet.mean_rounds_saved,
        "distinct_segment_counts": fleet.distinct_segment_counts,
    }


def sweep_to_value(result: SweepResult) -> Dict[str, object]:
    """JSON-serialisable digest of a whole sweep."""
    cfg = result.config
    value: Dict[str, object] = {
        "flows": cfg.flows,
        "size_dist": cfg.size_dist,
        "seed": cfg.seed,
        "arrival_rate": cfg.arrival_rate,
        "models": {name: fleet_to_value(fleet)
                   for name, fleet in result.fleets.items()},
    }
    if "csa00" in result.fleets and "csa00+suss" in result.fleets:
        value["improvement"] = result.improvement()
    return value


def merge_sweep_values(values: Sequence[Dict[str, object]]
                       ) -> Dict[str, object]:
    """Merge per-shard sweep digests (from :func:`sweep_to_value`).

    Counts, byte totals, retransmit expectations and extremes merge
    exactly; means merge as flow-weighted averages.  Medians and p95s
    are flow-weighted averages of the shard statistics — each shard
    draws i.i.d. from the same size distribution, so shard quantiles
    estimate the same population quantile and averaging them is an
    unbiased combination, not an exact pooled quantile.
    """
    if not values:
        raise ValueError("need at least one shard value")
    model_names = list(values[0]["models"])  # type: ignore[arg-type]
    merged_models: Dict[str, Dict[str, float]] = {}
    for name in model_names:
        shards = [v["models"][name] for v in values]  # type: ignore[index]
        n = sum(s["n"] for s in shards)
        weighted = lambda key: sum(s[key] * s["n"] for s in shards) / n
        merged_models[name] = {
            "n": n,
            "fct_mean": weighted("fct_mean"),
            "fct_std": weighted("fct_std"),
            "fct_median": weighted("fct_median"),
            "fct_p95": weighted("fct_p95"),
            "fct_min": min(s["fct_min"] for s in shards),
            "fct_max": max(s["fct_max"] for s in shards),
            "total_bytes": sum(s["total_bytes"] for s in shards),
            "total_segments": sum(s["total_segments"] for s in shards),
            "expected_retransmits": sum(s["expected_retransmits"]
                                        for s in shards),
            "rounds_saved_mean": weighted("rounds_saved_mean"),
            "distinct_segment_counts": max(s["distinct_segment_counts"]
                                           for s in shards),
        }
    merged: Dict[str, object] = {
        "flows": sum(v["flows"] for v in values),  # type: ignore[misc]
        "size_dist": values[0]["size_dist"],
        "seed": values[0]["seed"],
        "arrival_rate": values[0]["arrival_rate"],
        "shards": len(values),
        "models": merged_models,
    }
    if "csa00" in merged_models and "csa00+suss" in merged_models:
        base = merged_models["csa00"]["fct_mean"]
        treat = merged_models["csa00+suss"]["fct_mean"]
        merged["improvement"] = (base - treat) / base if base else 0.0
    return merged


def run_sweep(config: SweepConfig,
              obs: Optional[Observability] = None) -> SweepResult:
    """Run the configured fleet through every model on identical draws.

    All models see the *same* sizes and arrivals (streams derived from
    the sweep seed by purpose), so a ±SUSS comparison is paired at the
    flow level, not merely distribution-level.
    """
    size_rng = random.Random(derive_seed(config.seed, "flowsim.sizes"))
    arr_rng = random.Random(derive_seed(config.seed, "flowsim.arrivals"))
    sizes = sample_flow_sizes(config.size_dist, config.flows, size_rng)
    arrivals = (poisson_arrivals(config.flows, config.arrival_rate, arr_rng)
                if obs is not None else None)
    fleets: Dict[str, FleetResult] = {}
    for name in config.models:
        model = create_model(name)
        fleets[name] = estimate_fleet(model, sizes, config.path,
                                      arrivals=arrivals, obs=obs)
    # One process-counter add per sweep (not per flow): run telemetry
    # reports flows/sec without touching the memoised estimate path.
    add_flows_modelled(config.flows * len(config.models))
    return SweepResult(config=config, fleets=fleets)
