"""CSA00-style closed-form flow-completion-time model.

Cardwell, Savage & Anderson ("Modeling TCP Latency", INFOCOM 2000)
decompose a transfer's expected latency into

* the handshake,
* the initial slow-start phase (exponential window growth at ``gamma``
  per round — the delayed-ACK factor — until the data runs out, the
  pipe fills, or a loss ends the phase),
* the expected cost of the loss episode that ends slow start (fast
  recovery vs RTO, with the ``G(p)`` backoff expansion), and
* the remaining data at the steady-state throughput of the PFTK98
  send-rate formula.

This module implements that structure against *this repository's*
packet tier: the slow-start phase is walked as a discrete round ladder
(`O(log W)`, still no per-packet events) because the packet simulator's
windows genuinely are discrete doublings from ``iw = 10``, and the
continuous-approximation error of the original Eq. 15 is the largest
avoidable disagreement between the tiers.  The loss-episode and
steady-state terms follow the paper's equations (5), (16)–(24).

The growth schedule is a hook (:meth:`Csa00Model.growth_factor`):
:class:`repro.flowsim.suss_term.SussCsa00Model` overrides it to model
SUSS's compressed slow start and changes nothing else — exactly the
paper's framing that slow-start time is the term SUSS compresses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.units import Bytes, Seconds
from repro.flowsim.model import (
    FlowEstimate,
    FlowModel,
    PathParams,
    register_model,
)
# The packet tier's retransmission-timeout floor; sharing the constant
# keeps the analytical ladder's RTO arithmetic in lock-step with the
# simulator's actual timer.
from repro.tcp.rtt import RTO_MIN

#: slow start is considered to have filled the pipe once the window
#: covers this fraction of the BDP: HyStart's delay condition fires at
#: 1.125x minRTT of queueing, i.e. just past a full pipe, and the last
#: doubling overshoots — the packet tier exits within [1, 1.5] BDP, so
#: the midpoint keeps the ladder honest on both sides.
SATURATION_BDP_FRACTION = 1.25


@dataclass(frozen=True)
class _Ladder:
    """Outcome of walking the slow-start round ladder."""

    rounds: int               # rounds spent in slow start
    sent: float               # segments sent during those rounds
    cwnd: float               # window when the phase ended (segments)
    final_window: float       # window sent in the final round
    prev_window: float        # window of the round before the final one
    sent_before_final: float  # cumulative segments before the final round
    saturated: bool           # ended because the pipe filled (not data)
    rounds_saved: int         # rounds a gamma-only ladder would have added


class Csa00Model(FlowModel):
    """The CSA00 closed-form FCT model (traditional slow start)."""

    name = "csa00"

    # -- the growth schedule hooks ------------------------------------
    def growth_factor(self, cwnd: float, round_index: int,
                      path: PathParams) -> float:
        """Window multiplier entering round ``round_index + 1``, decided
        from round ``round_index``'s ACK train (``cwnd`` is that round's
        window).

        Traditional slow start grows by the delayed-ACK factor
        ``gamma`` every round regardless of the window's position in
        the pipe.
        """
        return path.gamma

    def final_round_time(self, remaining: float, ladder: _Ladder,
                         path: PathParams) -> Seconds:
        """Time from the final (data-limited) round's start until the
        last byte is ACKed.

        With ACK-clocked sending the tail's release spreads over the
        early part of the round; the last byte still pays the tail's
        bottleneck serialisation — negligible below the BDP, but the
        binding term once the final window overshoots the pipe — plus
        the final round-trip.  SUSS overrides this: a paced red tail
        leaves on the pacing plan's schedule, not the ACK clock.
        """
        drain = remaining * path.wire_segment / path.btl_bw
        return drain + path.effective_rtt

    # -- slow-start ladder --------------------------------------------
    def _ladder(self, segments: float, path: PathParams) -> _Ladder:
        """Walk slow-start rounds until ``segments`` are covered or the
        pipe saturates.  ``segments`` may be fractional (an expectation
        from the loss-episode analysis)."""
        cap = min(path.bdp_segments * SATURATION_BDP_FRACTION,
                  path.rwnd_segments)
        cwnd = float(path.iw_segments)
        prev = cwnd
        final = cwnd
        sent = 0.0
        before_final = 0.0
        rounds = 0
        baseline_cwnd = float(path.iw_segments)
        baseline_rounds = 0
        while sent < segments and cwnd < cap:
            rounds += 1
            prev = final
            final = cwnd
            before_final = sent
            sent += cwnd
            grown = cwnd * self.growth_factor(cwnd, rounds, path)
            cwnd = min(grown, path.rwnd_segments)
            # Track how many rounds a gamma-only ladder needs to reach
            # the same window — the difference is the rounds the growth
            # schedule (e.g. SUSS) compressed away.
            while baseline_cwnd < min(cwnd, cap) - 1e-9:
                baseline_cwnd *= path.gamma
                baseline_rounds += 1
        saturated = sent < segments
        saved = max(baseline_rounds - rounds, 0) if saturated else 0
        if not saturated and rounds > 0:
            # Data ran out: compare against the gamma-only round count
            # for the same amount of data.
            from repro.flowsim.model import rounds_for_data
            base = rounds_for_data(path.iw_segments, path.gamma, segments)
            saved = max(base - rounds, 0)
        return _Ladder(rounds=rounds, sent=min(sent, segments), cwnd=cwnd,
                       final_window=final, prev_window=prev,
                       sent_before_final=before_final,
                       saturated=saturated, rounds_saved=saved)

    # -- CSA00 loss machinery -----------------------------------------
    @staticmethod
    def expected_ss_segments(d: int, p: float) -> float:
        """Eq. 5: expected segments sent in the initial slow-start phase."""
        if p <= 0.0:
            return float(d)
        return min(float(d),
                   math.floor((1.0 - (1.0 - p) ** d) * (1.0 - p) / p + 1.0))

    @staticmethod
    def q_rto(p: float, w: float) -> float:
        """Eq. 17: probability a loss in a window of ``w`` needs an RTO."""
        if p <= 0.0:
            return 0.0
        w = max(w, 1.0)
        q = 1.0 - (1.0 - p) ** w
        if q <= 0.0:
            return 0.0
        numer = 1.0 + (1.0 - p) ** 3 * (1.0 - (1.0 - p) ** max(w - 3.0, 0.0))
        denom = q / (1.0 - (1.0 - p) ** 3)
        return min(1.0, numer / denom)

    @staticmethod
    def backoff_expansion(p: float) -> float:
        """Eq. 19: ``G(p)``, the doubling-backoff series of repeated RTOs."""
        return (1.0 + p + 2.0 * p ** 2 + 4.0 * p ** 3 + 8.0 * p ** 4
                + 16.0 * p ** 5 + 32.0 * p ** 6)

    def loss_episode_time(self, d: int, p: float, exit_cwnd: float,
                          path: PathParams) -> Seconds:
        """Eqs. 16–20: expected cost of the loss ending slow start."""
        if p <= 0.0:
            return 0.0
        rtt = path.effective_rtt
        lss = 1.0 - (1.0 - p) ** d
        to = max(2.0 * rtt, RTO_MIN)
        q = self.q_rto(p, exit_cwnd)
        e_zto = self.backoff_expansion(p) * to / (1.0 - p)
        return lss * (q * e_zto + (1.0 - q) * rtt)

    def steady_state_rate(self, p: float, path: PathParams) -> float:
        """Eqs. 22–24: PFTK98 steady-state send rate, segments/second,
        capped at the saturated pipe's goodput."""
        rtt = path.effective_rtt
        pipe_rate = path.goodput / path.mss
        if p <= 0.0:
            return pipe_rate
        to = max(2.0 * rtt, RTO_MIN)
        b = 2.0  # ACKed packets per ACK (CSA00's b)
        wmax = min(path.rwnd_segments,
                   path.bdp_segments * SATURATION_BDP_FRACTION)
        wp = (2.0 + b) / (3.0 * b) + math.sqrt(
            8.0 * (1.0 - p) / (3.0 * b * p) + ((2.0 + b) / (3.0 * b)) ** 2)
        if wp < wmax:
            rate = ((1.0 - p) / p + wp / 2.0 + self.q_rto(p, wp)) / (
                rtt * (b / 2.0 * wp + 1.0)
                + self.q_rto(p, wp) * self.backoff_expansion(p) * to
                / (1.0 - p))
        else:
            rate = ((1.0 - p) / p + wmax / 2.0 + self.q_rto(p, wmax)) / (
                rtt * (b / 8.0 * wmax + (1.0 - p) / (p * wmax) + 1.0)
                + self.q_rto(p, wmax) * self.backoff_expansion(p) * to
                / (1.0 - p))
        return min(max(rate, 1e-9), pipe_rate)

    # -- the model -----------------------------------------------------
    def estimate(self, size_bytes: Bytes, path: PathParams) -> FlowEstimate:
        d = path.segments_of(size_bytes)
        p = path.loss_rate
        rtt = path.effective_rtt

        handshake = path.rtt + 2.0 * path.header_bytes / path.btl_bw

        e_ss = self.expected_ss_segments(d, p)
        ladder = self._ladder(e_ss, path)

        if ladder.saturated:
            # The window reached the pipe: the rounds walked so far cost
            # one RTT each, everything beyond what they carried drains
            # at the bottleneck rate, and the tail still pays its final
            # flight plus ACK.
            ss_time = ladder.rounds * rtt
            remaining_ss = (e_ss - ladder.sent) * path.wire_segment
            ss_time += remaining_ss / path.btl_bw + rtt
        else:
            remaining = e_ss - ladder.sent_before_final
            ss_time = (max(ladder.rounds - 1, 0) * rtt
                       + self.final_round_time(remaining, ladder, path))
            # Delivery floor: the ladder's rounds cannot beat the
            # bottleneck's serialisation of the whole transfer.
            floor = d * path.wire_segment / path.btl_bw + rtt
            ss_time = max(ss_time, floor) if e_ss >= d else ss_time

        loss_time = self.loss_episode_time(d, p, ladder.cwnd, path)

        e_ca = max(float(d) - e_ss, 0.0)
        if e_ca > 0.0:
            ca_time = e_ca / self.steady_state_rate(p, path)
        else:
            ca_time = 0.0

        retransmits = p * d / (1.0 - p) if p > 0.0 else 0.0
        episodes = ((1.0 - (1.0 - p) ** d) + e_ca * p) if p > 0.0 else 0.0

        fct = handshake + ss_time + loss_time + ca_time
        return FlowEstimate(
            model=self.name, size_bytes=size_bytes, segments=d, fct=fct,
            handshake_time=handshake, ss_time=ss_time,
            loss_recovery_time=loss_time, ca_time=ca_time,
            ss_rounds=ladder.rounds, ss_segments=e_ss,
            exit_cwnd_segments=ladder.cwnd,
            pipe_saturated=ladder.saturated,
            retransmits=retransmits, loss_episodes=episodes,
            rounds_saved=ladder.rounds_saved)


register_model("csa00", Csa00Model)
