"""SUSS extension term for the CSA00 model: compressed slow start.

SUSS (paper Algorithm 1) multiplies ``cwnd`` by ``G = 2**(k+1)`` instead
of doubling whenever ``k`` extra doublings are provably safe, which in
the paper's design comes down to Condition 1: the previous round's ACK
train must fit within ``minRTT * fraction / 2**k``.  On an uncongested
path the ACK-train duration *is* the data train's serialisation time at
the bottleneck, ``cwnd * wire_segment / btl_bw`` — so the analytical
tier evaluates Condition 1 in closed form and reuses
:func:`repro.core.growth.growth_factor` (the exact Algorithm 1
implementation the packet tier's SUSS module uses) to pick ``G``.  The
first decision uses the initial window's train, so acceleration can
begin with round 2, matching the packet tier's first ``suss.decision``.

Condition 2 guards against queueing-delay growth; a single analytical
flow on the mean path sees no standing queue while its window is below
the BDP, which is precisely the regime where Condition 1 admits
acceleration — so Condition 2 holds throughout (``r = 0`` semantics).

Two things change relative to :class:`~repro.flowsim.csa00.Csa00Model`,
both via hooks — every CSA00 term (handshake, loss episode, steady
state) is inherited unchanged:

* the growth schedule (``G`` instead of ``gamma`` while Condition 1
  holds), which is what removes whole rounds from long transfers; and
* the final round's tail for flows that end inside an accelerated
  round: the red (paced) part of the round leaves on the pacing plan's
  schedule (Section 4: guard Eq. 12, rate Eq. 11) instead of waiting
  for the next ACK-clocked round, which is how SUSS speeds up even
  flows whose *round count* acceleration cannot shrink.

``rounds_saved`` in the resulting FlowEstimate reports how many
slow-start rounds the accelerated ladder compressed away relative to
traditional doubling — the quantity behind the paper's Fig. 11/12 FCT
improvements.
"""

from __future__ import annotations

from repro.core.growth import DEFAULT_K_MAX, growth_factor
from repro.core.units import Seconds
from repro.flowsim.csa00 import Csa00Model, _Ladder
from repro.flowsim.model import PathParams, register_model


class SussCsa00Model(Csa00Model):
    """CSA00 with SUSS's compressed slow-start growth schedule."""

    name = "csa00+suss"

    def __init__(self, k_max: int = DEFAULT_K_MAX) -> None:
        if k_max < 0:
            raise ValueError("k_max must be non-negative")
        self.k_max = k_max

    def growth_factor(self, cwnd: float, round_index: int,
                      path: PathParams) -> float:
        # Analytical ACK-train duration of the round just sent: cwnd
        # segments serialised at the bottleneck.
        dt_at = cwnd * path.wire_segment / path.btl_bw
        g = growth_factor(dt_at=dt_at, mo_rtt=path.rtt, min_rtt=path.rtt,
                          r=0, k_max=self.k_max)
        if g <= 2:
            return path.gamma
        # Delayed ACKs slow the clocked part of every scheme equally:
        # scale SUSS's G by the same per-round factor gamma/2 that turns
        # traditional doubling into 1.5x growth.
        return g * (path.gamma / 2.0)

    def final_round_time(self, remaining: float, ladder: _Ladder,
                         path: PathParams) -> Seconds:
        rtt = path.effective_rtt
        ack_clocked = super().final_round_time(remaining, ladder, path)
        if ladder.rounds <= 1:
            return ack_clocked
        w_prev = ladder.prev_window
        w_final = ladder.final_window
        blue = path.gamma * w_prev
        if w_final <= blue + 1e-9 or remaining <= blue:
            # Final round not accelerated, or the clocked (blue) part
            # alone carries the tail: plain CSA00 timing.
            return ack_clocked
        # The tail rides the pacing period (paper Fig. 5): the red data
        # starts after the previous round's ACK train plus the guard
        # interval (Eq. 12) and is paced at cwnd_target / minRTT
        # (Eq. 11); the last byte then pays its flight plus ACK.  The
        # paced schedule can promise more than the bottleneck delivers,
        # so the ACK-clocked drain bound stays a floor.
        dt_bat = w_prev * path.wire_segment / path.btl_bw
        guard = max(blue / (2.0 * w_final) * path.rtt - dt_bat / 2.0, 0.0)
        red = remaining - blue
        pace_time = red / w_final * path.rtt
        paced = min(dt_bat + guard + pace_time + rtt, rtt + rtt)
        return max(paced, ack_clocked)


register_model("csa00+suss", SussCsa00Model)
