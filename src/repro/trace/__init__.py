"""Structured tracing and CSV export."""

from repro.trace.csvout import (
    CsvTraceSink,
    write_events,
    write_multi_timeseries,
    write_timeseries,
)
from repro.trace.events import EventLog, TraceEvent

__all__ = [
    "CsvTraceSink",
    "EventLog",
    "TraceEvent",
    "write_events",
    "write_multi_timeseries",
    "write_timeseries",
]
