"""Structured event log — the "printk to the kernel log" analogue.

The paper modifies the kernel to emit TCP state into the kernel log and
parses it afterwards; :class:`EventLog` plays that role.  Components may
record arbitrary tagged events; experiments filter by flow and kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One logged event."""

    time: float
    flow_id: int
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only event log with simple filtering."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, time: float, flow_id: int, kind: str, **fields: Any) -> None:
        self.events.append(TraceEvent(time, flow_id, kind, fields))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def filter(self, flow_id: Optional[int] = None,
               kind: Optional[str] = None) -> List[TraceEvent]:
        out = self.events
        if flow_id is not None:
            out = [e for e in out if e.flow_id == flow_id]
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        return list(out)

    def kinds(self) -> List[str]:
        return sorted({e.kind for e in self.events})
