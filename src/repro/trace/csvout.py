"""CSV export for time series and event logs (for external plotting)."""

from __future__ import annotations

import csv
from typing import Dict, Iterable, TextIO

from repro.metrics.timeseries import TimeSeries
from repro.trace.events import EventLog


def write_timeseries(out: TextIO, series: TimeSeries,
                     value_label: str = "value") -> None:
    """Write one time series as ``time,<value_label>`` rows."""
    writer = csv.writer(out)
    writer.writerow(["time", value_label])
    for t, v in series:
        writer.writerow([f"{t:.6f}", repr(v)])


def write_multi_timeseries(out: TextIO, series_by_name: Dict[str, TimeSeries],
                           interval: float) -> None:
    """Write several series step-resampled onto a common time grid."""
    if not series_by_name:
        raise ValueError("need at least one series")
    if interval <= 0:
        raise ValueError("interval must be positive")
    t_start = min(s.times[0] for s in series_by_name.values() if not s.empty)
    t_end = max(s.times[-1] for s in series_by_name.values() if not s.empty)
    names = sorted(series_by_name)
    writer = csv.writer(out)
    writer.writerow(["time"] + names)
    t = t_start
    while t <= t_end:
        row = [f"{t:.6f}"]
        for name in names:
            value = series_by_name[name].value_at(t)
            row.append("" if value is None else repr(value))
        writer.writerow(row)
        t += interval


def write_events(out: TextIO, log: EventLog,
                 field_names: Iterable[str] = ()) -> None:
    """Write an event log as CSV with selected extra fields as columns."""
    extra = list(field_names)
    writer = csv.writer(out)
    writer.writerow(["time", "flow_id", "kind"] + extra)
    for event in log:
        row = [f"{event.time:.6f}", event.flow_id, event.kind]
        row.extend(event.fields.get(name, "") for name in extra)
        writer.writerow(row)
