"""CSV export for time series, event logs, and live trace streams."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, Optional, TextIO, Union

from repro.metrics.timeseries import TimeSeries
from repro.obs.records import TraceRecord
from repro.trace.events import EventLog


def write_timeseries(out: TextIO, series: TimeSeries,
                     value_label: str = "value") -> None:
    """Write one time series as ``time,<value_label>`` rows."""
    writer = csv.writer(out)
    writer.writerow(["time", value_label])
    for t, v in series:
        writer.writerow([f"{t:.6f}", repr(v)])


def write_multi_timeseries(out: TextIO, series_by_name: Dict[str, TimeSeries],
                           interval: float) -> None:
    """Write several series step-resampled onto a common time grid."""
    if not series_by_name:
        raise ValueError("need at least one series")
    if interval <= 0:
        raise ValueError("interval must be positive")
    t_start = min(s.times[0] for s in series_by_name.values() if not s.empty)
    t_end = max(s.times[-1] for s in series_by_name.values() if not s.empty)
    names = sorted(series_by_name)
    writer = csv.writer(out)
    writer.writerow(["time"] + names)
    t = t_start
    while t <= t_end:
        row = [f"{t:.6f}"]
        for name in names:
            value = series_by_name[name].value_at(t)
            row.append("" if value is None else repr(value))
        writer.writerow(row)
        t += interval


def write_events(out: TextIO, log: EventLog,
                 field_names: Iterable[str] = ()) -> None:
    """Write an event log as CSV with selected extra fields as columns."""
    extra = list(field_names)
    writer = csv.writer(out)
    writer.writerow(["time", "flow_id", "kind"] + extra)
    for event in log:
        row = [f"{event.time:.6f}", event.flow_id, event.kind]
        row.extend(event.fields.get(name, "") for name in extra)
        writer.writerow(row)


class CsvTraceSink:
    """A :class:`repro.obs.TraceSink` that writes records as CSV rows.

    The former ad-hoc CSV event writer recast as a live sink: wire it into
    ``Observability`` and every emitted :class:`TraceRecord` becomes a
    ``time,flow,kind,<extra fields>`` row.  Extra fields not present on a
    record are written as empty cells, mirroring :func:`write_events`.
    The provenance columns ``eid`` and ``peid`` may be requested in
    ``field_names``; they resolve from the record's provenance slots,
    not its fields mapping.
    """

    def __init__(self, out: Union[str, Path, TextIO],
                 field_names: Iterable[str] = ()) -> None:
        self.field_names = list(field_names)
        self._owns_stream = isinstance(out, (str, Path))
        self._stream: TextIO = (open(out, "w", newline="")
                                if self._owns_stream else out)
        self._writer = csv.writer(self._stream)
        self._writer.writerow(["time", "flow", "kind"] + self.field_names)
        self.rows = 0

    def emit(self, record: TraceRecord) -> None:
        row = [f"{record.time:.9f}", record.flow, record.kind]
        for name in self.field_names:
            if name == "eid":
                row.append(record.eid)
            elif name == "peid":
                row.append(record.parent_eid)
            else:
                row.append(record.fields.get(name, ""))
        self._writer.writerow(row)
        self.rows += 1

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()
        else:
            self._stream.flush()
