"""Command-line interface: run scenarios, sweeps, and paper experiments.

Usage (after ``pip install -e .``)::

    python -m repro list-scenarios
    python -m repro list-cc
    python -m repro run --scenario google-tokyo/wired --cc cubic+suss \
        --size 2000000
    python -m repro sweep --scenario google-tokyo/4g \
        --ccs cubic,cubic+suss --sizes 1000000,2000000 --iterations 3
    python -m repro experiment fig10
    python -m repro validate --quick --json
    python -m repro lint src tests --json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.campaign import ProgressReporter, ResultStore, stderr_reporter
from repro.cc import available
from repro.experiments.report import pct, render_table
from repro.experiments.runner import run_single_flow, sweep_summaries
from repro.trace.csvout import write_multi_timeseries
from repro.core.units import BITS_PER_BYTE, MB, MBIT, MBPS, MILLIS_PER_SECOND
from repro.workloads import INTERNET_SCENARIOS
from repro.workloads.scenarios import LINK_NAMES, SERVER_NAMES


def _campaign_kwargs(args: argparse.Namespace) -> dict:
    """Translate shared --jobs/--cache-dir/--quiet flags into runner kwargs."""
    store = None
    if getattr(args, "cache_dir", None):
        store = ResultStore(args.cache_dir)
    progress: Optional[ProgressReporter]
    if getattr(args, "quiet", False):
        progress = ProgressReporter(stream=None)
    else:
        progress = stderr_reporter(min_interval=0.5)
    return {"jobs": args.jobs, "store": store, "progress": progress}


def _ledger_telemetry(args: argparse.Namespace, tool: str):
    """(RunTelemetry, MetricsServer) for a --ledger-dir run, else (None, None).

    The telemetry writes live ``status.json`` snapshots into the ledger
    directory (what ``repro top`` watches); ``--metrics-port`` addition-
    ally serves the live registry as OpenMetrics for scrapers.
    """
    if not getattr(args, "ledger_dir", None):
        return None, None
    from repro.obs.export import MetricsServer, render_openmetrics
    from repro.obs.runtime import RunTelemetry

    os.makedirs(args.ledger_dir, exist_ok=True)
    telemetry = RunTelemetry(
        tool=tool, status_path=os.path.join(args.ledger_dir, "status.json"))
    server = None
    if getattr(args, "metrics_port", None) is not None:
        server = MetricsServer(
            lambda: render_openmetrics(telemetry.metrics),
            port=args.metrics_port)
        server.start()
        print(f"serving OpenMetrics at {server.url}", file=sys.stderr)
    return telemetry, server


def _finish_ledger(args: argparse.Namespace, telemetry, server, *,
                   mode: str, fingerprint: str, base_seed: int,
                   summary: Optional[dict] = None) -> Optional[str]:
    """Write the run ledger + execution sidecar after a completed run."""
    if server is not None:
        server.close()
    if telemetry is None:
        return None
    from repro.obs.ledger import build_ledger, write_ledger

    ledger = build_ledger(telemetry.tool, mode, fingerprint, base_seed,
                          telemetry.jobs, telemetry.values, summary=summary)
    path = write_ledger(ledger, args.ledger_dir,
                        execution=telemetry.execution_record())
    print(f"run ledger: {path} (id {ledger.ledger_id[:16]})",
          file=sys.stderr)
    return path


def _scenario(name: str):
    if name not in INTERNET_SCENARIOS:
        known = ", ".join(sorted(INTERNET_SCENARIOS))
        raise SystemExit(f"unknown scenario {name!r}; known: {known}")
    return INTERNET_SCENARIOS[name]


# ----------------------------------------------------------------------
def cmd_list_scenarios(args: argparse.Namespace) -> int:
    rows = []
    for name, sc in sorted(INTERNET_SCENARIOS.items()):
        rows.append([name, f"{sc.rtt * MILLIS_PER_SECOND:.0f} ms",
                     f"{sc.btl_bw / MBPS:.0f} Mbps",
                     f"{sc.bw_variation:.2f}", f"{sc.jitter * MILLIS_PER_SECOND:.1f} ms",
                     f"{sc.buffer_bdp:.2f} BDP", sc.client_location])
    print(render_table(
        ["scenario", "RTT", "BtlBw", "bw var", "jitter", "buffer",
         "client"], rows,
        title="Internet-scale scenarios (paper Figs. 17-18)"))
    return 0


def cmd_list_cc(args: argparse.Namespace) -> int:
    for name in available():
        print(name)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    scenario = _scenario(args.scenario)
    result = run_single_flow(scenario, args.cc, args.size, seed=args.seed,
                             collect=bool(args.csv))
    if not result.completed:
        print("flow did not complete within the deadline", file=sys.stderr)
        return 1
    print(f"scenario:        {scenario.name}")
    print(f"cc:              {args.cc}")
    print(f"size:            {args.size} bytes")
    print(f"fct:             {result.fct:.4f} s")
    print(f"goodput:         {args.size / result.fct * BITS_PER_BYTE / MBIT:.2f} Mbit/s")
    print(f"loss rate:       {result.loss_rate * 100:.3f}%")
    print(f"retransmissions: {result.retransmissions}")
    print(f"timeouts:        {result.rto_count}")
    if args.csv:
        trace = result.telemetry.flow(1)
        with open(args.csv, "w") as out:
            write_multi_timeseries(out, {"cwnd": trace.cwnd,
                                         "rtt": trace.rtt,
                                         "delivered": trace.delivered},
                                   interval=args.csv_interval)
        print(f"trace written:   {args.csv}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    scenario = _scenario(args.scenario)
    ccs = args.ccs.split(",")
    sizes = [int(s) for s in args.sizes.split(",")]
    summaries = sweep_summaries(scenario, ccs, sizes, args.iterations,
                                args.seed, **_campaign_kwargs(args))
    rows = []
    for size in sizes:
        row: List[object] = [size / MB]
        for cc in ccs:
            summary = summaries[(cc, size)]
            row.append(f"{summary.mean:.3f}±{summary.std:.3f}")
        if "cubic" in ccs and "cubic+suss" in ccs:
            base = summaries[("cubic", size)].mean
            suss = summaries[("cubic+suss", size)].mean
            row.append(pct((base - suss) / base))
        rows.append(row)
    headers = ["size (MB)"] + [f"{cc} FCT (s)" for cc in ccs]
    if "cubic" in ccs and "cubic+suss" in ccs:
        headers.append("SUSS improvement")
    print(render_table(headers, rows,
                       title=f"FCT sweep — {scenario.name} "
                             f"({args.iterations} iterations)"))
    return 0


#: default location of the committed cross-validation golden report.
FLOWSIM_GOLDEN = os.path.join("tests", "golden", "flowsim_crossval.json")
TOPOGEN_GOLDEN = os.path.join("tests", "golden", "topogen_specs.json")


def _flowsim_path(args: argparse.Namespace):
    """Resolve --scenario / --rtt / --bw / --loss into PathParams."""
    from repro.flowsim.model import PathParams

    if args.scenario:
        return PathParams.from_scenario(_scenario(args.scenario),
                                        delayed_ack=args.delayed_ack)
    return PathParams(rtt=args.rtt, btl_bw=args.bw * MBPS,
                      loss_rate=args.loss, delayed_ack=args.delayed_ack)


def cmd_flowsim(args: argparse.Namespace) -> int:
    """The analytical fidelity tier: model query, fleet sweep, crossval."""
    from repro.flowsim.model import available_models, create_model

    if args.cross_validate:
        return _flowsim_crossval(args)

    path = _flowsim_path(args)
    if args.size is not None:
        # Single-model query: one closed-form evaluation, full breakdown.
        model = create_model(args.model)
        est = model.estimate(args.size, path)
        if args.as_json:
            print(json.dumps(est.__dict__, sort_keys=True))
            return 0
        print(f"model:           {est.model}")
        print(f"size:            {est.size_bytes} bytes "
              f"({est.segments} segments)")
        print(f"fct:             {est.fct:.4f} s")
        print(f"  handshake:     {est.handshake_time:.4f} s")
        print(f"  slow start:    {est.ss_time:.4f} s "
              f"({est.ss_rounds} rounds)")
        print(f"  loss recovery: {est.loss_recovery_time:.4f} s")
        print(f"  steady state:  {est.ca_time:.4f} s")
        print(f"exit cwnd:       {est.exit_cwnd_segments:.0f} segments"
              + (" (pipe saturated)" if est.pipe_saturated else ""))
        if est.rounds_saved:
            print(f"rounds saved:    {est.rounds_saved} (vs traditional)")
        if est.retransmits:
            print(f"retransmits:     {est.retransmits:.2f} expected")
        return 0

    # Fleet sweep.
    import time
    from repro.flowsim.driver import SweepConfig, run_sweep, sweep_to_value

    models = tuple(args.models.split(","))
    for name in models:
        if name not in available_models():
            raise SystemExit(f"unknown flow model {name!r}; "
                             f"known: {', '.join(available_models())}")
    config = SweepConfig(path=path, flows=args.flows, size_dist=args.dist,
                         seed=args.seed, models=models)
    start = time.perf_counter()  # noqa: DET001 - CLI-level throughput report
    result = run_sweep(config)
    elapsed = time.perf_counter() - start  # noqa: DET001 - CLI-level throughput report
    value = sweep_to_value(result)
    if getattr(args, "ledger_dir", None):
        # Ledger the sweep exactly as the campaign tier would hash it:
        # the sweep-job spec is the content address, the value its
        # digest input (wall-clock 'elapsed' never enters the ledger).
        import dataclasses

        from repro.campaign.spec import flowsim_sweep_job
        from repro.campaign.store import code_fingerprint
        from repro.obs.ledger import build_ledger, write_ledger

        spec = flowsim_sweep_job(dataclasses.asdict(path), args.flows,
                                 size_dist=args.dist, models=models,
                                 seed=args.seed)
        ledger = build_ledger(
            "flowsim", "sweep", code_fingerprint(), args.seed,
            [{"hash": spec.job_hash, "kind": spec.kind,
              "label": spec.label}], [value])
        ledger_path = write_ledger(ledger, args.ledger_dir)
        print(f"run ledger: {ledger_path} (id {ledger.ledger_id[:16]})",
              file=sys.stderr)
    if args.as_json:
        value["elapsed"] = elapsed
        print(json.dumps(value, sort_keys=True))
        return 0
    rows = []
    for name in models:
        fleet = result.fleets[name]
        s = fleet.fct_summary()
        rows.append([name, f"{s.mean:.4f}", f"{s.median:.4f}",
                     f"{s.p95:.4f}", f"{fleet.mean_rounds_saved:.2f}"])
    print(render_table(
        ["model", "mean FCT (s)", "median", "p95", "rounds saved"], rows,
        title=f"flowsim sweep — {args.flows} {args.dist} flows, "
              f"seed={args.seed}"))
    if "csa00" in result.fleets and "csa00+suss" in result.fleets:
        print(f"SUSS mean-FCT improvement: {pct(result.improvement())}")
    modelled = args.flows * len(models)
    print(f"modelled {modelled} flows in {elapsed:.2f}s "
          f"({modelled / elapsed:,.0f} flows/sec)")
    return 0


def _flowsim_crossval(args: argparse.Namespace) -> int:
    """--cross-validate: packet-vs-analytical agreement on the golden set."""
    from repro.flowsim.crossval import (
        all_cases,
        quick_cases,
        run_crossval,
    )

    cases = quick_cases() if args.quick else all_cases()
    report = run_crossval(cases, tolerance=args.tolerance)
    payload = report.to_dict()
    if args.update_golden:
        path = args.update_golden
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"golden cross-validation report written: {path}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.as_json:
        print(json.dumps(payload, sort_keys=True))
    else:
        rows = [[c.name, c.cc, f"{c.packet_median:.4f}",
                 f"{c.analytical_fct:.4f}", pct(c.rel_median_error),
                 ("ok" if c.within(report.tolerance) else "FAIL")
                 if c.gated else "info"]
                for c in report.cases]
        print(render_table(
            ["case", "cc", "packet median (s)", "analytical (s)",
             "rel error", "status"], rows,
            title="flowsim cross-validation (packet vs analytical)"))
        print(f"worst: {report.worst_case} ({pct(report.max_rel_error)}); "
              f"tolerance {pct(report.tolerance)}; "
              f"Cliff's delta {report.delta:+.3f}")
        for cls, stats in report.class_errors().items():
            print(f"  {cls}: {int(stats['cells'])} cells, "
                  f"mean error {pct(stats['mean_rel_error'])}, "
                  f"max {pct(stats['max_rel_error'])}")
    if not report.passed:
        print("cross-validation FAILED the tolerance gate", file=sys.stderr)
        return 1
    return 0


#: experiment name -> (module path, run kwargs builder)
EXPERIMENTS = {
    "fig01": "fig01_motivation",
    "fig02": "fig02_competition",
    "fig09": "fig09_cwnd_rtt",
    "fig10": "fig10_delivered",
    "fig11": "fig11_12_fct",
    "fig13": "fig13_large_flow",
    "fig14": "fig14_loss",
    "fig15": "fig15_fairness",
    "fig16": "fig16_stability_trace",
    "table1": "table1_stability",
    "fig18": "fig17_18_all_scenarios",
    "topo": "topo_suite",
    "kmax": "ablation_kmax",
    "btlbw": "ablation_btlbw",
    "aqm": "ablation_aqm",
    "delack": "ablation_delack",
    "related-work": "ext_related_work",
    "burstiness": "ext_burstiness",
    "crosstraffic": "ext_crosstraffic",
    "traffic-mix": "ext_traffic_mix",
}


def cmd_experiment(args: argparse.Namespace) -> int:
    import importlib
    module_name = EXPERIMENTS.get(args.name)
    if module_name is None:
        raise SystemExit(f"unknown experiment {args.name!r}; "
                         f"known: {', '.join(sorted(EXPERIMENTS))}")
    module = importlib.import_module(f"repro.experiments.{module_name}")
    if args.name == "fig02":
        results = module.run_comparison()
    elif args.name == "fig18":
        results = module.run_matrix(**_campaign_kwargs(args))
        print(module.format_fct_report(results))
        print()
        print(module.format_loss_report(results))
        return 0
    elif args.name == "table1":
        results = module.run(**_campaign_kwargs(args))
    elif args.name == "topo":
        module.run(**_campaign_kwargs(args))
        return 0
    else:
        results = module.run()
    print(module.format_report(results))
    return 0


def _campaign_topo(args: argparse.Namespace) -> int:
    """``repro campaign --topo``: the topogen scenario matrix, cached."""
    from repro.experiments import topo_suite
    from repro.workloads.topo import get_topo_scenario, registered_specs

    names = (sorted(registered_specs()) if args.topo == "all"
             else args.topo.split(","))
    for name in names:
        try:
            get_topo_scenario(name)
        except KeyError as exc:
            raise SystemExit(f"repro campaign: {exc.args[0]}")
    sizes = [int(s) for s in args.sizes.split(",")]

    if args.resume and not os.path.isdir(args.cache_dir):
        raise SystemExit(f"--resume: cache directory {args.cache_dir!r} "
                         f"does not exist (nothing to resume)")
    store = None if args.no_cache else ResultStore(args.cache_dir)
    progress = (ProgressReporter(stream=None) if args.quiet
                else stderr_reporter(min_interval=0.5))
    telemetry, server = _ledger_telemetry(args, "campaign")
    try:
        for size in sizes:
            rows = topo_suite.run_suite(
                scenarios=names, size=size, iterations=args.iterations,
                base_seed=args.seed, cross_load=args.cross_load,
                jobs=args.jobs, store=store, progress=progress,
                timeout=args.timeout, retries=args.retries,
                telemetry=telemetry)
            print(topo_suite.format_report(rows))
            print()
    except RuntimeError as exc:
        if server is not None:
            server.close()
        raise SystemExit(f"campaign failed: {exc}\n"
                         f"(completed jobs stay cached; re-run with "
                         f"--resume to retry only the rest)")
    from repro.campaign import code_fingerprint
    _finish_ledger(args, telemetry, server, mode="topo",
                   fingerprint=code_fingerprint(), base_seed=args.seed)
    stats = progress.stats()
    print(f"campaign: total={stats['total']} executed={stats['executed']} "
          f"cached={stats['cached']} failed={stats['failed']} "
          f"elapsed={stats['elapsed']:.1f}s")
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, sort_keys=True)
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run a (sub-)matrix of the Fig. 17/18 evaluation as a cached campaign."""
    from repro.experiments import fig17_18_all_scenarios

    if args.topo:
        return _campaign_topo(args)
    servers = args.servers.split(",")
    links = args.links.split(",")
    sizes = [int(s) for s in args.sizes.split(",")]
    schemes = tuple(args.ccs.split(","))
    for server in servers:
        for link in links:
            _scenario(f"{server}/{link}")

    if args.resume and not os.path.isdir(args.cache_dir):
        raise SystemExit(f"--resume: cache directory {args.cache_dir!r} "
                         f"does not exist (nothing to resume)")
    store = None if args.no_cache else ResultStore(args.cache_dir)
    progress = (ProgressReporter(stream=None) if args.quiet
                else stderr_reporter(min_interval=0.5))
    telemetry, server = _ledger_telemetry(args, "campaign")
    try:
        rows = fig17_18_all_scenarios.run_matrix(
            servers=servers, links=links, sizes=sizes, schemes=schemes,
            iterations=args.iterations, base_seed=args.seed, jobs=args.jobs,
            store=store, progress=progress, timeout=args.timeout,
            retries=args.retries, telemetry=telemetry)
    except RuntimeError as exc:
        if server is not None:
            server.close()
        stats = progress.stats()
        if args.stats_json:
            with open(args.stats_json, "w", encoding="utf-8") as fh:
                json.dump(stats, fh, sort_keys=True)
        raise SystemExit(f"campaign failed: {exc}\n"
                         f"(completed jobs stay cached; re-run with "
                         f"--resume to retry only the rest)")
    from repro.campaign import code_fingerprint
    _finish_ledger(args, telemetry, server, mode="matrix",
                   fingerprint=code_fingerprint(), base_seed=args.seed)
    if all(s in rows[0].fct for s in ("cubic", "cubic+suss")):
        print(fig17_18_all_scenarios.format_fct_report(rows))
        print()
    print(fig17_18_all_scenarios.format_loss_report(rows))
    stats = progress.stats()
    print(f"campaign: total={stats['total']} executed={stats['executed']} "
          f"cached={stats['cached']} failed={stats['failed']} "
          f"elapsed={stats['elapsed']:.1f}s")
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, sort_keys=True)
    return 0


def _topo_spec(args: argparse.Namespace):
    """Resolve --spec PATH / --scenario NAME into a validated TopologySpec."""
    from repro.workloads.topo import TopologySpec, get_topo_scenario
    from repro.net.topogen.spec import TopologySpecError

    if args.spec:
        try:
            with open(args.spec, "r", encoding="utf-8") as fh:
                return TopologySpec.from_json(fh.read())
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise SystemExit(f"repro topo: bad spec file {args.spec!r}: "
                             f"{exc}")
    if not args.scenario:
        raise SystemExit("repro topo: --scenario or --spec is required")
    try:
        return get_topo_scenario(args.scenario)
    except KeyError as exc:
        raise SystemExit(f"repro topo: {exc.args[0]}")


def cmd_topo(args: argparse.Namespace) -> int:
    """Declarative topology scenarios: list, render, validate, run."""
    from repro.workloads.topo import registered_specs, routing_table_json

    if args.action == "list":
        rows = []
        for name, spec in sorted(registered_specs().items()):
            rows.append([name, spec.scenario_class, str(len(spec.nodes)),
                         str(len(spec.links)), str(len(spec.flows)),
                         str(len(spec.cross_traffic)),
                         spec.content_hash[:12]])
        print(render_table(
            ["scenario", "class", "nodes", "links", "flows", "cross",
             "hash"], rows, title="Registered topogen scenarios"))
        return 0
    if args.action == "golden":
        path = args.out or TOPOGEN_GOLDEN
        payload = {}
        for name, spec in sorted(registered_specs().items()):
            payload[name] = {
                "content_hash": spec.content_hash,
                "spec": spec.canonical(),
                "routes": json.loads(routing_table_json(spec)),
            }
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"golden topogen specs written: {path} "
              f"({len(payload)} scenarios)")
        return 0

    spec = _topo_spec(args)
    if args.action == "show":
        print(spec.to_json())
        if not args.as_json:
            print(f"content hash: {spec.content_hash}", file=sys.stderr)
        return 0
    if args.action == "routes":
        print(routing_table_json(spec))
        return 0
    if args.action == "validate":
        # construction already validated; report the canonical identity
        print(f"{spec.name}: OK ({spec.scenario_class}; "
              f"{len(spec.nodes)} nodes, {len(spec.links)} links)")
        print(f"content hash: {spec.content_hash}")
        return 0

    # action == "run": one foreground flow with the spec's cross traffic
    from repro.experiments.runner import run_topo_flow

    result = run_topo_flow(spec, args.cc, args.size, seed=args.seed,
                           cross_load=args.cross_load)
    if args.as_json:
        print(json.dumps(result, sort_keys=True))
        return 0 if result["completed"] else 1
    if not result["completed"]:
        print("flow did not complete within the deadline", file=sys.stderr)
        return 1
    print(f"scenario:        {result['scenario']} "
          f"({result['scenario_class']})")
    print(f"topo hash:       {result['topo_hash'][:12]}")
    print(f"path RTT:        {result['rtt'] * MILLIS_PER_SECOND:.1f} ms")
    print(f"fct:             {result['fct']:.4f} s")
    print(f"retransmissions: {result['retransmissions']} "
          f"(RTOs: {result['rto_count']})")
    print(f"loss rate:       {result['loss_rate'] * 100:.3f}%")
    print(f"cross flows:     {result['cross_flows_completed']}"
          f"/{result['cross_flows']} completed")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Trace one download as canonical JSONL, or refresh the golden store."""
    from repro.experiments import goldens

    if args.update_golden:
        from repro.obs.golden import load_digests, stored_schema
        from repro.obs.records import SCHEMA_VERSION

        names = args.golden.split(",") if args.golden else None
        before = load_digests(goldens.DEFAULT_GOLDEN_DIR)
        schema_before = stored_schema(goldens.DEFAULT_GOLDEN_DIR)
        digests = goldens.update_goldens(names=names)
        if schema_before != SCHEMA_VERSION:
            print(f"schema: v{schema_before} -> v{SCHEMA_VERSION}")
        for name in sorted(digests):
            old = before.get(name, {}).get("digest")
            if old is None:
                print(f"{name}: (new) -> {digests[name]}")
            elif old == digests[name]:
                print(f"{name}: {digests[name]} (unchanged)")
            else:
                print(f"{name}: {old} -> {digests[name]}")
        return 0
    if not args.scenario:
        raise SystemExit("repro trace: --scenario is required "
                         "(or use --update-golden)")
    from repro.obs import (
        DigestSink,
        JsonlSink,
        Observability,
        TeeSink,
        Tracer,
        parse_kinds,
    )

    scenario = _scenario(args.scenario)
    try:
        kinds = parse_kinds(args.kinds) if args.kinds else None
    except ValueError as exc:
        raise SystemExit(str(exc))
    digest_sink = DigestSink()
    jsonl = JsonlSink(args.out) if args.out else None
    sink = digest_sink if jsonl is None else TeeSink([jsonl, digest_sink])
    obs = Observability(tracer=Tracer(sink, kinds))
    result = run_single_flow(scenario, args.cc, args.size, seed=args.seed,
                             obs=obs)
    obs.close()
    if not result.completed:
        print("flow did not complete within the deadline", file=sys.stderr)
        return 1
    if jsonl is not None:
        print(f"trace written:   {args.out} ({jsonl.lines} records)")
    print(f"records:         {digest_sink.records}")
    print(f"trace digest:    {digest_sink.digest()}")
    print(f"fct:             {result.fct:.4f} s")
    return 0


def _load_trace_arg(path: str):
    """Load a JSONL trace argument (``-`` reads stdin)."""
    from repro.obs.analyze import load_trace

    if path == "-":
        return load_trace(sys.stdin)
    if not os.path.exists(path):
        raise SystemExit(f"repro: trace file {path!r} does not exist")
    try:
        return load_trace(path)
    except (ValueError, KeyError) as exc:
        raise SystemExit(f"repro: {path!r} is not a JSONL trace: {exc}")


def cmd_analyze(args: argparse.Namespace) -> int:
    """Whole-trace analysis: flow summaries, phases, retx classes,
    anomaly findings."""
    from repro.obs.analyze import analyze_records

    analysis = analyze_records(_load_trace_arg(args.trace))
    if args.as_json:
        print(json.dumps(analysis.to_dict(), sort_keys=True))
    else:
        print(analysis.render_text())
    if args.fail_on_findings and any(
            f.severity in ("warning", "error") for f in analysis.findings):
        return 1
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Causal chain for one event, or a narrated flow timeline."""
    from repro.obs.analyze import analyze_records, render_flow
    from repro.obs.causal import (
        CausalIndex,
        explain_event,
        find_record,
        render_explanation,
    )

    records = _load_trace_arg(args.trace)
    index = CausalIndex(records)

    if args.event is not None:
        explanation = explain_event(index, args.event)
        if args.as_json:
            print(json.dumps(explanation, sort_keys=True))
        else:
            print(render_explanation(explanation))
        return 0 if explanation["found"] else 1

    analysis = analyze_records(records)
    if args.flow is not None and args.flow not in analysis.flows:
        known = ", ".join(str(f) for f in sorted(analysis.flows)) or "(none)"
        raise SystemExit(f"repro explain: no flow {args.flow} in trace; "
                         f"flows present: {known}")
    flows = ([args.flow] if args.flow is not None
             else sorted(analysis.flows))

    at_context = None
    if args.at is not None:
        anchor = find_record(records, at=args.at, flow=args.flow)
        if anchor is None:
            raise SystemExit(f"repro explain: no records at or before "
                             f"t={args.at}")
        at_context = {
            "t": args.at,
            "record": anchor.to_dict(),
            "phase": {str(f): analysis.flows[f].phase_at(args.at)
                      for f in flows},
            "chain": explain_event(index, anchor.eid),
        }

    if args.as_json:
        out = {"flows": {str(f): analysis.flows[f].to_dict()
                         for f in flows}}
        if at_context is not None:
            out["at"] = at_context
        print(json.dumps(out, sort_keys=True))
        return 0
    for flow in flows:
        print(render_flow(analysis.flows[flow]))
    if at_context is not None:
        print()
        phases = ", ".join(f"flow {f}: {p}"
                           for f, p in sorted(at_context["phase"].items()))
        print(f"at t={args.at}: {phases}")
        print(f"most recent event before t={args.at}:")
        print(render_explanation(at_context["chain"]))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run an experiment (or one download) under the event profiler.

    Profiling is in-process: with ``--jobs`` above 1 the worker
    processes' events do not reach this report, so the default is the
    inline runner.
    """
    import importlib

    from repro.obs import profile as obs_profile

    profiler = obs_profile.install_global()
    try:
        if args.name == "single":
            if not args.scenario:
                raise SystemExit("repro profile single: --scenario required")
            scenario = _scenario(args.scenario)
            result = run_single_flow(scenario, args.cc, args.size,
                                     seed=args.seed)
            if not result.completed:
                print("flow did not complete within the deadline",
                      file=sys.stderr)
                return 1
        else:
            module = importlib.import_module(
                f"repro.experiments.{EXPERIMENTS[args.name]}")
            if args.name == "fig02":
                module.run_comparison()
            elif args.name == "fig18":
                module.run_matrix(**_campaign_kwargs(args))
            elif args.name in ("table1", "topo"):
                module.run(**_campaign_kwargs(args))
            else:
                module.run()
    finally:
        obs_profile.clear_global()
    if args.collapsed:
        print("\n".join(profiler.collapsed_stacks()))
    else:
        print(profiler.format_report(top=args.top, sort=args.sort))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Statistical validation of the paper's claims (repro.validate)."""
    import dataclasses

    from repro.validate import (
        FAIL,
        INCONCLUSIVE,
        BaselineStore,
        check_perf,
        detect_drift,
        iter_claims,
        load_perf_baseline,
        measure_core_speed,
        report_json,
        resolve_fingerprint,
        run_validation,
    )

    if args.list:
        for claim in iter_claims():
            print(f"{claim.id:32s} {claim.paper:10s} {claim.kind:15s} "
                  f"[{claim.harness}]")
        return 0

    mode = "full" if args.full else "quick"
    claim_ids = args.claims.split(",") if args.claims else None
    try:
        iter_claims(claim_ids)
    except KeyError as exc:
        raise SystemExit(f"repro validate: {exc.args[0]}")

    telemetry, server = _ledger_telemetry(args, "validate")
    try:
        report = run_validation(
            claim_ids, mode=mode, base_seed=args.seed,
            timeout=args.timeout, retries=args.retries,
            telemetry=telemetry, **_campaign_kwargs(args))
    except RuntimeError as exc:
        if server is not None:
            server.close()
        raise SystemExit(f"repro validate: {exc}")

    # Ledger of the as-run verdicts (pre drift/perf patching — those are
    # environment-dependent overlays; the ledger records the
    # deterministic statistical outcome).
    verdict_counts: dict = {}
    for verdict in report.verdicts:
        verdict_counts[verdict.verdict] = (
            verdict_counts.get(verdict.verdict, 0) + 1)
    _finish_ledger(
        args, telemetry, server, mode=mode,
        fingerprint=report.code_fingerprint, base_seed=args.seed,
        summary={"claims": {v.claim_id: v.verdict
                            for v in report.verdicts},
                 "verdict_counts": dict(sorted(verdict_counts.items()))})

    if args.against:
        try:
            fingerprint = resolve_fingerprint(args.against,
                                              args.baseline_fingerprint)
        except (FileNotFoundError, KeyError) as exc:
            raise SystemExit(f"repro validate: {exc.args[0]}")
        baselines = BaselineStore(args.against, fingerprint)
        patched = []
        for verdict in report.verdicts:
            record = baselines.load(verdict.claim_id)
            if record is None:
                patched.append(verdict)
                continue
            drift = detect_drift(verdict.claim_id, record["samples"],
                                 verdict.treatment_samples,
                                 base_seed=args.seed)
            drift["fingerprint"] = fingerprint
            changes = {"drift": drift}
            if drift["drifted"]:
                changes["verdict"] = FAIL
                changes["reason"] = (
                    f"treatment distribution drifted from recorded "
                    f"baseline (p={drift['p_value']:.4f}, cliffs delta "
                    f"{drift['cliffs_delta']:+.2f}); was: {verdict.reason}")
            patched.append(dataclasses.replace(verdict, **changes))
        report.verdicts = patched

    if args.record_baseline:
        baselines = BaselineStore(args.record_baseline,
                                  report.code_fingerprint)
        for verdict in report.verdicts:
            baselines.record(verdict.claim_id, mode=mode,
                             base_seed=args.seed,
                             samples=verdict.treatment_samples)
        print(f"recorded {len(report.verdicts)} claim baselines under "
              f"{baselines.generation_dir}", file=sys.stderr)

    if args.perf:
        try:
            perf_baseline = load_perf_baseline(args.perf_baseline)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro validate: --perf: {exc}")
        report.perf = check_perf(perf_baseline, measure_core_speed(),
                                 scale=args.perf_scale)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report_json(report))
    if args.as_json:
        print(report_json(report), end="")
    else:
        print(report.render_text())

    counts = report.counts()
    if args.fail_on == "none":
        return 0
    if counts[FAIL]:
        return 1
    if args.fail_on == "inconclusive" and counts[INCONCLUSIVE]:
        return 1
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live single-screen dashboard over a run's ``status.json``.

    Watches the file a ``--ledger-dir`` run keeps rewriting; ``--once``
    prints a single frame (for CI logs) and ``--metrics-out`` addition-
    ally writes the snapshot as OpenMetrics text for scrape smoke tests.
    """
    import time

    from repro.obs.export import (
        render_openmetrics,
        render_top,
        status_registry,
    )

    def read_status():
        try:
            with open(args.status, encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            # Mid-rewrite or not-yet-created: treat as "no frame yet".
            return None

    if args.once:
        status = read_status()
        if status is None:
            print(f"repro top: no readable status at {args.status!r} "
                  f"(runs write it under --ledger-dir)", file=sys.stderr)
            return 1
        print(render_top(status))
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(render_openmetrics(status_registry(status)))
        return 0
    try:
        while True:
            status = read_status()
            frame = (render_top(status) if status is not None
                     else f"repro top: waiting for {args.status} ...")
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            if status is not None and status.get("finished"):
                return 0
            time.sleep(args.interval)  # noqa: DET001 — live dashboard refresh cadence, not simulation state
    except KeyboardInterrupt:
        print()
        return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Post-hoc narrative/JSON renderer for a run ledger."""
    from repro.obs.ledger import canonical_json, load_ledger

    try:
        body, execution = load_ledger(args.ledger)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro report: {exc}")
    if args.as_json:
        print(json.dumps({"ledger": body, "execution": execution},
                         sort_keys=True))
        return 0

    import hashlib
    ledger_id = hashlib.sha256(
        canonical_json(body).encode("utf-8")).hexdigest()
    summary = body.get("summary") or {}
    print(f"run ledger {ledger_id[:16]} — tool={body['tool']} "
          f"mode={body['mode']} (schema {body['schema']})")
    print(f"  code fingerprint: {body['code_fingerprint']}")
    print(f"  base seed:        {body['base_seed']}")
    kinds = ", ".join(f"{kind}: {count}" for kind, count
                      in sorted((summary.get("by_kind") or {}).items()))
    print(f"  jobs:             {len(body['jobs'])}"
          + (f" ({kinds})" if kinds else ""))
    print(f"  results digest:   {body['results_digest'][:16]}…")
    claims = summary.get("claims")
    if claims:
        print("  claims:")
        for claim_id, verdict in sorted(claims.items()):
            print(f"    {claim_id:32s} {verdict}")

    if execution is not None:
        status = execution.get("status") or {}
        res = status.get("resources") or {}
        print("execution (.run.json sidecar):")
        print(f"  elapsed {status.get('elapsed', 0.0):.1f}s — "
              f"executed {status.get('executed', 0)}, "
              f"cached {status.get('cached', 0)}, "
              f"failed {status.get('failed', 0)}, "
              f"retries {status.get('retries', 0)}")
        throughput = status.get("throughput")
        cache_ratio = status.get("cache_ratio")
        line = "  throughput "
        line += (f"{throughput:.2f} jobs/s" if throughput is not None
                 else "--")
        if cache_ratio is not None:
            line += f", cache ratio {cache_ratio:.1%}"
        print(line)
        print(f"  cpu {res.get('cpu_user', 0.0):.1f}s user / "
              f"{res.get('cpu_system', 0.0):.1f}s sys, "
              f"peak rss {res.get('max_rss_kb', 0) / 1024:.0f} MB, "
              f"{res.get('engine_events', 0)} engine events, "
              f"{res.get('flows_modelled', 0)} flows modelled")
        lanes = status.get("lanes") or {}
        if lanes:
            print("  workers:")
            for lane, stats in sorted(lanes.items()):
                name = "inline" if lane == "inline" else f"pid {lane}"
                print(f"    {name:<10} {stats.get('jobs', 0):>5} jobs  "
                      f"busy {stats.get('busy', 0.0):8.1f}s")

    # Perf trajectory: the committed baseline is the recorded history of
    # what the engine should achieve; pair it with what this run did.
    try:
        with open(args.perf_baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, ValueError):
        baseline = None
    if baseline and baseline.get("metrics"):
        print(f"perf trajectory (vs {args.perf_baseline}):")
        for name, entry in sorted(baseline["metrics"].items()):
            direction = entry.get("direction", "lower")
            print(f"  {name:<28} recorded {entry['value']:<10g} "
                  f"±{entry.get('tolerance', 0.0):.0%} ({direction} is "
                  f"better)")
        if execution is not None:
            status = execution.get("status") or {}
            res = status.get("resources") or {}
            events = res.get("engine_events", 0)
            cpu = (res.get("cpu_user", 0.0) or 0.0) + \
                (res.get("cpu_system", 0.0) or 0.0)
            if events and cpu:
                print(f"  this run: {events / cpu:,.0f} engine events/s "
                      f"of worker CPU")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Determinism/layering lint — delegates to repro.analysis.cli."""
    from repro.analysis.cli import main as lint_main
    if args.explain:
        return lint_main(["--explain", args.explain])
    argv: List[str] = list(args.paths)
    if args.as_json:
        argv.append("--json")
    if args.no_layering:
        argv.append("--no-layering")
    if args.no_units:
        argv.append("--no-units")
    return lint_main(argv)


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SUSS (SIGCOMM 2024) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-scenarios",
                   help="print the 28 internet-scale scenarios") \
        .set_defaults(func=cmd_list_scenarios)
    sub.add_parser("list-cc",
                   help="print registered congestion controls") \
        .set_defaults(func=cmd_list_cc)

    run_p = sub.add_parser("run", help="run one download")
    run_p.add_argument("--scenario", required=True,
                       help="scenario name, e.g. google-tokyo/wired")
    run_p.add_argument("--cc", default="cubic+suss")
    run_p.add_argument("--size", type=int, default=2 * MB,
                       help="flow size in bytes")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--csv", help="write cwnd/rtt/delivered trace CSV")
    run_p.add_argument("--csv-interval", type=float, default=0.05)
    run_p.set_defaults(func=cmd_run)

    sweep_p = sub.add_parser("sweep", help="FCT sweep over sizes and CCAs")
    sweep_p.add_argument("--scenario", required=True)
    sweep_p.add_argument("--ccs", default="cubic,cubic+suss")
    sweep_p.add_argument("--sizes", default="1000000,2000000,4000000")
    sweep_p.add_argument("--iterations", type=int, default=3)
    sweep_p.add_argument("--seed", type=int, default=0)
    _add_campaign_flags(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    exp_p = sub.add_parser("experiment",
                           help="regenerate a paper figure/table")
    exp_p.add_argument("name", choices=sorted(EXPERIMENTS))
    _add_campaign_flags(exp_p)
    exp_p.set_defaults(func=cmd_experiment)

    camp_p = sub.add_parser(
        "campaign",
        help="run a cached, parallel scenario-matrix campaign")
    camp_p.add_argument("--servers", default=",".join(SERVER_NAMES))
    camp_p.add_argument("--links", default=",".join(LINK_NAMES))
    camp_p.add_argument("--topo", metavar="SCENARIOS",
                        help="run registered topogen scenarios instead of "
                             "the server/link matrix: a comma-separated "
                             "list or 'all' (see `repro topo list`)")
    camp_p.add_argument("--cross-load", type=float, default=1.0,
                        help="scale each topo spec's declared cross-traffic "
                             "load (with --topo; 0 disables)")
    camp_p.add_argument("--sizes", default="1000000,2000000,4000000")
    camp_p.add_argument("--ccs", default="bbr,cubic+suss,cubic")
    camp_p.add_argument("--iterations", type=int, default=3)
    camp_p.add_argument("--seed", type=int, default=0)
    camp_p.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = run inline)")
    camp_p.add_argument("--cache-dir", default=".repro-cache",
                        help="result cache; re-runs only compute misses")
    camp_p.add_argument("--no-cache", action="store_true",
                        help="disable the result cache entirely")
    camp_p.add_argument("--resume", action="store_true",
                        help="continue an interrupted campaign from "
                             "--cache-dir (errors if it does not exist)")
    camp_p.add_argument("--timeout", type=float, default=None,
                        help="per-job wall-clock timeout in seconds")
    camp_p.add_argument("--retries", type=int, default=2,
                        help="retries per job after a failure/crash")
    camp_p.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress on stderr")
    camp_p.add_argument("--stats-json",
                        help="write executed/cached/failed counts to a file")
    camp_p.add_argument("--ledger-dir",
                        help="write a content-addressed run ledger (plus a "
                             "live status.json for `repro top`) here")
    camp_p.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve live OpenMetrics on this port while the "
                             "campaign runs (0 = ephemeral; needs "
                             "--ledger-dir)")
    camp_p.set_defaults(func=cmd_campaign)

    topo_p = sub.add_parser(
        "topo",
        help="declarative topology scenarios: list, render, validate, run")
    topo_p.add_argument("action",
                        choices=["list", "show", "routes", "validate",
                                 "run", "golden"],
                        help="list registered scenarios; show canonical "
                             "spec JSON; print SPF routing tables; "
                             "validate a spec; run one foreground flow; "
                             "re-record the spec golden file")
    topo_p.add_argument("--out", metavar="PATH",
                        help=f"golden output path (with golden; default "
                             f"{TOPOGEN_GOLDEN})")
    topo_p.add_argument("--scenario",
                        help="registered scenario name (see `repro topo "
                             "list`)")
    topo_p.add_argument("--spec", metavar="PATH",
                        help="load the TopologySpec from a JSON file "
                             "instead of the registry")
    topo_p.add_argument("--cc", default="cubic+suss")
    topo_p.add_argument("--size", type=int, default=2 * MB,
                        help="foreground flow size in bytes (with run)")
    topo_p.add_argument("--seed", type=int, default=0)
    topo_p.add_argument("--cross-load", type=float, default=1.0,
                        help="scale the spec's declared cross-traffic "
                             "load (0 disables)")
    topo_p.add_argument("--json", action="store_true", dest="as_json",
                        help="emit machine-readable output")
    topo_p.set_defaults(func=cmd_topo)

    flow_p = sub.add_parser(
        "flowsim",
        help="analytical fidelity tier: model query / fleet sweep / "
             "cross-validation")
    flow_p.add_argument("--scenario",
                        help="derive the path from a named scenario "
                             "(otherwise --rtt/--bw/--loss)")
    flow_p.add_argument("--rtt", type=float, default=0.04,
                        help="two-way propagation delay, seconds")
    flow_p.add_argument("--bw", type=float, default=20.0,
                        help="bottleneck bandwidth, Mbit/s")
    flow_p.add_argument("--loss", type=float, default=0.0,
                        help="random loss probability")
    flow_p.add_argument("--delayed-ack", action="store_true")
    flow_p.add_argument("--size", type=int,
                        help="single-model query: flow size in bytes")
    flow_p.add_argument("--model", default="csa00+suss",
                        help="model for --size queries")
    flow_p.add_argument("--flows", type=int, default=100_000,
                        help="fleet sweep: flows per model")
    flow_p.add_argument("--dist", default="campus",
                        choices=["campus", "web", "heavy_tailed"],
                        help="flow-size distribution for sweeps")
    flow_p.add_argument("--models", default="csa00,csa00+suss",
                        help="comma-separated models for sweeps")
    flow_p.add_argument("--seed", type=int, default=1)
    flow_p.add_argument("--cross-validate", action="store_true",
                        help="score packet-vs-analytical agreement "
                             "instead of sweeping")
    flow_p.add_argument("--quick", action="store_true",
                        help="cross-validate the CI subset only")
    flow_p.add_argument("--tolerance", type=float, default=0.15,
                        help="relative median-FCT error gate")
    flow_p.add_argument("--update-golden", nargs="?",
                        const=FLOWSIM_GOLDEN, default=None, metavar="PATH",
                        help="write the cross-validation report as the "
                             f"golden file (default {FLOWSIM_GOLDEN})")
    flow_p.add_argument("--report", metavar="PATH",
                        help="also write the agreement report JSON here")
    flow_p.add_argument("--json", action="store_true", dest="as_json")
    flow_p.add_argument("--ledger-dir",
                        help="fleet sweeps: write a content-addressed run "
                             "ledger here")
    flow_p.set_defaults(func=cmd_flowsim)

    trace_p = sub.add_parser(
        "trace",
        help="trace one download as canonical JSONL / refresh golden traces")
    trace_p.add_argument("--scenario",
                         help="scenario name, e.g. google-tokyo/wired")
    trace_p.add_argument("--cc", default="cubic+suss")
    trace_p.add_argument("--size", type=int, default=2 * MB,
                         help="flow size in bytes")
    trace_p.add_argument("--seed", type=int, default=0)
    trace_p.add_argument("--out", help="write canonical JSONL to this path")
    trace_p.add_argument("--kinds",
                         help="comma-separated record-kind filter "
                              "(e.g. cc.cwnd,suss.decision)")
    trace_p.add_argument("--update-golden", action="store_true",
                         help="re-record the golden traces under "
                              "tests/golden/ instead of running a scenario")
    trace_p.add_argument("--golden",
                         help="comma-separated golden run names to refresh "
                              "(default: all; with --update-golden)")
    trace_p.set_defaults(func=cmd_trace)

    ana_p = sub.add_parser(
        "analyze",
        help="whole-trace analysis: flow summaries, CC phases, "
             "retransmission classes, anomaly findings")
    ana_p.add_argument("trace",
                       help="JSONL trace path (.jsonl or .jsonl.gz; "
                            "'-' reads stdin)")
    ana_p.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the analysis as JSON")
    ana_p.add_argument("--fail-on-findings", action="store_true",
                       help="exit 1 when any warning/error finding fires")
    ana_p.set_defaults(func=cmd_analyze)

    exp2_p = sub.add_parser(
        "explain",
        help="causal chain for one event, or a narrated flow timeline")
    exp2_p.add_argument("trace",
                        help="JSONL trace path (.jsonl or .jsonl.gz; "
                             "'-' reads stdin)")
    exp2_p.add_argument("--flow", type=int,
                        help="restrict the narrative to one flow id")
    exp2_p.add_argument("--at", type=float,
                        help="explain what was happening at this "
                             "simulation time")
    exp2_p.add_argument("--event", type=int,
                        help="walk the causal chain of this engine "
                             "event id (eid)")
    exp2_p.add_argument("--json", action="store_true", dest="as_json",
                        help="emit structured JSON instead of prose")
    exp2_p.set_defaults(func=cmd_explain)

    prof_p = sub.add_parser(
        "profile",
        help="per-event-type wall-time profile of an experiment")
    prof_p.add_argument("name", choices=sorted(EXPERIMENTS) + ["single"],
                        help="experiment name, or 'single' for one download")
    prof_p.add_argument("--scenario",
                        help="scenario name (with name='single')")
    prof_p.add_argument("--cc", default="cubic+suss")
    prof_p.add_argument("--size", type=int, default=2 * MB)
    prof_p.add_argument("--seed", type=int, default=0)
    prof_p.add_argument("--top", type=int, default=15,
                        help="show only the hottest N event types")
    prof_p.add_argument("--sort", choices=["total", "count", "mean"],
                        default="total",
                        help="report column to sort by (descending)")
    prof_p.add_argument("--collapsed", action="store_true",
                        help="emit flamegraph folded-stack lines instead "
                             "of the table")
    _add_campaign_flags(prof_p)
    prof_p.set_defaults(func=cmd_profile)

    val_p = sub.add_parser(
        "validate",
        help="statistical validation of the paper's claims "
             "(exit 1 on FAIL)")
    val_mode = val_p.add_mutually_exclusive_group()
    val_mode.add_argument("--quick", action="store_true",
                          help="scaled-down workloads, few seeds "
                               "(default; the PR smoke gate)")
    val_mode.add_argument("--full", action="store_true",
                          help="paper-scale workloads and seed counts")
    val_p.add_argument("--claims",
                       help="comma-separated claim ids (default: all; "
                            "see --list)")
    val_p.add_argument("--list", action="store_true",
                       help="list registered claims and exit")
    val_p.add_argument("--seed", type=int, default=0,
                       help="base seed for the multi-seed fan-out")
    val_p.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock timeout in seconds")
    val_p.add_argument("--retries", type=int, default=1,
                       help="retries per job after a failure/crash")
    val_p.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the ValidationReport as canonical JSON "
                            "(byte-identical across same-seed runs)")
    val_p.add_argument("--out",
                       help="also write the JSON report to this path")
    val_p.add_argument("--fail-on", choices=["fail", "inconclusive", "none"],
                       default="fail",
                       help="exit non-zero on FAIL (default), on FAIL or "
                            "INCONCLUSIVE, or never")
    val_p.add_argument("--record-baseline", metavar="DIR",
                       help="record each claim's treatment samples under "
                            "DIR/<code fingerprint>/ for later --against")
    val_p.add_argument("--against", metavar="DIR",
                       help="drift-check treatment samples against "
                            "baselines recorded under DIR; drift flips "
                            "the claim to FAIL")
    val_p.add_argument("--baseline-fingerprint",
                       help="baseline generation to use when DIR holds "
                            "more than one (prefix accepted)")
    val_p.add_argument("--perf", action="store_true",
                       help="also re-time the bench_core_speed workloads "
                            "against --perf-baseline")
    val_p.add_argument("--perf-baseline",
                       default="benchmarks/baseline.json",
                       help="recorded perf numbers "
                            "(default: benchmarks/baseline.json)")
    val_p.add_argument("--perf-scale", type=float, default=1.0,
                       help="multiply perf tolerances (noisy CI runners)")
    val_p.add_argument("--ledger-dir",
                       help="write a content-addressed run ledger (plus a "
                            "live status.json for `repro top`) here")
    val_p.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="serve live OpenMetrics on this port while the "
                            "validation runs (0 = ephemeral; needs "
                            "--ledger-dir)")
    _add_campaign_flags(val_p)
    val_p.set_defaults(func=cmd_validate)

    top_p = sub.add_parser(
        "top",
        help="live dashboard over a --ledger-dir run's status.json")
    top_p.add_argument("status", nargs="?",
                       default=".repro-ledger/status.json",
                       help="status.json path "
                            "(default: .repro-ledger/status.json)")
    top_p.add_argument("--once", action="store_true",
                       help="print one frame and exit (for CI logs)")
    top_p.add_argument("--interval", type=float, default=1.0,
                       help="refresh interval in seconds")
    top_p.add_argument("--metrics-out", metavar="PATH",
                       help="with --once: also write the snapshot as "
                            "OpenMetrics text to PATH")
    top_p.set_defaults(func=cmd_top)

    rep_p = sub.add_parser(
        "report",
        help="render a run ledger (and its .run.json sidecar) post hoc")
    rep_p.add_argument("ledger", help="path to a ledger-<id>.json file")
    rep_p.add_argument("--json", action="store_true", dest="as_json",
                       help="emit ledger body + execution record as JSON")
    rep_p.add_argument("--perf-baseline", default="benchmarks/baseline.json",
                       help="recorded perf numbers for the trajectory "
                            "section (default: benchmarks/baseline.json)")
    rep_p.set_defaults(func=cmd_report)

    lint_p = sub.add_parser(
        "lint",
        help="determinism/layering linter (exit 1 on findings)")
    lint_p.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories (default: src tests)")
    lint_p.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON")
    lint_p.add_argument("--no-layering", action="store_true",
                        help="skip the import-graph layering check")
    lint_p.add_argument("--no-units", action="store_true",
                        help="skip the unit/dimension checker")
    lint_p.add_argument("--explain", metavar="RULE",
                        help="print the catalogue entry for a rule ID "
                             "(e.g. DET003, UNIT002) and exit")
    lint_p.set_defaults(func=cmd_lint)
    return parser


def _add_campaign_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = run inline)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache results on disk; re-runs only compute "
                             "misses")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress on stderr")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
