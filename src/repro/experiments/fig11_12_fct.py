"""Figs. 11 & 12 — FCT versus flow size for the Tokyo scenarios.

Fig. 11: mean FCT (with deviation) of BBR, CUBIC+SUSS-on, CUBIC+SUSS-off
across flow sizes, for the four last-hop link types with the server in the
Google Tokyo data center.  Fig. 12 is the derived per-size relative FCT
improvement of SUSS.  The paper's headline: >20 % improvement for flows up
to 2 MB in all four scenarios, diminishing for larger flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.report import pct, render_table
from repro.experiments.runner import fct_summary
from repro.metrics.summary import Summary, improvement
from repro.workloads.flows import MB
from repro.workloads.scenarios import PathScenario, get_scenario

DEFAULT_SIZES = (int(0.5 * MB), 1 * MB, 2 * MB, 4 * MB, 8 * MB, 12 * MB)
SCHEMES = ("bbr", "cubic+suss", "cubic")

#: paper claims checked by ``repro validate`` against this harness
#: (see :mod:`repro.validate.claims`).
CLAIM_IDS = ("fig11-fct-wired-2mb", "fig11-fct-5g-2mb",
             "fig11-fct-wifi-1mb", "fig11-fct-vs-bbr-wired",
             "fig12-fct-4g-no-regression")


@dataclass
class FctSweep:
    """FCT sweep for one scenario: scheme -> size -> Summary."""

    scenario: PathScenario
    sizes: Tuple[int, ...]
    fct: Dict[str, Dict[int, Summary]] = field(default_factory=dict)

    def improvement_at(self, size: int) -> float:
        """Fig. 12: SUSS's relative FCT improvement over plain CUBIC."""
        return improvement(self.fct["cubic"][size].mean,
                           self.fct["cubic+suss"][size].mean)


def run_scenario(scenario: PathScenario,
                 sizes: Sequence[int] = DEFAULT_SIZES,
                 iterations: int = 5, base_seed: int = 0,
                 schemes: Sequence[str] = SCHEMES) -> FctSweep:
    sweep = FctSweep(scenario=scenario, sizes=tuple(sizes))
    for scheme in schemes:
        sweep.fct[scheme] = {}
        for size in sizes:
            sweep.fct[scheme][size] = fct_summary(
                scenario, scheme, size, iterations, base_seed)
    return sweep


def run(links: Sequence[str] = ("5g", "wired", "wifi", "4g"),
        server: str = "google-tokyo", sizes: Sequence[int] = DEFAULT_SIZES,
        iterations: int = 5, base_seed: int = 0,
        schemes: Sequence[str] = SCHEMES) -> Dict[str, FctSweep]:
    """The four Fig. 11 sub-figures (one per link type)."""
    return {link: run_scenario(get_scenario(server, link), sizes,
                               iterations, base_seed, schemes)
            for link in links}


def format_report(sweeps: Dict[str, FctSweep]) -> str:
    blocks: List[str] = []
    for link, sweep in sweeps.items():
        rows = []
        for size in sweep.sizes:
            row: List[object] = [size / MB]
            for scheme in ("bbr", "cubic", "cubic+suss"):
                if scheme in sweep.fct:
                    s = sweep.fct[scheme][size]
                    row.append(f"{s.mean:.2f}±{s.std:.2f}")
                else:
                    row.append("-")
            row.append(pct(sweep.improvement_at(size)))
            rows.append(row)
        blocks.append(render_table(
            ["size (MB)", "BBR", "CUBIC (SUSS off)", "CUBIC (SUSS on)",
             "Fig.12 improvement"], rows,
            title=f"Fig. 11/12 — FCT, {sweep.scenario.name}"))
    return "\n\n".join(blocks)
