"""Experiment harnesses — one module per paper table/figure.

========  =====================================================
Module    Reproduces
========  =====================================================
fig01_motivation        Fig. 1 (slow-start under-utilisation)
fig02_competition       Fig. 2 (new flow vs established flows)
fig09_cwnd_rtt          Fig. 9 (cwnd/RTT dynamics)
fig10_delivered         Fig. 10 (delivered data over time)
fig11_12_fct            Figs. 11-12 (FCT vs size, Tokyo scenarios)
fig13_large_flow        Fig. 13 (no impact on large flows)
fig14_loss              Fig. 14 (loss vs flow size)
fig15_fairness          Fig. 15 (Jain fairness grid)
fig16_stability_trace   Fig. 16 (stability trace)
table1_stability        Table 1 (stability grid)
fig17_18_all_scenarios  Figs. 17-18 (28-scenario matrix)
ablation_kmax           Appendix A (generalised SUSS)
ablation_btlbw          Appendix B (BtlBw variation)
ext_related_work        Extension: Section-2 schemes head-to-head
ablation_aqm            Extension: CoDel bottleneck
ablation_delack         Extension: delayed-ACK receiver
========  =====================================================
"""

from repro.experiments.runner import (
    FlowResult,
    LocalRun,
    fct_summary,
    loss_rate_summary,
    run_flow_campaign,
    run_local_testbed,
    run_single_flow,
    sweep_summaries,
)

__all__ = [
    "FlowResult",
    "LocalRun",
    "fct_summary",
    "loss_rate_summary",
    "run_flow_campaign",
    "run_local_testbed",
    "run_single_flow",
    "sweep_summaries",
]
