"""Table 1 — SUSS improves small-flow FCT without destabilising a large flow.

Grid: large-flow CCA ∈ {CUBIC, BBRv1, BBRv2} × bottleneck buffer ∈
{1, 2} BDP × large-flow minRTT ∈ {25, 50, 100, 200 ms}; in each cell the
twelve small CUBIC flows run with SUSS off and with SUSS on.  Reported per
cell: FCT of the large flow, mean FCT of the small flows, and the relative
small-flow improvement.  Paper averages: ~32 % (CUBIC), ~28 % (BBRv1),
~26 % (BBRv2) improvement with no meaningful large-flow regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.progress import ProgressReporter
from repro.core.units import MILLIS_PER_SECOND, Seconds
from repro.campaign.scheduler import collect_values, run_campaign
from repro.campaign.spec import stability_job
from repro.campaign.store import ResultStore
from repro.experiments.fig16_stability_trace import PAIR_RTTS
from repro.experiments.report import pct, render_table
from repro.metrics.summary import summarize
from repro.workloads.flows import MB

DEFAULT_RTTS = (0.025, 0.050, 0.100, 0.200)
DEFAULT_BUFFERS = (1.0, 2.0)
LARGE_CCAS = ("cubic", "bbr", "bbr2")

#: paper claims checked by ``repro validate`` against this harness
#: (see :mod:`repro.validate.claims`).
CLAIM_IDS = ("table1-small-flow-cubic", "table1-large-flow-cubic")


@dataclass(frozen=True)
class Table1Key:
    large_cc: str
    buffer_bdp: float
    large_rtt: Seconds


@dataclass
class Table1Cell:
    """FCTs for one (large CCA, buffer, RTT) configuration."""

    large_fct_off: float
    small_fct_off: float
    large_fct_on: float
    small_fct_on: float

    @property
    def small_improvement(self) -> float:
        return (self.small_fct_off - self.small_fct_on) / self.small_fct_off

    @property
    def large_regression(self) -> float:
        """Relative change in large-flow FCT when SUSS turns on (positive
        means the large flow got slower)."""
        return (self.large_fct_on - self.large_fct_off) / self.large_fct_off


def _aggregate(values: List[dict], horizon: float) -> Tuple[float, float]:
    """Mean (large FCT, mean small FCT) over one config's iterations."""
    large_fcts: List[float] = []
    small_fcts: List[float] = []
    for value in values:
        large = value["large_fct"]
        # An unfinished large flow counts as the horizon (conservative).
        large_fcts.append(large if large is not None else horizon)
        if value["small_fct_mean"] is None:
            raise RuntimeError("no small flow completed; horizon too short")
        small_fcts.append(value["small_fct_mean"])
    return summarize(large_fcts).mean, summarize(small_fcts).mean


def run(large_ccas: Sequence[str] = LARGE_CCAS,
        buffers: Sequence[float] = DEFAULT_BUFFERS,
        rtts: Sequence[float] = DEFAULT_RTTS,
        large_size: int = 150 * MB, small_size: int = 2 * MB,
        n_small: int = 12, bottleneck_mbps: float = 50.0,
        horizon: float = 60.0, iterations: int = 1,
        base_seed: int = 0, *, jobs: int = 1,
        store: Optional[ResultStore] = None,
        progress: Optional[ProgressReporter] = None) -> Dict[Table1Key, Table1Cell]:
    """Run the full Table 1 grid (3 x 2 x 4 configurations, on + off).

    Every (config, SUSS on/off, seed) combination is one campaign job, so
    the whole grid fans out over ``jobs`` workers and caches per run.
    """
    configs = [(large_cc, buffer_bdp, rtt, suss)
               for large_cc in large_ccas
               for buffer_bdp in buffers
               for rtt in rtts
               for suss in (False, True)]
    specs = [stability_job(large_cc, buffer_bdp, rtt, suss, large_size,
                           small_size, n_small, bottleneck_mbps, horizon,
                           base_seed + i, (rtt,) + PAIR_RTTS[1:])
             for large_cc, buffer_bdp, rtt, suss in configs
             for i in range(iterations)]
    values = collect_values(run_campaign(specs, jobs=jobs, store=store,
                                         progress=progress))

    halves: Dict[Tuple[str, float, float, bool], Tuple[float, float]] = {}
    for slot, config in enumerate(configs):
        chunk = values[slot * iterations:(slot + 1) * iterations]
        halves[config] = _aggregate(chunk, horizon)

    cells: Dict[Table1Key, Table1Cell] = {}
    for large_cc, buffer_bdp, rtt, _ in configs[::2]:
        lf_off, sf_off = halves[(large_cc, buffer_bdp, rtt, False)]
        lf_on, sf_on = halves[(large_cc, buffer_bdp, rtt, True)]
        cells[Table1Key(large_cc, buffer_bdp, rtt)] = Table1Cell(
            large_fct_off=lf_off, small_fct_off=sf_off,
            large_fct_on=lf_on, small_fct_on=sf_on)
    return cells


def average_improvement(cells: Dict[Table1Key, Table1Cell],
                        large_cc: str) -> float:
    """Mean small-flow improvement for one large-flow CCA (Table 1 average)."""
    values = [cell.small_improvement for key, cell in cells.items()
              if key.large_cc == large_cc]
    if not values:
        raise KeyError(f"no cells for large CCA {large_cc!r}")
    return sum(values) / len(values)


def format_report(cells: Dict[Table1Key, Table1Cell]) -> str:
    rows = []
    for key in sorted(cells, key=lambda k: (k.large_cc, k.buffer_bdp,
                                            k.large_rtt)):
        cell = cells[key]
        rows.append([key.large_cc, key.buffer_bdp,
                     f"{key.large_rtt * MILLIS_PER_SECOND:.0f} ms",
                     f"{cell.large_fct_off:.1f}", f"{cell.small_fct_off:.2f}",
                     f"{cell.large_fct_on:.1f}", f"{cell.small_fct_on:.2f}",
                     pct(cell.small_improvement)])
    table = render_table(
        ["large CCA", "buffer (BDP)", "minRTT",
         "large FCT (off)", "small FCT (off)",
         "large FCT (on)", "small FCT (on)", "improvement"],
        rows, title="Table 1 — stability under SUSS small flows")
    ccas = sorted({k.large_cc for k in cells})
    footer = "  ".join(f"avg[{cc}]={pct(average_improvement(cells, cc))}"
                       for cc in ccas)
    return table + "\n" + footer
