"""Plain-text table/series rendering for experiment output.

Benchmarks print the same rows/series the paper's tables and figures
report; this module renders them in fixed-width text so the shape of the
result is readable directly in test output.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render a monospace table with auto-sized columns."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, points: Sequence[tuple],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render an (x, y) series as aligned rows."""
    lines = [f"{name}  [{x_label} -> {y_label}]"]
    for x, y in points:
        lines.append(f"  {_fmt(x):>12}  {_fmt(y)}")
    return "\n".join(lines)


def pct(value: float) -> str:
    """Format a ratio as a signed percentage string."""
    return f"{value * 100:+.1f}%"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 0.001 or abs(cell) >= 100000):
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
