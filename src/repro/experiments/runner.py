"""Experiment execution: single-flow and multi-flow scenario runs.

Mirrors the paper's methodology (Section 6.1): each measurement downloads
a file over a scenario path, repeated for N iterations with different
random seeds (seeds drive jitter and bandwidth-variation streams), and the
kernel-log-style telemetry is collected for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.progress import ProgressReporter
from repro.campaign.scheduler import collect_values, run_campaign
from repro.campaign.spec import single_flow_job
from repro.campaign.store import ResultStore
from repro.metrics.collector import Telemetry
from repro.metrics.summary import Summary, summarize
from repro.net.topology import Dumbbell
from repro.obs.tracer import Observability
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.connection import Transfer, open_transfer
from repro.workloads.flows import FlowSpec, launch_flows
from repro.workloads.scenarios import LocalTestbedConfig, PathScenario
from repro.workloads.topo import build_topology, place_cross_traffic, resolve_topo


@dataclass
class FlowResult:
    """Outcome of one single-flow run."""

    scenario: str
    cc: str
    size_bytes: int
    seed: int
    fct: Optional[float]
    completed: bool
    retransmissions: int
    rto_count: int
    data_packets_sent: int
    drops: int
    telemetry: Optional[Telemetry] = None
    transfer: Optional[Transfer] = None

    @property
    def loss_rate(self) -> float:
        if self.data_packets_sent == 0:
            return 0.0
        return self.drops / self.data_packets_sent


def _deadline(scenario: PathScenario, size_bytes: int) -> float:
    """Generous wall-clock bound for a download on this path."""
    ideal = size_bytes / scenario.btl_bw
    return 60.0 + 40.0 * ideal + 200.0 * scenario.rtt


def run_single_flow(scenario: PathScenario, cc: str, size_bytes: int,
                    seed: int = 0, collect: bool = False,
                    keep_transfer: bool = False,
                    delayed_ack: bool = False,
                    ecn: bool = False,
                    net: Optional[Dumbbell] = None,
                    sim: Optional[Simulator] = None,
                    obs: Optional[Observability] = None) -> FlowResult:
    """Download ``size_bytes`` over ``scenario`` with algorithm ``cc``.

    A pre-built ``net``/``sim`` pair may be supplied to run over a
    customised topology (e.g. a CoDel bottleneck) while keeping the
    scenario's bookkeeping.  ``obs`` wires an explicit observability
    bundle into the simulator (the caller owns its sinks and closes
    them); when omitted, the ``REPRO_TRACE`` / ``REPRO_PROFILE``
    environment default applies.
    """
    if (net is None) != (sim is None):
        raise ValueError("supply both net and sim, or neither")
    if sim is None:
        sim = Simulator() if obs is None else Simulator(obs=obs)
        rng = RngRegistry(seed)
        net = scenario.build(sim, rng)
    telemetry = Telemetry() if collect else Telemetry(
        sample_cwnd=False, sample_rtt=False, sample_delivered=False)
    if sim.obs is not None:
        telemetry.registry = sim.obs.metrics
    telemetry.attach_queue(net.bottleneck_queue)
    transfer = open_transfer(sim, net.servers[0], net.clients[0], flow_id=1,
                             size_bytes=size_bytes, cc=cc,
                             delayed_ack=delayed_ack, ecn=ecn,
                             telemetry=telemetry)
    sim.run(until=_deadline(scenario, size_bytes))
    if sim.sanitizer is not None:
        sim.sanitizer.verify_conservation(sim.pending_events)
    sender = transfer.sender
    return FlowResult(
        scenario=scenario.name, cc=cc, size_bytes=size_bytes, seed=seed,
        fct=transfer.fct, completed=transfer.completed,
        retransmissions=sender.retransmissions, rto_count=sender.rto_count,
        data_packets_sent=sender.data_packets_sent,
        drops=telemetry.flow(1).drops,
        telemetry=telemetry if collect else None,
        transfer=transfer if keep_transfer else None)


def run_topo_flow(scenario, cc: str, size_bytes: int, seed: int = 0,
                  cross_load: float = 1.0, cross_cc: str = "cubic",
                  obs: Optional[Observability] = None) -> Dict[str, Any]:
    """One seeded foreground download over a topogen scenario.

    ``scenario`` is a registered name, a :class:`TopologySpec`, or its
    canonical dict (how campaign jobs ship it).  The spec's declared
    cross-traffic plans are placed with their loads scaled by
    ``cross_load`` (0 disables them), then the foreground flow runs on
    the spec's first flow path.  Returns a JSON-serialisable dict so the
    run doubles as the ``topo_flow`` campaign job.
    """
    spec = resolve_topo(scenario)
    sim = Simulator() if obs is None else Simulator(obs=obs)
    rng = RngRegistry(seed)
    built = build_topology(sim, spec, rng)
    flow = spec.flows[0]
    bottleneck = built.bottleneck_link(flow.server, flow.client)
    rtt = built.path_rtt(flow.server, flow.client)
    telemetry = Telemetry(sample_cwnd=False, sample_rtt=False,
                          sample_delivered=False)
    if sim.obs is not None:
        telemetry.registry = sim.obs.metrics
    telemetry.attach_queue(bottleneck.queue)
    generators = place_cross_traffic(built, rng, load_scale=cross_load,
                                     cc=cross_cc)
    transfer = open_transfer(sim, built.hosts[flow.server],
                             built.hosts[flow.client], flow_id=1,
                             size_bytes=size_bytes, cc=cc,
                             telemetry=telemetry)
    # Cross traffic steals a load-dependent share of the bottleneck, so
    # the deadline scales the ideal transfer time by the worst-case
    # residual share on top of run_single_flow's generous envelope.
    total_load = min(sum(p.load for p in spec.cross_traffic) * cross_load,
                     0.9)
    ideal = size_bytes / bottleneck.bandwidth.mean_rate()
    deadline = 60.0 + 40.0 * ideal / (1.0 - total_load) + 200.0 * rtt
    # The cross-traffic generators never drain on their own, so advance
    # the clock in slices and stop as soon as the foreground flow is
    # done (slicing run() does not change event order, only how far the
    # clock is pushed past completion).
    step = max(8.0 * rtt, 0.25)
    while not transfer.completed and sim.now < deadline:
        sim.run(until=min(sim.now + step, deadline))
    for generator in generators:
        generator.stop()
    if sim.sanitizer is not None:
        sim.sanitizer.verify_conservation(sim.pending_events)
    sender = transfer.sender
    return {
        "scenario": spec.name,
        "scenario_class": spec.scenario_class,
        "topo_hash": spec.content_hash,
        "cc": cc,
        "size_bytes": int(size_bytes),
        "seed": int(seed),
        "cross_load": float(cross_load),
        "rtt": rtt,
        "fct": transfer.fct,
        "completed": transfer.completed,
        "retransmissions": sender.retransmissions,
        "rto_count": sender.rto_count,
        "data_packets_sent": sender.data_packets_sent,
        "drops": telemetry.flow(1).drops,
        "loss_rate": (telemetry.flow(1).drops / sender.data_packets_sent
                      if sender.data_packets_sent else 0.0),
        "cross_flows": sum(len(g.flows) for g in generators),
        "cross_flows_completed": sum(g.completed_flows for g in generators),
    }


def run_flow_campaign(scenario: PathScenario, cc: str, size_bytes: int,
                      iterations: int, base_seed: int = 0, *,
                      jobs: int = 1, store: Optional[ResultStore] = None,
                      progress: Optional[ProgressReporter] = None,
                      timeout: Optional[float] = None,
                      retries: int = 2) -> List[Dict[str, Any]]:
    """The seeded-iteration loop as a campaign: one job per seed.

    Returns the per-seed result dicts in seed order; raises if a flow did
    not complete within its deadline (seeds identify the culprit).
    """
    specs = [single_flow_job(scenario, cc, size_bytes, seed=base_seed + i)
             for i in range(iterations)]
    results = run_campaign(specs, jobs=jobs, store=store, timeout=timeout,
                           retries=retries, progress=progress)
    values = collect_values(results)
    for value in values:
        if not value["completed"]:
            raise RuntimeError(
                f"flow did not complete: {scenario.name} cc={cc} "
                f"size={size_bytes} seed={value['seed']}")
    return values


def fct_summary(scenario: PathScenario, cc: str, size_bytes: int,
                iterations: int, base_seed: int = 0, *,
                jobs: int = 1, store: Optional[ResultStore] = None,
                progress: Optional[ProgressReporter] = None) -> Summary:
    """Mean/std FCT over ``iterations`` seeded runs (paper: 50 iterations)."""
    values = run_flow_campaign(scenario, cc, size_bytes, iterations,
                               base_seed, jobs=jobs, store=store,
                               progress=progress)
    return summarize([value["fct"] for value in values])


def loss_rate_summary(scenario: PathScenario, cc: str, size_bytes: int,
                      iterations: int, base_seed: int = 0, *,
                      jobs: int = 1, store: Optional[ResultStore] = None,
                      progress: Optional[ProgressReporter] = None) -> Summary:
    """Mean/std packet-loss rate over seeded runs.

    Like :func:`fct_summary`, incomplete flows raise instead of silently
    contributing a partial-transfer loss rate to the average.
    """
    values = run_flow_campaign(scenario, cc, size_bytes, iterations,
                               base_seed, jobs=jobs, store=store,
                               progress=progress)
    return summarize([value["loss_rate"] for value in values])


def sweep_summaries(scenario: PathScenario, ccs: Sequence[str],
                    sizes: Sequence[int], iterations: int,
                    base_seed: int = 0, *, jobs: int = 1,
                    store: Optional[ResultStore] = None,
                    progress: Optional[ProgressReporter] = None
                    ) -> Dict[Tuple[str, int], Summary]:
    """FCT summaries for every (cc, size) pair, fanned out as one campaign.

    Flattening the whole sweep into a single campaign keeps every worker
    busy across cell boundaries instead of synchronising per cell.
    """
    combos = [(cc, size) for size in sizes for cc in ccs]
    specs = [single_flow_job(scenario, cc, size, seed=base_seed + i)
             for cc, size in combos for i in range(iterations)]
    results = run_campaign(specs, jobs=jobs, store=store, progress=progress)
    values = collect_values(results)
    summaries: Dict[Tuple[str, int], Summary] = {}
    for slot, (cc, size) in enumerate(combos):
        chunk = values[slot * iterations:(slot + 1) * iterations]
        for value in chunk:
            if not value["completed"]:
                raise RuntimeError(
                    f"flow did not complete: {scenario.name} cc={cc} "
                    f"size={size} seed={value['seed']}")
        summaries[(cc, size)] = summarize([v["fct"] for v in chunk])
    return summaries


@dataclass
class LocalRun:
    """Outcome of one multi-flow local-testbed run."""

    sim: Simulator
    net: Dumbbell
    transfers: Dict[int, Transfer]
    telemetry: Telemetry

    def fct_of(self, flow_id: int) -> Optional[float]:
        return self.transfers[flow_id].fct


def run_local_testbed(config: LocalTestbedConfig, specs: Sequence[FlowSpec],
                      until: float, seed: int = 0,
                      collect: bool = True) -> LocalRun:
    """Run a multi-flow workload on the paper's dumbbell testbed."""
    sim = Simulator()
    rng = RngRegistry(seed)
    net = config.build(sim, rng)
    telemetry = Telemetry() if collect else Telemetry(
        sample_cwnd=False, sample_rtt=False, sample_delivered=False)
    transfers = launch_flows(sim, net, specs, telemetry)
    sim.run(until=until)
    if sim.sanitizer is not None:
        sim.sanitizer.verify_conservation(sim.pending_events)
    return LocalRun(sim=sim, net=net, transfers=transfers,
                    telemetry=telemetry)


def run_fairness_cell(rtt: float, buffer_bdp: float, cc: str,
                      bottleneck_mbps: float = 50.0, join_time: float = 16.0,
                      horizon: float = 40.0, seed: int = 0,
                      recovery_threshold: float = 0.95,
                      window: float = 2.0) -> Dict[str, Any]:
    """One Fig. 15 fairness cell: four staggered flows plus a late joiner.

    Returns a JSON-serialisable dict so the run can double as a campaign
    job (``fairness_cell`` kind): the Jain-index timeline, the minimum
    index after the fifth flow joins, and the recovery time back above
    ``recovery_threshold`` (``None`` when fairness never recovers within
    the horizon).  :mod:`repro.experiments.fig15_fairness` wraps the same
    dict into its report cells.
    """
    from repro.metrics.fairness import fairness_over_time

    config = LocalTestbedConfig(bottleneck_mbps=bottleneck_mbps,
                                rtts=(rtt,) * 5, buffer_bdp=buffer_bdp)
    bulk = int(horizon * config.btl_bw)
    specs = [FlowSpec(flow_id=i + 1, size_bytes=bulk, cc=cc,
                      start_time=2.0 * i) for i in range(4)]
    specs.append(FlowSpec(flow_id=5, size_bytes=bulk, cc=cc,
                          start_time=join_time))
    result = run_local_testbed(config, specs, until=horizon, seed=seed)
    delivered = {fid: result.telemetry.flow(fid).delivered
                 for fid in range(1, 6)}
    points = fairness_over_time(delivered, t_start=join_time - window,
                                t_end=horizon, window=window, step=0.25)
    recovery: Optional[float] = None
    dipped = False
    post_join = []
    for t, f in points:
        if t < join_time:
            continue
        post_join.append(f)
        if f < recovery_threshold:
            dipped = True
        elif dipped and recovery is None:
            recovery = t - join_time
    return {
        "rtt": rtt,
        "buffer_bdp": buffer_bdp,
        "cc": cc,
        "seed": seed,
        "join_time": join_time,
        "horizon": horizon,
        "fairness": [[t, f] for t, f in points],
        "min_fairness_after_join": min(post_join) if post_join else 1.0,
        "recovery_time": recovery,
    }
