"""Experiment execution: single-flow and multi-flow scenario runs.

Mirrors the paper's methodology (Section 6.1): each measurement downloads
a file over a scenario path, repeated for N iterations with different
random seeds (seeds drive jitter and bandwidth-variation streams), and the
kernel-log-style telemetry is collected for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.metrics.collector import Telemetry
from repro.metrics.summary import Summary, summarize
from repro.net.topology import Dumbbell
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.connection import Transfer, open_transfer
from repro.workloads.flows import FlowSpec, launch_flows
from repro.workloads.scenarios import LocalTestbedConfig, PathScenario


@dataclass
class FlowResult:
    """Outcome of one single-flow run."""

    scenario: str
    cc: str
    size_bytes: int
    seed: int
    fct: Optional[float]
    completed: bool
    retransmissions: int
    rto_count: int
    data_packets_sent: int
    drops: int
    telemetry: Optional[Telemetry] = None
    transfer: Optional[Transfer] = None

    @property
    def loss_rate(self) -> float:
        if self.data_packets_sent == 0:
            return 0.0
        return self.drops / self.data_packets_sent


def _deadline(scenario: PathScenario, size_bytes: int) -> float:
    """Generous wall-clock bound for a download on this path."""
    ideal = size_bytes / scenario.btl_bw
    return 60.0 + 40.0 * ideal + 200.0 * scenario.rtt


def run_single_flow(scenario: PathScenario, cc: str, size_bytes: int,
                    seed: int = 0, collect: bool = False,
                    keep_transfer: bool = False,
                    delayed_ack: bool = False,
                    ecn: bool = False,
                    net: Optional[Dumbbell] = None,
                    sim: Optional[Simulator] = None) -> FlowResult:
    """Download ``size_bytes`` over ``scenario`` with algorithm ``cc``.

    A pre-built ``net``/``sim`` pair may be supplied to run over a
    customised topology (e.g. a CoDel bottleneck) while keeping the
    scenario's bookkeeping.
    """
    if (net is None) != (sim is None):
        raise ValueError("supply both net and sim, or neither")
    if sim is None:
        sim = Simulator()
        rng = RngRegistry(seed)
        net = scenario.build(sim, rng)
    telemetry = Telemetry() if collect else Telemetry(
        sample_cwnd=False, sample_rtt=False, sample_delivered=False)
    telemetry.attach_queue(net.bottleneck_queue)
    transfer = open_transfer(sim, net.servers[0], net.clients[0], flow_id=1,
                             size_bytes=size_bytes, cc=cc,
                             delayed_ack=delayed_ack, ecn=ecn,
                             telemetry=telemetry)
    sim.run(until=_deadline(scenario, size_bytes))
    sender = transfer.sender
    return FlowResult(
        scenario=scenario.name, cc=cc, size_bytes=size_bytes, seed=seed,
        fct=transfer.fct, completed=transfer.completed,
        retransmissions=sender.retransmissions, rto_count=sender.rto_count,
        data_packets_sent=sender.data_packets_sent,
        drops=telemetry.flow(1).drops,
        telemetry=telemetry if collect else None,
        transfer=transfer if keep_transfer else None)


def fct_summary(scenario: PathScenario, cc: str, size_bytes: int,
                iterations: int, base_seed: int = 0) -> Summary:
    """Mean/std FCT over ``iterations`` seeded runs (paper: 50 iterations)."""
    fcts: List[float] = []
    for i in range(iterations):
        result = run_single_flow(scenario, cc, size_bytes, seed=base_seed + i)
        if result.fct is None:
            raise RuntimeError(
                f"flow did not complete: {scenario.name} cc={cc} "
                f"size={size_bytes} seed={base_seed + i}")
        fcts.append(result.fct)
    return summarize(fcts)


def loss_rate_summary(scenario: PathScenario, cc: str, size_bytes: int,
                      iterations: int, base_seed: int = 0) -> Summary:
    """Mean/std packet-loss rate over seeded runs."""
    rates = []
    for i in range(iterations):
        result = run_single_flow(scenario, cc, size_bytes, seed=base_seed + i)
        rates.append(result.loss_rate)
    return summarize(rates)


@dataclass
class LocalRun:
    """Outcome of one multi-flow local-testbed run."""

    sim: Simulator
    net: Dumbbell
    transfers: Dict[int, Transfer]
    telemetry: Telemetry

    def fct_of(self, flow_id: int) -> Optional[float]:
        return self.transfers[flow_id].fct


def run_local_testbed(config: LocalTestbedConfig, specs: Sequence[FlowSpec],
                      until: float, seed: int = 0,
                      collect: bool = True) -> LocalRun:
    """Run a multi-flow workload on the paper's dumbbell testbed."""
    sim = Simulator()
    rng = RngRegistry(seed)
    net = config.build(sim, rng)
    telemetry = Telemetry() if collect else Telemetry(
        sample_cwnd=False, sample_rtt=False, sample_delivered=False)
    transfers = launch_flows(sim, net, specs, telemetry)
    sim.run(until=until)
    return LocalRun(sim=sim, net=net, transfers=transfers,
                    telemetry=telemetry)
