"""Extension — SUSS under organic cross traffic.

The paper's internet-scale paths carry live cross traffic; the simulated
scenarios are otherwise idle.  This experiment loads the bottleneck with
a Poisson stream of short web-like flows (30% of capacity by default) and
measures whether the SUSS gain for a foreground download survives the
contention — and whether SUSS's acceleration harms the cross flows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.report import pct, render_table
from repro.metrics.collector import Telemetry
from repro.metrics.summary import summarize
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.connection import open_transfer
from repro.workloads.crosstraffic import CrossTraffic
from repro.workloads.flows import MB
from repro.workloads.scenarios import LocalTestbedConfig


@dataclass
class CrossTrafficResult:
    cc: str
    load: float
    foreground_fct: float            # mean over repeats
    cross_flow_mean_fct: Optional[float]
    cross_flows_completed: int


def _one(cc: str, load: float, size: int, seed: int,
         bottleneck_mbps: float, fg_start: float,
         horizon: float) -> CrossTrafficResult:
    config = LocalTestbedConfig(bottleneck_mbps=bottleneck_mbps,
                                rtts=(0.08,) * 5, buffer_bdp=1.5)
    sim = Simulator()
    net = config.build(sim, RngRegistry(seed))
    telemetry = Telemetry(sample_cwnd=False, sample_rtt=False,
                          sample_delivered=False)
    telemetry.attach_queue(net.bottleneck_queue)
    cross = CrossTraffic(sim=sim, net=net, pair_index=4, target_load=load,
                         bottleneck_rate=config.btl_bw,
                         rng=random.Random(seed + 99),
                         telemetry=telemetry)
    cross.start()
    foreground = open_transfer(sim, net.servers[0], net.clients[0],
                               flow_id=1, size_bytes=size, cc=cc,
                               start_time=fg_start, telemetry=telemetry)
    sim.run(until=horizon)
    if not foreground.completed:
        raise RuntimeError(f"foreground {cc} did not finish under load")
    cross_fcts = [f.fct for f in cross.flows if f.fct is not None]
    return CrossTrafficResult(
        cc=cc, load=load, foreground_fct=foreground.fct,
        cross_flow_mean_fct=(summarize(cross_fcts).mean
                             if cross_fcts else None),
        cross_flows_completed=len(cross_fcts))


def run(size: int = 2 * MB, load: float = 0.3, iterations: int = 2,
        base_seed: int = 0, bottleneck_mbps: float = 50.0,
        fg_start: float = 8.0, horizon: float = 40.0,
        ccs: Sequence[str] = ("cubic", "cubic+suss")
        ) -> List[CrossTrafficResult]:
    results: List[CrossTrafficResult] = []
    for cc in ccs:
        fg, cross, done = [], [], 0
        for i in range(iterations):
            r = _one(cc, load, size, base_seed + i, bottleneck_mbps,
                     fg_start, horizon)
            fg.append(r.foreground_fct)
            if r.cross_flow_mean_fct is not None:
                cross.append(r.cross_flow_mean_fct)
            done += r.cross_flows_completed
        results.append(CrossTrafficResult(
            cc=cc, load=load, foreground_fct=summarize(fg).mean,
            cross_flow_mean_fct=(summarize(cross).mean if cross else None),
            cross_flows_completed=done))
    return results


def suss_improvement(results: Sequence[CrossTrafficResult]) -> float:
    by_cc = {r.cc: r for r in results}
    return ((by_cc["cubic"].foreground_fct
             - by_cc["cubic+suss"].foreground_fct)
            / by_cc["cubic"].foreground_fct)


def cross_flow_regression(results: Sequence[CrossTrafficResult]) -> float:
    """Relative change in cross-flow FCT when the foreground uses SUSS."""
    by_cc = {r.cc: r for r in results}
    off = by_cc["cubic"].cross_flow_mean_fct
    on = by_cc["cubic+suss"].cross_flow_mean_fct
    if not off or not on:
        return 0.0
    return (on - off) / off


def format_report(results: Sequence[CrossTrafficResult]) -> str:
    rows = [[r.cc, f"{r.load * 100:.0f}%", f"{r.foreground_fct:.3f}",
             "-" if r.cross_flow_mean_fct is None
             else f"{r.cross_flow_mean_fct:.3f}",
             r.cross_flows_completed] for r in results]
    table = render_table(
        ["foreground cc", "cross load", "foreground FCT (s)",
         "cross-flow mean FCT (s)", "cross flows done"], rows,
        title="Extension — foreground download under Poisson cross traffic")
    return (table + f"\nforeground improvement={pct(suss_improvement(results))}"
            f"  cross-flow regression={pct(cross_flow_regression(results))}")
