"""Extension — SUSS's benefit over a realistic internet traffic mix.

The paper's deployment argument: since most internet flows are small
(Section 1, citing campus-traffic measurements), a slow-start improvement
moves the *distribution* of completion times, not just a benchmark point.
This experiment samples flows from the campus flow-size CDF, runs each
over a scenario path with SUSS off/on, and reports the improvement
distribution (mean / median / p90) plus the fraction of flows improved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.units import MB
from repro.experiments.report import pct, render_table
from repro.experiments.runner import run_single_flow
from repro.workloads.distributions import CAMPUS_FLOW_CDF
from repro.workloads.scenarios import PathScenario, get_scenario


@dataclass
class MixResult:
    scenario: PathScenario
    sizes: List[int]
    improvements: List[float]

    def _sorted(self) -> List[float]:
        return sorted(self.improvements)

    @property
    def mean_improvement(self) -> float:
        return sum(self.improvements) / len(self.improvements)

    @property
    def median_improvement(self) -> float:
        values = self._sorted()
        return values[len(values) // 2]

    def percentile(self, q: float) -> float:
        values = self._sorted()
        index = min(int(len(values) * q / 100.0), len(values) - 1)
        return values[index]

    @property
    def fraction_improved(self) -> float:
        return (sum(1 for imp in self.improvements if imp > 0)
                / len(self.improvements))


def run(n_flows: int = 40, seed: int = 0,
        scenario: PathScenario = None,
        max_size: int = 20_000_000) -> MixResult:
    """Sample ``n_flows`` sizes and measure per-flow SUSS improvement.

    Each flow runs in isolation (the paper's single-download methodology);
    sizes above ``max_size`` are clamped to bound runtime.
    """
    if scenario is None:
        scenario = get_scenario("google-tokyo", "wired")
    rng = random.Random(seed)
    sizes = [min(s, max_size)
             for s in CAMPUS_FLOW_CDF.sample_sizes(n_flows, rng)]
    improvements: List[float] = []
    for i, size in enumerate(sizes):
        off = run_single_flow(scenario, "cubic", size, seed=seed + i)
        on = run_single_flow(scenario, "cubic+suss", size, seed=seed + i)
        if off.fct is None or on.fct is None:
            raise RuntimeError(f"mix flow of {size} B did not finish")
        improvements.append((off.fct - on.fct) / off.fct)
    return MixResult(scenario=scenario, sizes=sizes,
                     improvements=improvements)


def format_report(result: MixResult) -> str:
    small = [imp for size, imp in zip(result.sizes, result.improvements)
             if size <= MB]
    big = [imp for size, imp in zip(result.sizes, result.improvements)
           if size > MB]
    rows = [
        ["flows sampled", len(result.sizes)],
        ["median flow size", f"{sorted(result.sizes)[len(result.sizes) // 2] / 1e3:.0f} kB"],
        ["mean improvement", pct(result.mean_improvement)],
        ["median improvement", pct(result.median_improvement)],
        ["p90 improvement", pct(result.percentile(90))],
        ["fraction improved", f"{result.fraction_improved * 100:.0f}%"],
        ["mean improvement (<=1 MB flows)",
         pct(sum(small) / len(small)) if small else "-"],
        ["mean improvement (>1 MB flows)",
         pct(sum(big) / len(big)) if big else "-"],
    ]
    return render_table(["metric", "value"], rows,
                        title=f"Extension — campus traffic mix over "
                              f"{result.scenario.name}")
