"""Extension — head-to-head with the Section-2 slow-start schemes.

The paper argues (Section 2) that existing end-to-end accelerators either
burst uncontrolled data (large IW, JumpStart, Halfback), disrupt HyStart
by pacing everything (initial spreading), or rely on stale history
(Stateful-TCP).  This experiment, not in the paper's evaluation, races
all of them against SUSS on two contrasting paths:

* a clean long-fat path (aggression is cheap — everyone looks good);
* the same path with a shallow buffer (aggression drops packets).

SUSS's expected signature: near-best FCT on the clean path *and* no
loss blow-up on the constrained one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from repro.experiments.report import render_table
from repro.experiments.runner import run_single_flow
from repro.metrics.summary import Summary, summarize
from repro.workloads.flows import MB
from repro.workloads.scenarios import PathScenario, get_scenario

SCHEMES = ("cubic", "cubic+suss", "cubic-iw32", "cubic-spread-iw32",
           "jumpstart", "halfback", "cubic-stateful")


@dataclass
class RelatedWorkRow:
    scenario: PathScenario
    scheme: str
    fct: Summary
    loss: Summary
    retransmit_rate: float


def _paths() -> List[PathScenario]:
    clean = get_scenario("google-tokyo", "wired")
    # Short-RTT path: its BDP (~260 segments) is far below a 2 MB flow,
    # so skipping slow start overflows the shallow buffer.
    shallow = replace(get_scenario("oracle-london", "wired"),
                      name="oracle-london/wired-shallow", buffer_bdp=0.35)
    return [clean, shallow]


def run(size: int = 2 * MB, iterations: int = 3, base_seed: int = 0,
        schemes: Sequence[str] = SCHEMES,
        scenarios: Sequence[PathScenario] = ()) -> List[RelatedWorkRow]:
    from repro.cc.slowstart_variants import StatefulCubic

    rows: List[RelatedWorkRow] = []
    for scenario in (scenarios or _paths()):
        # Stateful-TCP's per-destination cache must not leak across
        # scenarios (hosts share names between built topologies).
        StatefulCubic.reset_history()
        for scheme in schemes:
            fcts, losses, retx = [], [], []
            for i in range(iterations):
                result = run_single_flow(scenario, scheme, size,
                                         seed=base_seed + i)
                if result.fct is None:
                    raise RuntimeError(
                        f"{scheme} did not finish on {scenario.name}")
                fcts.append(result.fct)
                losses.append(result.loss_rate)
                retx.append(result.retransmissions
                            / max(result.data_packets_sent, 1))
            rows.append(RelatedWorkRow(
                scenario=scenario, scheme=scheme, fct=summarize(fcts),
                loss=summarize(losses),
                retransmit_rate=sum(retx) / len(retx)))
    return rows


def best_scheme(rows: Sequence[RelatedWorkRow], scenario_name: str) -> str:
    candidates = [r for r in rows if r.scenario.name == scenario_name]
    return min(candidates, key=lambda r: r.fct.mean).scheme


def format_report(rows: Sequence[RelatedWorkRow]) -> str:
    table_rows = []
    for row in rows:
        table_rows.append([row.scenario.name, row.scheme,
                           f"{row.fct.mean:.3f}±{row.fct.std:.3f}",
                           f"{row.loss.mean * 100:.2f}%",
                           f"{row.retransmit_rate * 100:.1f}%"])
    return render_table(
        ["path", "scheme", "FCT (s)", "loss", "retransmit rate"],
        table_rows,
        title="Extension — SUSS vs Section-2 slow-start schemes")
