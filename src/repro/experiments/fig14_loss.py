"""Fig. 14 — packet loss rate versus flow size (Oracle London -> 5G Sweden).

The paper: CUBIC with SUSS experiences *less* loss than without, because
pacing spreads the packets that accelerated cwnd growth would otherwise
burst into the bottleneck buffer; the two curves converge as flow size
grows (losses become dominated by the steady-state phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.experiments.report import render_table
from repro.experiments.runner import loss_rate_summary
from repro.metrics.summary import Summary
from repro.workloads.flows import MB
from repro.workloads.scenarios import FIG14_SCENARIO, PathScenario

DEFAULT_SIZES = (2 * MB, 4 * MB, 8 * MB, 16 * MB, 28 * MB, 40 * MB)

#: paper claims checked by ``repro validate`` against this harness
#: (see :mod:`repro.validate.claims`).
CLAIM_IDS = ("fig14-loss-no-regression",)


@dataclass
class Fig14Result:
    scenario: PathScenario
    sizes: Tuple[int, ...]
    loss: Dict[str, Dict[int, Summary]] = field(default_factory=dict)

    def converged(self, tolerance: float = 0.5,
                  abs_tolerance: float = 0.002) -> bool:
        """True when on/off loss rates converge at the largest size.

        Convergence means the gap closed either relatively (``tolerance``
        of the larger value) or absolutely (``abs_tolerance``, i.e. both
        rates are within a fifth of a percent — the paper's curves meet
        near zero once steady-state losses dominate).
        """
        size = self.sizes[-1]
        off = self.loss["cubic"][size].mean
        on = self.loss["cubic+suss"][size].mean
        gap = abs(off - on)
        return gap <= max(tolerance * max(off, on), abs_tolerance)


def run(scenario: PathScenario = FIG14_SCENARIO,
        sizes: Sequence[int] = DEFAULT_SIZES, iterations: int = 5,
        base_seed: int = 0,
        schemes: Sequence[str] = ("cubic", "cubic+suss")) -> Fig14Result:
    result = Fig14Result(scenario=scenario, sizes=tuple(sizes))
    for scheme in schemes:
        result.loss[scheme] = {}
        for size in sizes:
            result.loss[scheme][size] = loss_rate_summary(
                scenario, scheme, size, iterations, base_seed)
    return result


def format_report(result: Fig14Result) -> str:
    rows = []
    for size in result.sizes:
        row = [size / MB]
        for scheme in ("cubic", "cubic+suss"):
            s = result.loss[scheme][size]
            row.append(f"{s.mean * 100:.3f}%")
        rows.append(row)
    return render_table(
        ["size (MB)", "loss, SUSS off", "loss, SUSS on"], rows,
        title=f"Fig. 14 — packet loss rate ({result.scenario.name})")
