"""Appendix B ablation — impact of BtlBw variation on SUSS.

The paper argues a BtlBw drop is safe for SUSS: if it happens while cwnd
is far below cwnd*, the buffer absorbs the (at most quadrupled) window; if
near cwnd*, the stretched ACK train and rising delay veto acceleration and
SUSS degenerates to traditional slow start.  The ablation drops the
bottleneck bandwidth by half at different points of the slow-start ramp
and compares SUSS-on/off FCT and loss.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.experiments.report import pct, render_table
from repro.experiments.runner import run_single_flow
from repro.metrics.summary import improvement, summarize
from repro.net.netem import SteppedBandwidth
from repro.net.topology import bdp_bytes
from repro.core.units import MB, MBPS, Seconds
from repro.workloads.scenarios import PathScenario, get_scenario


def _stepped_scenario(base: PathScenario, drop_time: float,
                      drop_factor: float) -> PathScenario:
    profile = SteppedBandwidth([(0.0, base.btl_bw),
                                (drop_time, base.btl_bw * drop_factor)])

    class _SteppedScenario(PathScenario):
        def bandwidth_profile(self, rng=None):
            return profile

    return _SteppedScenario(
        name=f"{base.name}/drop@{drop_time:.2f}s", server=base.server,
        link_type=base.link_type, client_location=base.client_location,
        rtt=base.rtt, btl_bw=base.btl_bw, bw_variation=0.0,
        jitter=base.jitter, loss_rate=base.loss_rate,
        buffer_bdp=base.buffer_bdp)


@dataclass
class BtlBwDropResult:
    drop_time: Seconds
    fct_off: Seconds
    fct_on: Seconds
    loss_off: float
    loss_on: float

    @property
    def suss_improvement(self) -> float:
        return improvement(self.fct_off, self.fct_on)

    @property
    def loss_regression(self) -> float:
        """Loss-rate increase caused by SUSS (should be <= 0)."""
        return self.loss_on - self.loss_off


def run(drop_times: Sequence[float] = (0.5, 0.9, 1.3), size: int = 4 * MB,
        drop_factor: float = 0.5, seed: int = 0,
        base: PathScenario = None) -> List[BtlBwDropResult]:
    if base is None:
        base = get_scenario("google-tokyo", "wired")
    results: List[BtlBwDropResult] = []
    for drop_time in drop_times:
        scenario = _stepped_scenario(base, drop_time, drop_factor)
        off = run_single_flow(scenario, "cubic", size, seed=seed)
        on = run_single_flow(scenario, "cubic+suss", size, seed=seed)
        if off.fct is None or on.fct is None:
            raise RuntimeError(f"btlbw-drop flow did not finish at "
                               f"drop_time={drop_time}")
        results.append(BtlBwDropResult(
            drop_time=drop_time, fct_off=off.fct, fct_on=on.fct,
            loss_off=off.loss_rate, loss_on=on.loss_rate))
    return results


def format_report(results: Sequence[BtlBwDropResult]) -> str:
    rows = [[r.drop_time, f"{r.fct_off:.2f}", f"{r.fct_on:.2f}",
             pct(r.suss_improvement), f"{r.loss_off * 100:.3f}%",
             f"{r.loss_on * 100:.3f}%"]
            for r in results]
    return render_table(
        ["drop at (s)", "FCT off", "FCT on", "improvement",
         "loss off", "loss on"], rows,
        title="Appendix B ablation — bottleneck bandwidth halves mid-ramp")
