"""Fig. 2 — a new flow competing against four established flows.

Local dumbbell testbed: four flows share the 50 Mbps bottleneck; a fifth
flow joins later.  With CUBIC the newcomer struggles to reach its fair
share (early losses end slow start prematurely); BBR's loss tolerance lets
it converge.  The measurement is the newcomer's goodput trajectory and its
time to reach a fraction of the fair share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.report import render_table
from repro.experiments.runner import run_local_testbed
from repro.metrics.timeseries import TimeSeries
from repro.core.units import MB, MBPS, BytesPerSec, Seconds
from repro.workloads.flows import FlowSpec
from repro.workloads.scenarios import LocalTestbedConfig

#: goodput-averaging window for trajectory points (seconds)
GOODPUT_WINDOW = 1.0


@dataclass
class Fig2Result:
    cc: str
    fair_share: BytesPerSec                 # per flow (bottleneck / 5)
    newcomer_goodput: List[Tuple[Seconds, BytesPerSec]]   # (t since join, rate)
    time_to_fair_share: Optional[Seconds]   # after join, or None


def run(cc: str, join_time: Seconds = 20.0, horizon: Seconds = 50.0,
        bottleneck_mbps: float = 50.0, rtt: Seconds = 0.050,
        buffer_bdp: float = 2.0, seed: int = 0,
        share_fraction: float = 0.8) -> Fig2Result:
    """Run the five-flow competition for one CCA (all flows use ``cc``)."""
    config = LocalTestbedConfig(bottleneck_mbps=bottleneck_mbps,
                                rtts=(rtt,) * 5, buffer_bdp=buffer_bdp)
    bulk = int(horizon * config.btl_bw)  # enough data to never finish
    specs = [FlowSpec(flow_id=i + 1, size_bytes=bulk, cc=cc,
                      start_time=2.0 * i) for i in range(4)]
    specs.append(FlowSpec(flow_id=5, size_bytes=bulk, cc=cc,
                          start_time=join_time))
    run_result = run_local_testbed(config, specs, until=horizon, seed=seed)

    delivered = run_result.telemetry.flow(5).delivered
    fair_share = config.btl_bw / 5.0
    trajectory: List[Tuple[float, float]] = []
    time_to_share: Optional[float] = None
    t = join_time + GOODPUT_WINDOW
    while t <= horizon:
        goodput = delivered.rate(t - GOODPUT_WINDOW, t)
        trajectory.append((t - join_time, goodput))
        if time_to_share is None and goodput >= share_fraction * fair_share:
            time_to_share = t - join_time
        t += 0.5
    return Fig2Result(cc=cc, fair_share=fair_share,
                      newcomer_goodput=trajectory,
                      time_to_fair_share=time_to_share)


def run_comparison(ccas: Tuple[str, ...] = ("cubic", "bbr"),
                   **kwargs) -> Dict[str, Fig2Result]:
    return {cc: run(cc, **kwargs) for cc in ccas}


def format_report(results: Dict[str, Fig2Result]) -> str:
    rows = []
    for cc, r in results.items():
        reached = ("never (within horizon)" if r.time_to_fair_share is None
                   else f"{r.time_to_fair_share:.1f} s")
        final = r.newcomer_goodput[-1][1] if r.newcomer_goodput else 0.0
        rows.append([cc, r.fair_share / MBPS, final / MBPS, reached])
    return render_table(
        ["cca", "fair share (Mbps)", "newcomer final (Mbps)",
         "time to 80% share"], rows,
        title="Fig. 2 — new flow joining four established flows")
