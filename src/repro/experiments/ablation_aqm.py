"""Extension — SUSS under an AQM (CoDel) bottleneck.

Section 2 notes AQM algorithms like (FQ-)CoDel "help TCP slow-start
converge to cwnd* more quickly".  SUSS must coexist with them: CoDel's
early drops end slow start sooner, so there is less room to accelerate —
but acceleration must not turn into a drop storm either.  The ablation
runs the same download over a drop-tail and a CoDel bottleneck, SUSS on
and off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.report import pct, render_table
from repro.experiments.runner import run_single_flow
from repro.net.queue import CoDelQueue, DropTailQueue
from repro.net.topology import build_path
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.workloads.flows import MB
from repro.workloads.scenarios import PathScenario, get_scenario


@dataclass
class AqmCell:
    queue_kind: str
    cc: str
    fct: float
    loss_rate: float
    retransmissions: int


def _build(scenario: PathScenario, queue_kind: str, seed: int):
    sim = Simulator()
    rng = RngRegistry(seed)
    if queue_kind == "droptail":
        queue = DropTailQueue(scenario.buffer_bytes, name="btl.fwd.q")
    elif queue_kind == "codel":
        queue = CoDelQueue(scenario.buffer_bytes, name="btl.fwd.codel")
    elif queue_kind == "codel-ecn":
        queue = CoDelQueue(scenario.buffer_bytes, name="btl.fwd.codel",
                           ecn=True)
    else:
        raise ValueError(f"unknown queue kind {queue_kind!r}")
    net = build_path(sim, scenario.bandwidth_profile(rng), scenario.rtt,
                     scenario.buffer_bytes, queue=queue)
    return sim, net


def run(size: int = 4 * MB, seed: int = 0,
        scenario: PathScenario = None,
        queue_kinds: Sequence[str] = ("droptail", "codel", "codel-ecn"),
        ccs: Sequence[str] = ("cubic", "cubic+suss")) -> List[AqmCell]:
    if scenario is None:
        scenario = get_scenario("google-tokyo", "wired")
    cells: List[AqmCell] = []
    for queue_kind in queue_kinds:
        for cc in ccs:
            sim, net = _build(scenario, queue_kind, seed)
            result = run_single_flow(scenario, cc, size, seed=seed,
                                     ecn=(queue_kind == "codel-ecn"),
                                     net=net, sim=sim)
            if result.fct is None:
                raise RuntimeError(f"{cc}/{queue_kind} did not finish")
            cells.append(AqmCell(queue_kind=queue_kind, cc=cc,
                                 fct=result.fct,
                                 loss_rate=result.loss_rate,
                                 retransmissions=result.retransmissions))
    return cells


def suss_improvement(cells: Sequence[AqmCell], queue_kind: str) -> float:
    by_cc = {c.cc: c for c in cells if c.queue_kind == queue_kind}
    return (by_cc["cubic"].fct - by_cc["cubic+suss"].fct) / by_cc["cubic"].fct


def format_report(cells: Sequence[AqmCell]) -> str:
    rows = [[c.queue_kind, c.cc, f"{c.fct:.3f}",
             f"{c.loss_rate * 100:.3f}%", c.retransmissions]
            for c in cells]
    table = render_table(["bottleneck queue", "cc", "FCT (s)", "loss",
                          "retransmits"], rows,
                         title="Extension — SUSS under AQM (CoDel)")
    kinds = sorted({c.queue_kind for c in cells})
    footer = "  ".join(
        f"improvement[{k}]={pct(suss_improvement(cells, k))}" for k in kinds)
    return table + "\n" + footer
