"""Fig. 9 — cwnd and RTT dynamics with SUSS on versus off.

A 4G client in NZ downloads from the Google US-East data center.  The paper
shows: (a) SUSS reaches the slow-start exit window in roughly half the time
with a faster, smoother cwnd ramp; (b) both variants stop exponential
growth at about the same cwnd (HyStart fires at the same path state);
(c) RTT stays flat during the accelerated rounds (pacing avoids queueing
spikes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.report import render_table
from repro.experiments.runner import run_single_flow
from repro.metrics.timeseries import TimeSeries
from repro.workloads.scenarios import FIG9_SCENARIO, PathScenario


@dataclass
class Fig9Result:
    cc: str
    fct: float
    cwnd: TimeSeries
    rtt: TimeSeries
    exit_cwnd: int                # ssthresh at slow-start exit (bytes)
    time_to_exit_cwnd: Optional[float]   # time to first reach exit_cwnd
    early_rtt_inflation: float    # max RTT / min RTT during the ramp


def _time_to_reach(series: TimeSeries, level: float) -> Optional[float]:
    for t, v in series:
        if v >= level:
            return t
    return None


def run_one(cc: str, scenario: PathScenario = FIG9_SCENARIO,
            size_bytes: int = 25_000_000, seed: int = 0) -> Fig9Result:
    res = run_single_flow(scenario, cc, size_bytes, seed=seed, collect=True,
                          keep_transfer=True)
    if res.fct is None:
        raise RuntimeError(f"fig9 flow did not complete for {cc}")
    trace = res.telemetry.flow(1)
    alg = res.transfer.sender.cc
    exit_cwnd = alg.ssthresh if alg.ssthresh < (1 << 60) else int(trace.cwnd.max_value() or 0)
    time_to_exit = _time_to_reach(trace.cwnd, exit_cwnd)
    # RTT inflation over the ramp (up to the exit time).
    ramp_end = time_to_exit if time_to_exit is not None else res.fct
    ramp_rtts = [v for t, v in trace.rtt if t <= ramp_end]
    inflation = (max(ramp_rtts) / min(ramp_rtts)) if ramp_rtts else 1.0
    return Fig9Result(cc=cc, fct=res.fct, cwnd=trace.cwnd, rtt=trace.rtt,
                      exit_cwnd=exit_cwnd, time_to_exit_cwnd=time_to_exit,
                      early_rtt_inflation=inflation)


def run(scenario: PathScenario = FIG9_SCENARIO, size_bytes: int = 25_000_000,
        seed: int = 0) -> Dict[str, Fig9Result]:
    return {cc: run_one(cc, scenario, size_bytes, seed)
            for cc in ("cubic", "cubic+suss")}


def format_report(results: Dict[str, Fig9Result]) -> str:
    rows = []
    for cc, r in results.items():
        rows.append([cc, f"{r.exit_cwnd // 1448} segs",
                     "-" if r.time_to_exit_cwnd is None
                     else f"{r.time_to_exit_cwnd:.2f} s",
                     f"{r.early_rtt_inflation:.2f}x", f"{r.fct:.2f} s"])
    return render_table(
        ["cca", "slow-start exit cwnd", "time to exit cwnd",
         "ramp RTT inflation", "FCT"], rows,
        title="Fig. 9 — cwnd/RTT growth dynamics (4G NZ <- Google US-East)")
