"""Fig. 10 — total delivered data over time, SUSS on versus off.

Same path as Fig. 9.  The paper's headline: two seconds in, CUBIC without
SUSS had delivered 2 MB while CUBIC with SUSS had delivered three times
more; after both reach cwnd*, the delivery curves run parallel at θ (SUSS
does not overshoot the fair rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.units import MB, Bytes, BytesPerSec, Seconds
from repro.experiments.report import render_table
from repro.experiments.runner import run_single_flow
from repro.metrics.timeseries import TimeSeries
from repro.workloads.scenarios import FIG9_SCENARIO, PathScenario


@dataclass
class Fig10Result:
    cc: str
    fct: Seconds
    delivered: TimeSeries
    samples: List[Tuple[Seconds, Bytes]]  # (t, delivered bytes)
    steady_rate: BytesPerSec             # late-transfer delivery rate


def run(scenario: PathScenario = FIG9_SCENARIO, size_bytes: Bytes = 25_000_000,
        seed: int = 0,
        sample_times: Tuple[float, ...] = (0.5, 1.0, 2.0, 3.0, 4.0)
        ) -> Dict[str, Fig10Result]:
    results: Dict[str, Fig10Result] = {}
    for cc in ("cubic", "cubic+suss"):
        res = run_single_flow(scenario, cc, size_bytes, seed=seed,
                              collect=True)
        if res.fct is None:
            raise RuntimeError(f"fig10 flow did not complete for {cc}")
        delivered = res.telemetry.flow(1).delivered
        samples = [(t, delivered.value_at(t) or 0.0) for t in sample_times]
        steady = delivered.rate(res.fct * 0.6, res.fct)
        results[cc] = Fig10Result(cc=cc, fct=res.fct, delivered=delivered,
                                  samples=samples, steady_rate=steady)
    return results


def delivered_ratio_at(results: Dict[str, Fig10Result], t: float) -> float:
    """SUSS-on delivered bytes over SUSS-off delivered bytes at time t."""
    on = results["cubic+suss"].delivered.value_at(t) or 0.0
    off = results["cubic"].delivered.value_at(t) or 0.0
    return on / off if off > 0 else float("inf")


def format_report(results: Dict[str, Fig10Result]) -> str:
    rows = []
    times = [t for t, _ in results["cubic"].samples]
    for t in times:
        off = results["cubic"].delivered.value_at(t) or 0.0
        on = results["cubic+suss"].delivered.value_at(t) or 0.0
        ratio = on / off if off else float("inf")
        rows.append([t, off / MB, on / MB, f"{ratio:.2f}x"])
    return render_table(
        ["t (s)", "SUSS off (MB)", "SUSS on (MB)", "ratio"], rows,
        title="Fig. 10 — delivered data over time")
