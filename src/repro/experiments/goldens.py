"""Golden-trace capture: canonical fixed-seed runs for regression pinning.

A *golden trace* is the full structured trace of one fixed-seed download,
committed (as a digest plus a gzipped JSONL stream) under
``tests/golden/``.  The regression suite re-runs each golden scenario
and compares digests; on mismatch it loads the stored stream and reports
the first diverging record, which localises behaviour changes to a
specific simulation event instead of a final FCT number.

This module owns the *capture* side — which runs are golden and how to
execute them — while :mod:`repro.obs.golden` owns the pure digest/diff
machinery.  Keep the run list small and the flows short: the streams
live in git.

Updating after an intentional behaviour change::

    python -m repro trace --update-golden

(or ``update_goldens(...)`` from code).  The refreshed digests land in
``tests/golden/digests.json`` and the streams next to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.obs.golden import load_stream, save_golden, trace_digest
from repro.obs.records import TraceRecord
from repro.obs.sinks import MemorySink
from repro.obs.tracer import Observability, Tracer
from repro.workloads import INTERNET_SCENARIOS


@dataclass(frozen=True)
class GoldenRun:
    """One canonical fixed-seed run."""

    scenario: str
    cc: str
    size_bytes: int
    seed: int


#: name -> canonical run.  Short transfers on a low-jitter path keep the
#: committed streams small while still exercising slow start, HyStart,
#: and (for the SUSS variants) the accelerate/abort decision points.
GOLDEN_RUNS: Dict[str, GoldenRun] = {
    "cubic": GoldenRun("google-tokyo/wired", "cubic", 400_000, 1),
    "cubic+suss": GoldenRun("google-tokyo/wired", "cubic+suss", 400_000, 1),
    "bbr+suss": GoldenRun("google-tokyo/wired", "bbr+suss", 400_000, 1),
}

#: default on-disk location of the committed golden data
DEFAULT_GOLDEN_DIR = (Path(__file__).resolve().parents[3]
                      / "tests" / "golden")


def capture_records(name: str) -> List[TraceRecord]:
    """Execute one golden run under an in-memory sink; return its records."""
    from repro.experiments.runner import run_single_flow

    run = GOLDEN_RUNS[name]
    sink = MemorySink()
    obs = Observability(tracer=Tracer(sink))
    scenario = INTERNET_SCENARIOS[run.scenario]
    result = run_single_flow(scenario, run.cc, run.size_bytes,
                             seed=run.seed, obs=obs)
    obs.close()
    if not result.completed:
        raise RuntimeError(f"golden run {name!r} did not complete")
    return sink.records


def capture_lines(name: str) -> List[str]:
    """Canonical JSONL lines (no trailing newline) of one golden run."""
    return [record.to_line() for record in capture_records(name)]


def capture_digest(name: str) -> str:
    """Streaming SHA-256 digest of one golden run's trace."""
    return trace_digest(capture_records(name))


def update_goldens(golden_dir: Optional[Path] = None,
                   names: Optional[Iterable[str]] = None) -> Dict[str, str]:
    """(Re)record golden data for ``names`` (default: all runs)."""
    directory = Path(golden_dir) if golden_dir is not None \
        else DEFAULT_GOLDEN_DIR
    digests: Dict[str, str] = {}
    for name in (list(names) if names is not None else sorted(GOLDEN_RUNS)):
        if name not in GOLDEN_RUNS:
            known = ", ".join(sorted(GOLDEN_RUNS))
            raise KeyError(f"unknown golden run {name!r}; known: {known}")
        digests[name] = save_golden(directory, name, capture_lines(name))
    return digests


def golden_stream(name: str,
                  golden_dir: Optional[Path] = None) -> List[str]:
    """The committed JSONL lines for ``name`` (for divergence diffs)."""
    directory = Path(golden_dir) if golden_dir is not None \
        else DEFAULT_GOLDEN_DIR
    return load_stream(directory, name)
