"""Fig. 15 — fairness convergence when a fifth flow joins (Jain's index).

Local testbed, 50 Mbps bottleneck, CUBIC everywhere.  Four flows start at
2-second intervals; once they share the link, a fifth flow joins.  Jain's
index over goodput drops at the join and recovers; the paper shows the
recovery is markedly faster with SUSS on, across minRTT ∈ {25, 50, 100,
200 ms} and buffer ∈ {1, 1.5, 2} BDP — more pronounced with longer RTTs
and larger buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.units import MILLIS_PER_SECOND, Seconds
from repro.experiments.report import render_table
from repro.experiments.runner import run_fairness_cell

DEFAULT_RTTS = (0.025, 0.050, 0.100, 0.200)
DEFAULT_BUFFERS = (1.0, 1.5, 2.0)

#: paper claims checked by ``repro validate`` against this harness
#: (see :mod:`repro.validate.claims`).
CLAIM_IDS = ("fig15-fairness-recovery", "fig15-fairness-floor")


@dataclass
class Fig15Cell:
    """One sub-figure: a (minRTT, buffer) configuration, SUSS on or off."""

    rtt: Seconds
    buffer_bdp: float
    suss: bool
    fairness: List[Tuple[Seconds, float]]    # (t, Jain index)
    join_time: Seconds
    recovery_time: Optional[Seconds]         # time to F >= threshold after join

    @property
    def min_fairness_after_join(self) -> float:
        post = [f for t, f in self.fairness if t >= self.join_time]
        return min(post) if post else 1.0


def run_cell(rtt: Seconds, buffer_bdp: float, suss: bool,
             bottleneck_mbps: float = 50.0, join_time: Seconds = 16.0,
             horizon: Seconds = 40.0, seed: int = 0,
             recovery_threshold: float = 0.95,
             window: float = 2.0) -> Fig15Cell:
    cc = "cubic+suss" if suss else "cubic"
    value = run_fairness_cell(rtt, buffer_bdp, cc,
                              bottleneck_mbps=bottleneck_mbps,
                              join_time=join_time, horizon=horizon,
                              seed=seed,
                              recovery_threshold=recovery_threshold,
                              window=window)
    return Fig15Cell(rtt=rtt, buffer_bdp=buffer_bdp, suss=suss,
                     fairness=[(t, f) for t, f in value["fairness"]],
                     join_time=join_time,
                     recovery_time=value["recovery_time"])


def run(rtts: Sequence[float] = DEFAULT_RTTS,
        buffers: Sequence[float] = DEFAULT_BUFFERS,
        **kwargs) -> Dict[Tuple[float, float, bool], Fig15Cell]:
    """The full 4x3 grid, SUSS on and off (24 cells)."""
    cells = {}
    for buffer_bdp in buffers:
        for rtt in rtts:
            for suss in (False, True):
                cells[(rtt, buffer_bdp, suss)] = run_cell(
                    rtt, buffer_bdp, suss, **kwargs)
    return cells


def format_report(cells: Dict[Tuple[float, float, bool], Fig15Cell]) -> str:
    rows = []
    configs = sorted({(r, b) for r, b, _ in cells})
    for rtt, buffer_bdp in configs:
        off = cells[(rtt, buffer_bdp, False)]
        on = cells[(rtt, buffer_bdp, True)]
        fmt = lambda c: ("> horizon" if c.recovery_time is None
                         else f"{c.recovery_time:.1f} s")
        rows.append([f"{rtt * MILLIS_PER_SECOND:.0f} ms", buffer_bdp,
                     f"{off.min_fairness_after_join:.3f}", fmt(off),
                     f"{on.min_fairness_after_join:.3f}", fmt(on)])
    return render_table(
        ["minRTT", "buffer (BDP)", "min F (off)", "recovery (off)",
         "min F (on)", "recovery (on)"], rows,
        title="Fig. 15 — fairness convergence after a fifth flow joins")
