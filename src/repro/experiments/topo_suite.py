"""Topogen scenario suite — SUSS across the scenario-class taxonomy.

One campaign per run: every registered topogen scenario (parking-lot,
multi-bottleneck, routed mesh, LFN/satellite) crossed with
{CUBIC, CUBIC+SUSS} over seeded iterations, with each spec's declared
cross-traffic placed.  The report answers the SUSS question per
scenario class: how much FCT does compressed slow start win where
slow-start dominates (LFN), and does it stay harmless where the path is
shared and multi-hop?

``repro validate`` binds the topo-class claims to this harness (see
``CLAIM_IDS``); ``repro experiment topo`` renders the full table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.campaign.progress import ProgressReporter
from repro.campaign.scheduler import collect_values, run_campaign
from repro.campaign.spec import topo_flow_job
from repro.campaign.store import ResultStore
from repro.experiments.report import pct, render_table
from repro.metrics.summary import Summary, improvement, summarize
from repro.obs.runtime import RunTelemetry
from repro.workloads.flows import MB
from repro.workloads.topo import registered_specs

#: paper claims checked by ``repro validate`` against this harness
#: (see :mod:`repro.validate.claims`).
CLAIM_IDS = (
    "topo-lfn-fct-improvement",
    "topo-parking-lot-no-harm",
    "topo-multi-bottleneck-no-harm",
    "topo-mesh-no-harm",
)

SCHEMES = ("cubic+suss", "cubic")

DEFAULT_SIZE = 2 * MB


@dataclass
class TopoRow:
    """Per-scenario aggregates across schemes."""

    scenario: str
    scenario_class: str
    size: int
    fct: Dict[str, Summary] = field(default_factory=dict)
    loss: Dict[str, Summary] = field(default_factory=dict)

    @property
    def suss_improvement(self) -> float:
        return improvement(self.fct["cubic"].mean,
                           self.fct["cubic+suss"].mean)


def run_suite(scenarios: Optional[Sequence[str]] = None,
              size: int = DEFAULT_SIZE, iterations: int = 3,
              base_seed: int = 0, *, cross_load: float = 1.0,
              jobs: int = 1, store: Optional[ResultStore] = None,
              progress: Optional[ProgressReporter] = None,
              timeout: Optional[float] = None, retries: int = 2,
              telemetry: Optional[RunTelemetry] = None) -> List[TopoRow]:
    """Run the scenario x scheme x seed matrix as one cached campaign."""
    chosen = (list(scenarios) if scenarios is not None
              else sorted(registered_specs()))
    specs = [topo_flow_job(name, scheme, size, seed=base_seed + i,
                           cross_load=cross_load)
             for name in chosen
             for scheme in SCHEMES
             for i in range(iterations)]
    values = collect_values(run_campaign(
        specs, jobs=jobs, store=store, timeout=timeout, retries=retries,
        progress=progress, telemetry=telemetry))
    rows: List[TopoRow] = []
    cursor = 0
    for name in chosen:
        row: Optional[TopoRow] = None
        for scheme in SCHEMES:
            chunk = values[cursor:cursor + iterations]
            cursor += iterations
            for value in chunk:
                if not value["completed"]:
                    raise RuntimeError(
                        f"{name} {scheme} did not complete "
                        f"(seed {value['seed']})")
            if row is None:
                row = TopoRow(scenario=name,
                              scenario_class=chunk[0]["scenario_class"],
                              size=size)
            row.fct[scheme] = summarize([v["fct"] for v in chunk])
            row.loss[scheme] = summarize([v["loss_rate"] for v in chunk])
        rows.append(row)
    return rows


def format_report(rows: Sequence[TopoRow]) -> str:
    table_rows = [[row.scenario, row.scenario_class,
                   f"{row.fct['cubic'].mean:.3f}",
                   f"{row.fct['cubic+suss'].mean:.3f}",
                   pct(row.suss_improvement)]
                  for row in rows]
    return render_table(
        ["scenario", "class", "CUBIC FCT (s)", "+SUSS FCT (s)",
         "improvement"],
        table_rows,
        title="Topogen suite — SUSS FCT effect per scenario class")


def run(size: int = DEFAULT_SIZE, iterations: int = 3, base_seed: int = 0,
        **campaign_kwargs) -> List[TopoRow]:
    """CLI entry: run the full registered suite and print the table."""
    rows = run_suite(size=size, iterations=iterations, base_seed=base_seed,
                     **campaign_kwargs)
    print(format_report(rows))
    return rows
