"""Fig. 13 — SUSS has no impact on large TCP flows.

A 100 MB transfer between two data centers (US-East -> Sydney).  The paper
plots, per delivered-megabyte milestone, the improvement of SUSS-on over
SUSS-off: large during the early megabytes, tapering to negligible — SUSS
accelerates only the slow-start phase and never pushes cwnd past cwnd*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.report import pct, render_table
from repro.experiments.runner import run_single_flow
from repro.metrics.timeseries import TimeSeries
from repro.workloads.flows import MB
from repro.workloads.scenarios import FIG13_SCENARIO, PathScenario

#: paper claims checked by ``repro validate`` against this harness
#: (see :mod:`repro.validate.claims`).
CLAIM_IDS = ("fig13-large-flow-no-regression",)


@dataclass
class Fig13Result:
    size_bytes: int
    fct_on: float
    fct_off: float
    milestones: List[Tuple[float, float, float, float]]
    # (delivered MB, t_off, t_on, improvement)

    @property
    def total_improvement(self) -> float:
        return (self.fct_off - self.fct_on) / self.fct_off

    @property
    def early_improvement(self) -> float:
        """Improvement at the first milestone."""
        return self.milestones[0][3]

    @property
    def late_improvement(self) -> float:
        """Improvement at the last milestone (should be near zero)."""
        return self.milestones[-1][3]


def _time_to_deliver(series: TimeSeries, target: float) -> Optional[float]:
    for t, v in series:
        if v >= target:
            return t
    return None


def run(size_bytes: int = 100 * MB, seed: int = 0,
        scenario: PathScenario = FIG13_SCENARIO,
        milestones_mb: Tuple[float, ...] = (1, 2, 5, 10, 20, 40, 60, 80, 100)
        ) -> Fig13Result:
    series: Dict[str, TimeSeries] = {}
    fct: Dict[str, float] = {}
    for cc in ("cubic", "cubic+suss"):
        res = run_single_flow(scenario, cc, size_bytes, seed=seed,
                              collect=True)
        if res.fct is None:
            raise RuntimeError(f"fig13 flow did not complete for {cc}")
        series[cc] = res.telemetry.flow(1).delivered
        fct[cc] = res.fct
    milestones: List[Tuple[float, float, float, float]] = []
    for mb in milestones_mb:
        target = mb * MB
        if target > size_bytes:
            continue
        t_off = _time_to_deliver(series["cubic"], target)
        t_on = _time_to_deliver(series["cubic+suss"], target)
        if t_off is None or t_on is None:
            continue
        milestones.append((mb, t_off, t_on, (t_off - t_on) / t_off))
    return Fig13Result(size_bytes=size_bytes, fct_on=fct["cubic+suss"],
                       fct_off=fct["cubic"], milestones=milestones)


def format_report(result: Fig13Result) -> str:
    rows = [[mb, f"{t_off:.2f}", f"{t_on:.2f}", pct(imp)]
            for mb, t_off, t_on, imp in result.milestones]
    table = render_table(
        ["delivered (MB)", "SUSS off (s)", "SUSS on (s)", "improvement"],
        rows, title="Fig. 13 — per-milestone improvement, 100 MB DC-to-DC flow")
    tail = (f"\ntotal FCT: off={result.fct_off:.2f}s on={result.fct_on:.2f}s "
            f"({pct(result.total_improvement)})")
    return table + tail
