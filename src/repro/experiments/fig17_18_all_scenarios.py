"""Figs. 17 & 18 — the full 28-scenario matrix (7 servers x 4 link types).

Fig. 18: FCT of BBR, CUBIC+SUSS-on, CUBIC+SUSS-off per scenario and flow
size, with SUSS's relative improvement.  Fig. 17: packet-loss rates for
the same runs.  Paper headline: CUBIC+SUSS beats CUBIC in all 28
scenarios and loses to BBR in only one; loss is noticeable mainly on
Oracle + high-speed-link paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.progress import ProgressReporter
from repro.campaign.scheduler import collect_values, run_campaign
from repro.campaign.spec import single_flow_job
from repro.campaign.store import ResultStore
from repro.experiments.report import pct, render_table
from repro.metrics.summary import Summary, improvement, summarize
from repro.obs.runtime import RunTelemetry
from repro.workloads.flows import MB
from repro.workloads.scenarios import (
    INTERNET_SCENARIOS,
    LINK_NAMES,
    SERVER_NAMES,
    get_scenario,
)

DEFAULT_SIZES = (1 * MB, 2 * MB, 4 * MB)
SCHEMES = ("bbr", "cubic+suss", "cubic")


@dataclass
class ScenarioRow:
    """Per-(scenario, size) aggregates across schemes."""

    scenario: str
    size: int
    fct: Dict[str, Summary] = field(default_factory=dict)
    loss: Dict[str, Summary] = field(default_factory=dict)

    @property
    def suss_improvement(self) -> float:
        return improvement(self.fct["cubic"].mean,
                           self.fct["cubic+suss"].mean)

    @property
    def suss_beats_cubic(self) -> bool:
        return self.fct["cubic+suss"].mean <= self.fct["cubic"].mean

    @property
    def suss_beats_bbr(self) -> bool:
        return self.fct["cubic+suss"].mean <= self.fct["bbr"].mean


def run_matrix(servers: Sequence[str] = tuple(SERVER_NAMES),
               links: Sequence[str] = tuple(LINK_NAMES),
               sizes: Sequence[int] = DEFAULT_SIZES,
               iterations: int = 3, base_seed: int = 0,
               schemes: Sequence[str] = SCHEMES, *,
               jobs: int = 1, store: Optional[ResultStore] = None,
               progress: Optional[ProgressReporter] = None,
               timeout: Optional[float] = None,
               retries: int = 2,
               telemetry: Optional[RunTelemetry] = None
               ) -> List[ScenarioRow]:
    """Run the (sub-)matrix; default covers all 28 scenarios.

    The full matrix is flattened into one campaign (scenario × size ×
    scheme × seed) and fanned out over ``jobs`` workers; with a ``store``
    repeated/interrupted runs only compute cache misses.  Results are
    assembled in deterministic matrix order, so the rows are identical at
    any ``jobs`` level.
    """
    cells = [(get_scenario(server, link), size)
             for server in servers for link in links for size in sizes]
    specs = [single_flow_job(scenario, scheme, size, seed=base_seed + i)
             for scenario, size in cells
             for scheme in schemes
             for i in range(iterations)]
    values = collect_values(run_campaign(
        specs, jobs=jobs, store=store, timeout=timeout, retries=retries,
        progress=progress, telemetry=telemetry))

    rows: List[ScenarioRow] = []
    cursor = 0
    for scenario, size in cells:
        row = ScenarioRow(scenario=scenario.name, size=size)
        for scheme in schemes:
            chunk = values[cursor:cursor + iterations]
            cursor += iterations
            for value in chunk:
                if not value["completed"]:
                    raise RuntimeError(
                        f"{scenario.name} {scheme} {size} did not "
                        f"complete (seed {value['seed']})")
            row.fct[scheme] = summarize([v["fct"] for v in chunk])
            row.loss[scheme] = summarize([v["loss_rate"] for v in chunk])
        rows.append(row)
    return rows


def win_counts(rows: Sequence[ScenarioRow]) -> Tuple[int, int, int]:
    """(scenarios where SUSS beats CUBIC, where it beats BBR, total).

    A scenario counts as a win if SUSS wins on the mean over its sizes.
    """
    by_scenario: Dict[str, List[ScenarioRow]] = {}
    for row in rows:
        by_scenario.setdefault(row.scenario, []).append(row)
    beats_cubic = beats_bbr = 0
    for scenario_rows in by_scenario.values():
        mean = lambda scheme: (sum(r.fct[scheme].mean for r in scenario_rows)
                               / len(scenario_rows))
        if mean("cubic+suss") <= mean("cubic"):
            beats_cubic += 1
        if "bbr" in scenario_rows[0].fct and mean("cubic+suss") <= mean("bbr"):
            beats_bbr += 1
    return beats_cubic, beats_bbr, len(by_scenario)


def format_fct_report(rows: Sequence[ScenarioRow]) -> str:
    table_rows = []
    for row in rows:
        table_rows.append([
            row.scenario, row.size / MB,
            f"{row.fct['bbr'].mean:.2f}" if "bbr" in row.fct else "-",
            f"{row.fct['cubic'].mean:.2f}",
            f"{row.fct['cubic+suss'].mean:.2f}",
            pct(row.suss_improvement)])
    table = render_table(
        ["scenario", "size (MB)", "BBR", "CUBIC off", "CUBIC on",
         "improvement"], table_rows,
        title="Fig. 18 — FCT across internet scenarios")
    wins_cubic, wins_bbr, total = win_counts(rows)
    return (f"{table}\nSUSS beats CUBIC in {wins_cubic}/{total} scenarios, "
            f"beats BBR in {wins_bbr}/{total}")


def format_loss_report(rows: Sequence[ScenarioRow]) -> str:
    table_rows = []
    for row in rows:
        cells = [row.scenario, row.size / MB]
        for scheme in ("bbr", "cubic", "cubic+suss"):
            if scheme in row.loss:
                cells.append(f"{row.loss[scheme].mean * 100:.3f}%")
            else:
                cells.append("-")
        table_rows.append(cells)
    return render_table(
        ["scenario", "size (MB)", "BBR loss", "CUBIC off loss",
         "CUBIC on loss"], table_rows,
        title="Fig. 17 — packet loss across internet scenarios")
