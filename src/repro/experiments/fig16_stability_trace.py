"""Fig. 16 — one large flow facing twelve sequential small flows (trace).

Local testbed: a large flow (200 ms minRTT, CUBIC, 1 BDP buffer) transfers
while twelve 2 MB flows with different minRTTs start at 2-second intervals.
The trace shows the large flow ceding bandwidth to each small flow and
reclaiming it afterwards; this is the workload behind Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.report import render_table
from repro.experiments.runner import LocalRun, run_local_testbed
from repro.workloads.flows import MB, stability_workload
from repro.workloads.scenarios import LocalTestbedConfig

#: minRTTs of the five dumbbell pairs: pair 0 hosts the large flow; small
#: flows cycle over pairs 1-4 ("twelve 2 MB TCP flows with different
#: minRTTs").
PAIR_RTTS = (0.200, 0.030, 0.060, 0.120, 0.200)


@dataclass
class Fig16Result:
    large_cc: str
    small_cc: str
    large_fct: Optional[float]
    small_fcts: List[Optional[float]]
    large_goodput: List[Tuple[float, float]]   # (t, bytes/s)

    @property
    def completed_small_flows(self) -> int:
        return sum(1 for fct in self.small_fcts if fct is not None)


def run(large_cc: str = "cubic", small_cc: str = "cubic+suss",
        large_size: int = 100 * MB, small_size: int = 2 * MB,
        n_small: int = 12, bottleneck_mbps: float = 50.0,
        buffer_bdp: float = 1.0, large_rtt: float = 0.200,
        horizon: float = 60.0, seed: int = 0) -> Fig16Result:
    rtts = (large_rtt,) + PAIR_RTTS[1:]
    config = LocalTestbedConfig(bottleneck_mbps=bottleneck_mbps, rtts=rtts,
                                buffer_bdp=buffer_bdp,
                                reference_rtt=large_rtt)
    specs = stability_workload(large_size=large_size, large_cc=large_cc,
                               small_size=small_size, small_cc=small_cc,
                               n_small=n_small)
    result = run_local_testbed(config, specs, until=horizon, seed=seed)
    delivered = result.telemetry.flow(1).delivered
    goodput: List[Tuple[float, float]] = []
    t = 1.0
    while t <= horizon:
        goodput.append((t, delivered.rate(t - 1.0, t)))
        t += 1.0
    small_fcts = [result.fct_of(fid) for fid in range(2, 2 + n_small)]
    return Fig16Result(large_cc=large_cc, small_cc=small_cc,
                       large_fct=result.fct_of(1), small_fcts=small_fcts,
                       large_goodput=goodput)


def format_report(result: Fig16Result) -> str:
    done = [f for f in result.small_fcts if f is not None]
    mean_small = sum(done) / len(done) if done else float("nan")
    peak = max((g for _, g in result.large_goodput), default=0.0)
    dips = sum(1 for _, g in result.large_goodput if g < 0.5 * peak)
    rows = [[result.large_cc, result.small_cc,
             "-" if result.large_fct is None else f"{result.large_fct:.1f} s",
             f"{mean_small:.2f} s",
             f"{result.completed_small_flows}/{len(result.small_fcts)}",
             dips]]
    return render_table(
        ["large CCA", "small CCA", "large FCT", "mean small FCT",
         "small flows done", "seconds below half of peak rate"], rows,
        title="Fig. 16 — large flow vs twelve sequential small flows")
