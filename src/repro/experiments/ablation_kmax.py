"""Appendix A ablation — generalised SUSS with deeper look-ahead.

``k_max = 1`` is the paper's main design (G ∈ {2, 4}); Appendix A extends
the conditions to ``k_max`` rounds of look-ahead (G up to ``2**(k_max+1)``)
under the assumption of stable network conditions.  The ablation sweeps
``k_max`` on a clean long-fat path and on a jittery wireless path: deeper
look-ahead helps on the former and is (deliberately) rarely granted on the
latter — matching the paper's rationale for limiting the main design to
one round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.report import pct, render_table
from repro.experiments.runner import fct_summary
from repro.metrics.summary import Summary, improvement
from repro.workloads.flows import MB
from repro.workloads.scenarios import PathScenario, get_scenario

KMAX_SCHEMES: Tuple[Tuple[str, int], ...] = (
    ("cubic", 0),          # baseline (no acceleration)
    ("cubic+suss", 1),     # main design
    ("cubic+suss-k2", 2),
    ("cubic+suss-k3", 3),
)


@dataclass
class KmaxResult:
    scenario: PathScenario
    size: int
    fct: Dict[str, Summary]

    def improvement_over_cubic(self, scheme: str) -> float:
        return improvement(self.fct["cubic"].mean, self.fct[scheme].mean)


def run(scenarios: Sequence[PathScenario] = (), size: int = 2 * MB,
        iterations: int = 3, base_seed: int = 0) -> List[KmaxResult]:
    if not scenarios:
        scenarios = (get_scenario("google-tokyo", "wired"),
                     get_scenario("google-tokyo", "4g"))
    results: List[KmaxResult] = []
    for scenario in scenarios:
        fct = {scheme: fct_summary(scenario, scheme, size, iterations,
                                   base_seed)
               for scheme, _ in KMAX_SCHEMES}
        results.append(KmaxResult(scenario=scenario, size=size, fct=fct))
    return results


def format_report(results: Sequence[KmaxResult]) -> str:
    rows = []
    for result in results:
        for scheme, k_max in KMAX_SCHEMES:
            s = result.fct[scheme]
            imp = "-" if scheme == "cubic" else pct(
                result.improvement_over_cubic(scheme))
            rows.append([result.scenario.name, k_max, scheme,
                         f"{s.mean:.2f}±{s.std:.2f}", imp])
    return render_table(
        ["scenario", "k_max", "scheme", "FCT (s)", "vs CUBIC"], rows,
        title="Appendix A ablation — look-ahead depth k_max")
