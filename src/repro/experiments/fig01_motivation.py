"""Fig. 1 — slow-start under-utilisation on a long path (motivation).

A file is downloaded from a US cloud server to a PC in New Zealand with
CUBIC and with BBRv2.  θ is the delivery rate at the optimal congestion
window (estimated, as in the paper, from the steady-state delivery rate);
the "optimal from the outset" line is ``θ · t``.  The result quantifies
how much less data slow start delivers in the early seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.experiments.report import render_table
from repro.experiments.runner import run_single_flow
from repro.metrics.timeseries import TimeSeries
from repro.core.units import MBPS, Bytes, BytesPerSec, Seconds
from repro.workloads.scenarios import get_scenario


def fig1_scenario():
    """US cloud server -> wired PC in New Zealand (about 150 ms RTT)."""
    base = get_scenario("google-us-east", "wired")
    return replace(base, name="google-us-east/nz-wired", rtt=0.150,
                   client_location="nz")


@dataclass
class Fig1Result:
    """Per-CCA motivation measurements."""

    cc: str
    fct: Seconds
    theta: BytesPerSec                # steady-state delivery rate
    delivered: TimeSeries             # cumulative delivered bytes
    checkpoints: List[Tuple[float, float, float]]  # (t, actual, optimal)

    @property
    def early_deficit(self) -> float:
        """Fraction of the optimal-line data missing at the 2 s checkpoint."""
        for t, actual, optimal in self.checkpoints:
            if abs(t - 2.0) < 1e-9 and optimal > 0:
                return 1.0 - actual / optimal
        return 0.0


def run(size_bytes: Bytes = 25_000_000, seed: int = 0,
        ccas: Tuple[str, ...] = ("cubic", "bbr2"),
        checkpoint_times: Tuple[float, ...] = (1.0, 2.0, 4.0)
        ) -> Dict[str, Fig1Result]:
    """Run the Fig. 1 measurement for each CCA."""
    scenario = fig1_scenario()
    results: Dict[str, Fig1Result] = {}
    for cc in ccas:
        res = run_single_flow(scenario, cc, size_bytes, seed=seed,
                              collect=True)
        if res.fct is None:
            raise RuntimeError(f"fig1 flow did not complete for {cc}")
        delivered = res.telemetry.flow(1).delivered
        # Steady-state delivery rate: growth over the second half of the
        # transfer, which excludes the slow-start ramp.
        theta = delivered.rate(res.fct / 2.0, res.fct)
        checkpoints = []
        for t in checkpoint_times:
            actual = delivered.value_at(t) or 0.0
            checkpoints.append((t, actual, theta * t))
        results[cc] = Fig1Result(cc=cc, fct=res.fct, theta=theta,
                                 delivered=delivered, checkpoints=checkpoints)
    return results


def format_report(results: Dict[str, Fig1Result]) -> str:
    rows = []
    for cc, r in results.items():
        for t, actual, optimal in r.checkpoints:
            rows.append([cc, f"{r.theta / MBPS:.1f} Mbps", t,
                         actual / 1e6, optimal / 1e6,
                         f"{(1 - actual / max(optimal, 1e-9)) * 100:.0f}%"])
    return render_table(
        ["cca", "theta", "t (s)", "delivered (MB)", "optimal (MB)",
         "deficit"], rows,
        title="Fig. 1 — slow-start under-utilisation (US -> NZ download)")
