"""Extension — SUSS with delayed acknowledgements.

Receivers commonly delay ACKs (one per two segments).  That halves the
ACK clock slow start runs on and thins the blue ACK train SUSS measures
(Δt^Bat comes from fewer, sparser ACKs).  The ablation checks that the
SUSS gain survives a delaying receiver, which the paper's real-world
clients (Windows/Linux/Android/iOS) mostly are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.report import pct, render_table
from repro.experiments.runner import run_single_flow
from repro.workloads.flows import MB
from repro.workloads.scenarios import PathScenario, get_scenario


@dataclass
class DelAckCell:
    delayed_ack: bool
    cc: str
    fct: float
    loss_rate: float


def run(size: int = 2 * MB, seed: int = 0,
        scenario: PathScenario = None,
        ccs: Sequence[str] = ("cubic", "cubic+suss")) -> List[DelAckCell]:
    if scenario is None:
        scenario = get_scenario("google-tokyo", "wired")
    cells: List[DelAckCell] = []
    for delayed in (False, True):
        for cc in ccs:
            result = run_single_flow(scenario, cc, size, seed=seed,
                                     delayed_ack=delayed)
            if result.fct is None:
                raise RuntimeError(f"{cc} delack={delayed} did not finish")
            cells.append(DelAckCell(delayed_ack=delayed, cc=cc,
                                    fct=result.fct,
                                    loss_rate=result.loss_rate))
    return cells


def suss_improvement(cells: Sequence[DelAckCell], delayed: bool) -> float:
    by_cc = {c.cc: c for c in cells if c.delayed_ack == delayed}
    return (by_cc["cubic"].fct - by_cc["cubic+suss"].fct) / by_cc["cubic"].fct


def format_report(cells: Sequence[DelAckCell]) -> str:
    rows = [["on" if c.delayed_ack else "off", c.cc, f"{c.fct:.3f}",
             f"{c.loss_rate * 100:.3f}%"] for c in cells]
    table = render_table(["delayed ACK", "cc", "FCT (s)", "loss"], rows,
                         title="Extension — SUSS vs delayed ACKs")
    footer = "  ".join(
        f"improvement[delack={'on' if d else 'off'}]="
        f"{pct(suss_improvement(cells, d))}" for d in (False, True))
    return table + "\n" + footer
