"""Extension — bottleneck queue pressure during slow start.

The mechanism behind Fig. 14: plain slow start clocks out back-to-back
doubling bursts whose tail stacks up in the bottleneck buffer, while SUSS
pushes its extra data through the pacing period at ``cwnd/minRTT``.
This experiment watches the bottleneck queue directly and reports peak
and 95th-percentile occupancy over the slow-start phase for CUBIC with
SUSS off/on (and optionally the burstier related-work schemes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.report import render_table
from repro.experiments.runner import run_single_flow
from repro.metrics.queuemon import QueueMonitor
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.workloads.flows import MB
from repro.workloads.scenarios import PathScenario, get_scenario


@dataclass
class BurstinessRow:
    cc: str
    fct: float
    peak_queue: float            # bytes
    p95_queue: float             # bytes
    buffer_bytes: int
    drops: int

    @property
    def peak_fill(self) -> float:
        return self.peak_queue / self.buffer_bytes


def run(size: int = 3 * MB, seed: int = 0,
        scenario: PathScenario = None,
        ccs: Sequence[str] = ("cubic", "cubic+suss"),
        sample_interval: float = 0.002) -> List[BurstinessRow]:
    if scenario is None:
        scenario = get_scenario("google-tokyo", "wired")
    rows: List[BurstinessRow] = []
    for cc in ccs:
        sim = Simulator()
        net = scenario.build(sim, RngRegistry(seed))
        monitor = QueueMonitor(sim, net.bottleneck_queue,
                               interval=sample_interval)
        result = run_single_flow(scenario, cc, size, seed=seed,
                                 net=net, sim=sim)
        monitor.stop()
        if result.fct is None:
            raise RuntimeError(f"{cc} did not finish")
        # Queue pressure over the ramp (first 60% of the flow's life).
        ramp_end = result.fct * 0.6
        rows.append(BurstinessRow(
            cc=cc, fct=result.fct,
            peak_queue=monitor.peak(0.0, ramp_end),
            p95_queue=monitor.percentile(95, 0.0, ramp_end),
            buffer_bytes=scenario.buffer_bytes,
            drops=result.drops))
    return rows


def format_report(rows: Sequence[BurstinessRow]) -> str:
    table = [[r.cc, f"{r.fct:.3f}", f"{r.peak_queue / 1e3:.0f} kB",
              f"{r.peak_fill * 100:.0f}%", f"{r.p95_queue / 1e3:.0f} kB",
              r.drops]
             for r in rows]
    return render_table(
        ["cc", "FCT (s)", "peak queue", "peak fill", "p95 queue", "drops"],
        table,
        title="Extension — bottleneck queue pressure during slow start")
