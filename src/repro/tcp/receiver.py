"""TCP receiver: cumulative ACKs, out-of-order reassembly, delayed ACKs.

The receiver plays the role of the client running ``wget``/``curl`` in the
paper: it consumes a one-way bulk transfer and generates the ACK stream the
sender's congestion control is clocked by.  Every in-order arrival advances
``rcv_nxt`` (jumping over previously buffered out-of-order data); every
out-of-order arrival elicits an immediate duplicate ACK, which is what
drives fast retransmit at the sender.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.net.node import Host
from repro.net.packet import Packet, PacketKind, POOL
from repro.obs import records as obsrec
from repro.sim.engine import Simulator

#: Maximum delayed-ACK hold time (Linux quickack aside, 40 ms is typical).
DELAYED_ACK_TIMEOUT = 0.040


class TcpReceiver:
    """Receiving endpoint of a simulated TCP connection."""

    def __init__(self, sim: Simulator, host: Host, peer: str, flow_id: int,
                 delayed_ack: bool = False,
                 telemetry: Optional[object] = None) -> None:
        self.sim = sim
        self.host = host
        self.peer = peer
        self.flow_id = flow_id
        self.delayed_ack = delayed_ack
        self.telemetry = telemetry

        self.rcv_nxt = 0
        #: disjoint, sorted [start, end) intervals received above rcv_nxt
        self.ooo: List[Tuple[int, int]] = []
        self.bytes_delivered = 0  # in-order bytes handed "to the application"
        self.acks_sent = 0
        self.duplicate_segments = 0
        self._pending_ack_echo: Optional[float] = None
        self._unacked_segments = 0
        self._delack_timer = None
        self.obs = sim.obs
        self._m_rcvd = (None if self.obs is None else
                        self.obs.metrics.counter("tcp.delivered_bytes_rx",
                                                 flow=flow_id))

        host.attach(flow_id, self)

    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        if packet.kind is PacketKind.SYN:
            self._send_control(PacketKind.SYNACK)
            return
        if packet.kind is not PacketKind.DATA:
            return
        # RFC 3168: latch ECE on a CE mark, clear it when CWR arrives.
        if packet.ce:
            self._ece_latched = True
        if packet.cwr:
            self._ece_latched = False
        echo = None if packet.retransmit else packet.sent_time
        if packet.end_seq <= self.rcv_nxt:
            # Entirely duplicate segment: re-ACK so the sender makes progress.
            self.duplicate_segments += 1
            self._emit_ack(echo, force=True)
            return
        if packet.seq <= self.rcv_nxt:
            self._advance(packet.end_seq)
            self._note_progress()
            if self.delayed_ack:
                self._maybe_delay_ack(echo)
            else:
                self._emit_ack(echo, force=True)
        else:
            # Out of order: buffer and send an immediate duplicate ACK.
            self._insert_interval(packet.seq, packet.end_seq)
            # RFC 2018: the first SACK block must describe the interval
            # containing the segment that triggered this ACK, so the sender
            # learns every hole as the in-flight data keeps arriving.
            for interval in self.ooo:
                if interval[0] <= packet.seq < interval[1]:
                    self._last_block = interval
                    break
            self._emit_ack(echo, force=True)

    # ------------------------------------------------------------------
    def _advance(self, end_seq: int) -> None:
        self.rcv_nxt = max(self.rcv_nxt, end_seq)
        # Swallow any buffered intervals now contiguous with rcv_nxt.
        while self.ooo and self.ooo[0][0] <= self.rcv_nxt:
            start, end = self.ooo.pop(0)
            self.rcv_nxt = max(self.rcv_nxt, end)

    def _insert_interval(self, start: int, end: int) -> None:
        intervals = sorted(self.ooo + [(start, end)])
        merged: List[Tuple[int, int]] = []
        for s, e in intervals:
            if merged and s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        self.ooo = merged

    def _note_progress(self) -> None:
        delivered = self.rcv_nxt
        if delivered > self.bytes_delivered:
            advanced = delivered - self.bytes_delivered
            self.bytes_delivered = delivered
            if self.telemetry is not None:
                self.telemetry.on_delivered(self.flow_id, self.sim.now, delivered)
            if self.obs is not None:
                self._m_rcvd.add(advanced)
                self.obs.emit(self.sim.now, obsrec.TCP_DELIVERED,
                              self.flow_id, delivered=delivered)

    # ------------------------------------------------------------------
    def _maybe_delay_ack(self, echo: Optional[float]) -> None:
        self._unacked_segments += 1
        self._pending_ack_echo = echo
        if self._unacked_segments >= 2:
            self._emit_ack(echo, force=True)
            return
        if self._delack_timer is None or not self.sim.event_pending(self._delack_timer):
            self._delack_timer = self.sim.schedule(
                DELAYED_ACK_TIMEOUT, self._delack_fire)

    def _delack_fire(self) -> None:
        if self._unacked_segments > 0:
            self._emit_ack(self._pending_ack_echo, force=True)

    #: maximum SACK blocks carried per ACK (TCP option space limit)
    MAX_SACK_BLOCKS = 4
    _last_block: Optional[Tuple[int, int]] = None
    _ece_latched: bool = False

    def _sack_blocks(self) -> Optional[Tuple[Tuple[int, int], ...]]:
        if not self.ooo:
            return None
        blocks: List[Tuple[int, int]] = []
        recent = self._last_block
        if recent is not None and recent in self.ooo:
            blocks.append(recent)
        for interval in self.ooo:
            if len(blocks) >= self.MAX_SACK_BLOCKS:
                break
            if interval not in blocks:
                blocks.append(interval)
        return tuple(blocks)

    def _emit_ack(self, echo: Optional[float], force: bool) -> None:
        self._unacked_segments = 0
        if self._delack_timer is not None:
            self.sim.cancel_event(self._delack_timer)
        sack = self._sack_blocks()
        ack = POOL.acquire_ack(self.flow_id, self.host.name, self.peer,
                               self.rcv_nxt, self.sim.now, echo, sack,
                               self._ece_latched)
        self.acks_sent += 1
        self.host.transmit(ack)

    def _send_control(self, kind: PacketKind) -> None:
        pkt = Packet(flow_id=self.flow_id, src=self.host.name, dst=self.peer,
                     kind=kind, sent_time=self.sim.now)
        self.host.transmit(pkt)
