"""RTT estimation (RFC 6298) and minimum-RTT tracking.

Besides the smoothed RTT / RTO machinery every TCP needs, this module
tracks the two quantities SUSS's theory depends on (Section 3 of the
paper): ``minRTT`` — the minimum RTT since connection start — and the
*round index* at which ``minRTT`` was last updated, from which SUSS derives
``r`` (rounds since the last minRTT update) for Condition 2.
"""

from __future__ import annotations

from typing import Optional

from repro.core.units import Seconds

#: Lower bound for the retransmission timeout (Linux uses 200 ms).
RTO_MIN: Seconds = 0.2
#: Upper bound for the retransmission timeout.
RTO_MAX: Seconds = 60.0
#: RTO before any RTT sample exists (RFC 6298 initial value, scaled down
#: from 3 s to 1 s per the RFC 8961 discussion / Linux behaviour).
RTO_INITIAL: Seconds = 1.0


class RttEstimator:
    """SRTT/RTTVAR/RTO per RFC 6298 plus min-RTT bookkeeping."""

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    K = 4.0

    def __init__(self) -> None:
        self.srtt: Optional[Seconds] = None
        self.rttvar: Optional[Seconds] = None
        self.latest: Optional[Seconds] = None
        self.min_rtt: Optional[Seconds] = None
        self.min_rtt_round: int = 0
        self.samples = 0

    def update(self, sample: Seconds, round_index: int = 0) -> None:
        """Fold in a new RTT sample taken during delivery round ``round_index``."""
        if sample <= 0:
            raise ValueError(f"RTT sample must be positive, got {sample}")
        self.latest = sample
        self.samples += 1
        if self.min_rtt is None or sample < self.min_rtt:
            self.min_rtt = sample
            self.min_rtt_round = round_index
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(self.srtt - sample)
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * sample

    @property
    def rto(self) -> Seconds:
        """Current retransmission timeout.

        As in Linux (``tcp_rtt_estimator``), the variance term is floored
        at RTO_MIN: ``rto = srtt + max(4 * rttvar, RTO_MIN)``.  Without the
        floor, stable RTT samples drive rttvar toward zero and the RTO
        toward one RTT — which spuriously fires during slow start's
        natural ACK silence between rounds.
        """
        if self.srtt is None or self.rttvar is None:
            return RTO_INITIAL
        return min(self.srtt + max(self.K * self.rttvar, RTO_MIN), RTO_MAX)

    def rounds_since_min_update(self, current_round: int) -> int:
        """``r`` in the paper: rounds elapsed since minRTT was last lowered."""
        return max(current_round - self.min_rtt_round, 0)
