"""Simulated TCP stack: sender, receiver, RTT estimation, pacing, wiring."""

from repro.tcp.connection import Transfer, open_transfer
from repro.tcp.pacer import Pacer
from repro.tcp.receiver import TcpReceiver
from repro.tcp.rtt import RttEstimator
from repro.tcp.sender import DEFAULT_IW_SEGMENTS, DUPACK_THRESHOLD, TcpSender
from repro.tcp.stream import StreamingSource, open_stream

__all__ = [
    "StreamingSource",
    "open_stream",
    "Transfer",
    "open_transfer",
    "Pacer",
    "TcpReceiver",
    "RttEstimator",
    "TcpSender",
    "DEFAULT_IW_SEGMENTS",
    "DUPACK_THRESHOLD",
]
