"""Token-style packet pacer.

Used by rate-based congestion controls (BBR) and available to any sender.
The pacer answers two questions: *may I send now?* and *when may I next
send?* — the sender schedules a wake-up for the latter.  A ``rate`` of
``None`` disables pacing (pure ACK clocking, like default CUBIC).
"""

from __future__ import annotations

from typing import Optional

from repro.core.units import Bytes, BytesPerSec, Seconds


class Pacer:
    """Serialises departures so they never exceed the configured rate."""

    def __init__(self) -> None:
        self.rate: Optional[BytesPerSec] = None
        self._next_send_time: Seconds = 0.0
        # Departure statistics, cheap enough to keep unconditionally;
        # the invariant test suite asserts min_gap is never negative.
        self.departures = 0
        self.last_departure: Optional[Seconds] = None
        self.min_gap: Seconds = float("inf")

    def set_rate(self, rate: Optional[BytesPerSec]) -> None:
        """Update the pacing rate (bytes/second); None disables pacing."""
        if rate is not None and rate <= 0:
            raise ValueError(f"pacing rate must be positive, got {rate}")
        self.rate = rate

    def can_send(self, now: Seconds) -> bool:
        return self.rate is None or now >= self._next_send_time

    def next_send_time(self, now: Seconds) -> Seconds:
        """Earliest time a packet may depart."""
        if self.rate is None:
            return now
        return max(now, self._next_send_time)

    def note_sent(self, now: Seconds, nbytes: Bytes) -> None:
        """Account for a departure of ``nbytes`` at time ``now``."""
        self.departures += 1
        if self.last_departure is not None:
            gap = now - self.last_departure
            if gap < self.min_gap:
                self.min_gap = gap
        self.last_departure = now
        if self.rate is None:
            return
        start = max(now, self._next_send_time)
        self._next_send_time = start + nbytes / self.rate

    def reset(self) -> None:
        self._next_send_time = 0.0
