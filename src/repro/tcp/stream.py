"""Application-driven streaming on top of the TCP sender.

The bulk :class:`~repro.tcp.sender.TcpSender` models a file whose size is
known up front (the paper's wget-a-file methodology).  Real servers often
*stream*: the application writes chunks as they become available (dynamic
content, video segments, request/response turns), so the sender is
app-limited whenever the write queue drains.  :class:`StreamingSource`
adds that behaviour without changing the transport: the sender's
``total_bytes`` tracks what the application has written so far, and
completion is gated on :meth:`close`.

This matters to SUSS because app-limited rounds must not be accelerated
(there is nothing to pace); ``SussCubic`` already checks
``sender.app_limited``, and ``tests/test_tcp_stream.py`` exercises
exactly that interaction.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.tcp.connection import Transfer, open_transfer
from repro.tcp.sender import TcpSender


class StreamingSource:
    """Feeds an open-ended transfer from application writes."""

    def __init__(self, sender: TcpSender) -> None:
        self.sender = sender
        self._written = 0
        self._closed = False
        sender.finished_writing = False
        sender.total_bytes = 0

    # ------------------------------------------------------------------
    @property
    def bytes_written(self) -> int:
        return self._written

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def backlog(self) -> int:
        """Written bytes not yet sent."""
        return max(self._written - self.sender.snd_nxt, 0)

    def write(self, nbytes: int) -> None:
        """Append ``nbytes`` of application data to the stream."""
        if self._closed:
            raise RuntimeError("stream already closed")
        if nbytes <= 0:
            raise ValueError("write size must be positive")
        self._written += nbytes
        self.sender.total_bytes = self._written
        self.sender.kick()

    def close(self) -> None:
        """No more data: the transfer completes once everything is ACKed."""
        if self._closed:
            return
        self._closed = True
        sender = self.sender
        sender.finished_writing = True
        sender.total_bytes = self._written
        if sender.snd_una >= sender.total_bytes and not sender.completed \
                and sender.handshake_done:
            sender._complete(sender.sim.now)


def open_stream(sim, server, client, flow_id: int, cc,
                telemetry: Optional[object] = None,
                on_complete: Optional[Callable] = None,
                start_time: float = 0.0
                ) -> Tuple[StreamingSource, Transfer]:
    """Create a streaming transfer; returns ``(source, transfer)``.

    The transfer completes when the source is closed and all written data
    has been acknowledged.
    """
    transfer = open_transfer(sim, server, client, flow_id,
                             size_bytes=1,  # replaced by StreamingSource
                             cc=cc, telemetry=telemetry,
                             on_complete=on_complete,
                             start_time=start_time)
    source = StreamingSource(transfer.sender)
    return source, transfer
