"""Connection wiring: create a sender/receiver pair over a topology.

`open_transfer` is the simulation analogue of the paper's measurement unit:
"a client downloads a file of N bytes from a server".  It instantiates the
server-side :class:`TcpSender` (where SUSS lives — it is a sender-side
add-on) and the client-side :class:`TcpReceiver`, and schedules the
connection start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.cc import base as cc_base
from repro.cc.base import CongestionControl
from repro.net.node import Host
from repro.net.packet import DEFAULT_MSS
from repro.sim.engine import Simulator
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import DEFAULT_IW_SEGMENTS, TcpSender


@dataclass
class Transfer:
    """A one-way bulk transfer: server-side sender + client-side receiver."""

    sender: TcpSender
    receiver: TcpReceiver

    @property
    def completed(self) -> bool:
        return self.sender.completed

    @property
    def fct(self) -> Optional[float]:
        return self.sender.fct


def open_transfer(
    sim: Simulator,
    server: Host,
    client: Host,
    flow_id: int,
    size_bytes: int,
    cc: Union[str, CongestionControl],
    start_time: float = 0.0,
    mss: int = DEFAULT_MSS,
    iw_segments: int = DEFAULT_IW_SEGMENTS,
    rwnd: int = 1 << 30,
    ecn: bool = False,
    delayed_ack: bool = False,
    telemetry: Optional[object] = None,
    on_complete: Optional[Callable[[TcpSender], None]] = None,
) -> Transfer:
    """Set up a download of ``size_bytes`` from ``server`` to ``client``.

    ``cc`` may be a registered algorithm name (e.g. ``"cubic"``,
    ``"cubic+suss"``, ``"bbr"``) or an already-constructed
    :class:`CongestionControl` instance.
    """
    if isinstance(cc, str):
        cc = cc_base.create(cc)
    receiver = TcpReceiver(sim, client, peer=server.name, flow_id=flow_id,
                           delayed_ack=delayed_ack, telemetry=telemetry)
    sender = TcpSender(sim, server, peer=client.name, flow_id=flow_id,
                       total_bytes=size_bytes, cc=cc, mss=mss,
                       iw_segments=iw_segments, rwnd=rwnd, ecn=ecn,
                       telemetry=telemetry, on_complete=on_complete)
    if start_time <= sim.now:
        sim.schedule(0.0, sender.start)
    else:
        sim.schedule_at(start_time, sender.start)
    return Transfer(sender=sender, receiver=receiver)
