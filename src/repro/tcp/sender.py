"""TCP sender: windows, SACK-based loss recovery, timers, CC integration.

The sender implements the transport machinery the paper's kernel patch
relies on, in simulation form:

* sequence tracking (``snd_una`` / ``snd_nxt``) for a one-way bulk transfer;
* a simplified SYN/SYN-ACK handshake that seeds the RTT estimator — the
  handshake RTT is TCP's first ``minRTT`` observation, which SUSS uses;
* SACK-based fast recovery: the receiver reports out-of-order intervals,
  the sender keeps a scoreboard and retransmits every hole as the window
  allows (the kernel's behaviour with SACK enabled, which it is virtually
  everywhere the paper measured);
* RTO with go-back-N over un-SACKed sequence space;
* delivery-rate samples per ACK (for BBR's bandwidth filter);
* round accounting (a round ends when the first segment of the previous
  round is cumulatively acknowledged), which CUBIC/HyStart/SUSS consume;
* optional pacing driven by the congestion control's ``pacing_rate``.

The receive window models a large client buffer and never constrains the
transfers studied here.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.cc.base import AckInfo, CongestionControl
from repro.net.node import Host
from repro.net.packet import DEFAULT_MSS, Packet, PacketKind, POOL
from repro.obs import records as obsrec
from repro.sim.engine import EventRef, Simulator
from repro.tcp.pacer import Pacer
from repro.tcp.rtt import RttEstimator

DUPACK_THRESHOLD = 3
#: Default initial window, RFC 6928 (10 segments).
DEFAULT_IW_SEGMENTS = 10
#: Exponential RTO backoff cap.
MAX_RTO_BACKOFF = 64.0

Interval = Tuple[int, int]


def _merge_intervals(intervals: List[Interval]) -> List[Interval]:
    """Merge possibly-overlapping [start, end) intervals (sorted output)."""
    merged: List[Interval] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


class TcpSender:
    """Sending endpoint of a simulated TCP connection."""

    def __init__(self, sim: Simulator, host: Host, peer: str, flow_id: int,
                 total_bytes: int, cc: CongestionControl,
                 mss: int = DEFAULT_MSS,
                 iw_segments: int = DEFAULT_IW_SEGMENTS,
                 rwnd: int = 1 << 30,
                 ecn: bool = False,
                 telemetry: Optional[object] = None,
                 on_complete: Optional[Callable[["TcpSender"], None]] = None) -> None:
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.sim = sim
        self.host = host
        self.peer = peer
        self.flow_id = flow_id
        self.total_bytes = total_bytes
        self.mss = mss
        self.iw_bytes = iw_segments * mss
        self.rwnd = rwnd
        self.ecn = ecn
        self.telemetry = telemetry
        self.on_complete = on_complete

        # ECN reaction state (react at most once per window, RFC 3168)
        self._ecn_reacted_high = 0
        self._cwr_pending = False
        self.ecn_reductions = 0

        self.rtt = RttEstimator()
        self.pacer = Pacer()

        # sequence state
        self.snd_una = 0
        self.snd_nxt = 0
        self.max_sent_seq = 0
        self.dup_acks = 0

        # SACK scoreboard: merged [start, end) intervals above snd_una that
        # the receiver holds, plus which holes were already retransmitted
        # in the current recovery episode.
        self.sacked: List[Interval] = []
        self._retx_marked: set = set()
        self._retx_outstanding = 0  # retransmitted bytes still in flight

        # recovery state
        self.in_recovery = False
        self.recovery_point = 0

        # rounds (paper Section 3: round(i) definitions)
        self.round_index = 1
        self.round_end_seq = 0

        # delivery-rate bookkeeping (for BBR)
        self.delivered = 0
        self.delivered_time = 0.0
        self._rate_records: Deque[Tuple[int, float, int, float]] = deque()
        # entries: (end_seq, sent_time, delivered_at_send, delivered_time_at_send)

        # timers
        self._rto_handle: Optional[EventRef] = None
        self._rto_backoff = 1.0
        self._pacer_wake: Optional[EventRef] = None

        #: False while a streaming application may still extend the flow
        #: (see repro.tcp.stream); completion waits for it.
        self.finished_writing = True

        # statistics
        self.started = False
        self.handshake_done = False
        self.completed = False
        self.start_time: Optional[float] = None
        self.data_start_time: Optional[float] = None
        self.completion_time: Optional[float] = None
        self.retransmissions = 0
        self.rto_count = 0
        self.fast_retransmits = 0
        self.data_packets_sent = 0

        # observability: cache the bundle and the per-flow metric handles
        # once, so every hot-path hook is one pointer test when disabled
        # and a bare attribute update when enabled.
        obs = sim.obs
        self.obs = obs
        if obs is not None:
            m = obs.metrics
            self._m_sent = m.counter("tcp.data_packets", flow=flow_id)
            self._m_retx = m.counter("tcp.retransmits", flow=flow_id)
            self._m_rto = m.counter("tcp.rtos", flow=flow_id)
            self._m_delivered = m.counter("tcp.delivered_bytes", flow=flow_id)
            self._m_rtt = m.histogram("tcp.rtt_seconds", flow=flow_id)
        self._traced_pacing_rate: Optional[float] = None

        self.cc = cc
        cc.attach(self)
        host.attach(flow_id, self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Initiate the connection (sends the handshake)."""
        if self.started:
            raise RuntimeError("sender already started")
        self.started = True
        self.start_time = self.sim.now
        syn = Packet(flow_id=self.flow_id, src=self.host.name, dst=self.peer,
                     kind=PacketKind.SYN, sent_time=self.sim.now)
        self.host.transmit(syn)
        self._arm_rto()

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time (handshake included), or None if unfinished."""
        if self.completion_time is None or self.start_time is None:
            return None
        return self.completion_time - self.start_time

    @property
    def sacked_bytes(self) -> int:
        return sum(end - start for start, end in self.sacked)

    @property
    def bytes_in_flight(self) -> int:
        """Conservative pipe estimate: sent minus cum-acked minus SACKed,
        plus retransmissions believed still in the network."""
        flight = self.snd_nxt - self.snd_una - self.sacked_bytes \
            + self._retx_outstanding
        return max(flight, 0)

    @property
    def app_limited(self) -> bool:
        """True when the flow has no more new data to send."""
        return self.snd_nxt >= self.total_bytes

    # ------------------------------------------------------------------
    # packet arrival
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        if self.completed:
            return
        if packet.kind is PacketKind.SYNACK:
            self._on_synack(packet)
        elif packet.kind is PacketKind.ACK:
            self._on_ack(packet)

    def _on_synack(self, packet: Packet) -> None:
        if self.handshake_done:
            return
        self.handshake_done = True
        assert self.start_time is not None
        self.rtt.update(self.sim.now - self.start_time, self.round_index)
        self.data_start_time = self.sim.now
        self._rto_backoff = 1.0
        self.cc.on_data_start(self.sim.now)
        self._arm_rto()
        self._maybe_send()

    # ------------------------------------------------------------------
    def _on_ack(self, packet: Packet) -> None:
        now = self.sim.now
        rtt_sample: Optional[float] = None
        if packet.ts_echo is not None:
            rtt_sample = now - packet.ts_echo
            if rtt_sample > 0:
                self.rtt.update(rtt_sample, self.round_index)
                if self.telemetry is not None:
                    self.telemetry.on_rtt(self.flow_id, now, rtt_sample)
                if self.obs is not None:
                    self._m_rtt.observe(rtt_sample)
                    self.obs.emit(now, obsrec.TCP_RTT, self.flow_id,
                                  rtt=rtt_sample)

        self._merge_sack(packet)

        if self.ecn and packet.ece and self.snd_una >= self._ecn_reacted_high:
            # One multiplicative decrease per window of ECN signals.
            self._ecn_reacted_high = self.snd_nxt
            self._cwr_pending = True
            self.ecn_reductions += 1
            self.cc.on_ecn(now)

        if packet.ack_seq > self.snd_una:
            self._on_new_ack(packet, now, rtt_sample)
        elif packet.ack_seq == self.snd_una and self.snd_nxt > self.snd_una:
            self._on_dupack(now)
        self._maybe_send()

    def _merge_sack(self, packet: Packet) -> None:
        floor = max(packet.ack_seq, self.snd_una)
        blocks = [(max(s, floor), e) for s, e in (packet.sack or ())
                  if e > floor]
        if blocks:
            self.sacked = _merge_intervals(self.sacked + blocks)
        if self.sacked:
            self.sacked = [(max(s, floor), e) for s, e in self.sacked
                           if e > floor]

    def _on_new_ack(self, packet: Packet, now: float,
                    rtt_sample: Optional[float]) -> None:
        acked = packet.ack_seq - self.snd_una
        self.snd_una = packet.ack_seq
        self.dup_acks = 0
        self.delivered += acked
        self.delivered_time = now
        if self.obs is not None:
            self._m_delivered.add(acked)
        self._retx_outstanding = max(self._retx_outstanding
                                     - min(acked, self.mss), 0)
        rate_sample = self._take_rate_sample(packet.ack_seq, now)

        # round bookkeeping: the ACK of the first segment of the previous
        # round has arrived once snd_una passes that round's end marker.
        if self.snd_una > self.round_end_seq:
            self.round_index += 1
            self.round_end_seq = self.snd_nxt
            self.cc.on_round_start(now, self.round_index)

        if self.in_recovery:
            if self.snd_una >= self.recovery_point:
                self.in_recovery = False
                self._retx_marked = {s for s in self._retx_marked
                                     if s >= self.snd_una}
                self._retx_outstanding = 0
                self.cc.on_recovery_exit(now)
                if self.obs is not None:
                    self.obs.emit(now, obsrec.TCP_RECOVERY, self.flow_id,
                                  enter=False, point=self.recovery_point)
            else:
                # Partial ACK: keep filling holes from the scoreboard.
                self._retransmit_holes()

        info = AckInfo(now=now, acked_bytes=acked, ack_seq=packet.ack_seq,
                       rtt_sample=rtt_sample, flight=self.bytes_in_flight,
                       delivery_rate=rate_sample, app_limited=self.app_limited,
                       in_recovery=self.in_recovery)
        self.cc.on_ack(info)
        self._sanitize_cc()

        if self.telemetry is not None:
            self.telemetry.on_cwnd(self.flow_id, now, self.cc.cwnd,
                                   self.bytes_in_flight)
        if self.obs is not None:
            self._emit_cwnd(now)

        self._rto_backoff = 1.0
        if self.snd_una >= self.total_bytes and self.finished_writing:
            self._complete(now)
        else:
            self._arm_rto()

    def _on_dupack(self, now: float) -> None:
        self.dup_acks += 1
        self.cc.on_dupack(now)
        if not self.in_recovery and (
                self.dup_acks >= DUPACK_THRESHOLD
                or self.sacked_bytes > DUPACK_THRESHOLD * self.mss):
            self.in_recovery = True
            self.recovery_point = self.snd_nxt
            self.fast_retransmits += 1
            # Retransmit marks persist across episodes (pruned below
            # snd_una) so back-to-back episodes do not re-send holes whose
            # retransmissions are still in flight; a lost retransmission
            # is recovered by the RTO.
            self._retx_marked = {s for s in self._retx_marked
                                 if s >= self.snd_una}
            self.cc.on_loss(now)
            self._sanitize_cc()
            if self.obs is not None:
                self.obs.emit(now, obsrec.TCP_RECOVERY, self.flow_id,
                              enter=True, point=self.recovery_point)
                self._emit_cwnd(now)
            self._retransmit_holes()
        elif self.in_recovery:
            # Each further SACK frees pipe; fill more holes if possible.
            self._retransmit_holes()

    # ------------------------------------------------------------------
    # scoreboard
    # ------------------------------------------------------------------
    def _holes(self) -> List[Interval]:
        """Un-SACKed gaps between snd_una and the highest SACKed byte."""
        if not self.sacked:
            return [(self.snd_una, min(self.snd_una + self.mss,
                                       self.total_bytes))]
        holes: List[Interval] = []
        cursor = self.snd_una
        for start, end in self.sacked:
            if start > cursor:
                holes.append((cursor, start))
            cursor = max(cursor, end)
        return holes

    def _retransmit_holes(self) -> None:
        """Retransmit scoreboard holes while the window allows."""
        for hole_start, hole_end in self._holes():
            seq = hole_start
            while seq < hole_end:
                size = min(self.mss, hole_end - seq,
                           self.total_bytes - seq)
                if size <= 0:
                    return
                if seq not in self._retx_marked:
                    if self.bytes_in_flight + size > self.cc.cwnd:
                        return
                    self._retx_marked.add(seq)
                    self._retx_outstanding += size
                    self._send_segment(seq, size, retransmit=True)
                    self._arm_rto()
                seq += size

    def _sanitize_cc(self) -> None:
        """Feed the runtime sanitizer the post-event CC invariants."""
        san = self.sim.sanitizer
        if san is not None:
            san.check_cwnd(self.flow_id, self.cc.cwnd, self.mss)
            san.check_pacing_rate(self.flow_id, self.cc.pacing_rate)

    def _emit_cwnd(self, now: float) -> None:
        """Trace the post-event congestion state (callers check self.obs)."""
        self.obs.emit(now, obsrec.CC_CWND, self.flow_id,
                      cwnd=self.cc.cwnd, ssthresh=self.cc.ssthresh,
                      flight=self.bytes_in_flight)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Re-evaluate transmission opportunities (e.g. after a cwnd change
        made by the congestion control outside of ACK processing)."""
        self._maybe_send()

    def _maybe_send(self) -> None:
        if self.completed or not self.handshake_done:
            return
        rate = self.cc.pacing_rate
        self.pacer.set_rate(rate)
        if self.obs is not None and rate != self._traced_pacing_rate:
            self._traced_pacing_rate = rate
            # None (pure ACK clocking) is encoded as rate 0.0
            self.obs.emit(self.sim.now, obsrec.TCP_PACING, self.flow_id,
                          rate=rate if rate is not None else 0.0)
        while self.snd_nxt < self.total_bytes:
            # Skip sequence space the receiver already holds (possible
            # after an RTO rolled snd_nxt back).
            if self._skip_sacked():
                continue
            seg = min(self.mss, self.total_bytes - self.snd_nxt)
            window = min(self.cc.cwnd, self.rwnd)
            if self.bytes_in_flight + seg > window:
                break
            now = self.sim.now
            if not self.pacer.can_send(now):
                self._schedule_pacer_wake(self.pacer.next_send_time(now))
                break
            is_retx = self.snd_nxt < self.max_sent_seq
            self._send_segment(self.snd_nxt, seg, retransmit=is_retx)
            self.snd_nxt += seg
            self.max_sent_seq = max(self.max_sent_seq, self.snd_nxt)
            self.pacer.note_sent(now, seg)
        if self.bytes_in_flight > 0 and (self._rto_handle is None
                                         or not self.sim.event_pending(self._rto_handle)):
            self._arm_rto()

    def _skip_sacked(self) -> bool:
        """Advance snd_nxt over fully-SACKed space; True when it moved."""
        for start, end in self.sacked:
            if start <= self.snd_nxt < end:
                self.snd_nxt = min(end, self.total_bytes)
                self.max_sent_seq = max(self.max_sent_seq, self.snd_nxt)
                return True
        return False

    def _send_segment(self, seq: int, size: int, retransmit: bool) -> None:
        now = self.sim.now
        pkt = POOL.acquire_data(self.flow_id, self.host.name, self.peer,
                                seq, size, now, retransmit,
                                self.ecn, self._cwr_pending)
        self._cwr_pending = False
        self.data_packets_sent += 1
        if retransmit:
            self.retransmissions += 1
        else:
            self._rate_records.append((seq + size, now, self.delivered,
                                       self.delivered_time))
        if self.telemetry is not None:
            self.telemetry.on_send(self.flow_id, now, pkt, retransmit)
        if self.obs is not None:
            self._m_sent.add(1)
            if retransmit:
                self._m_retx.add(1)
            self.obs.emit(now, obsrec.PKT_SEND, self.flow_id,
                          seq=seq, size=size, retx=retransmit)
        self.host.transmit(pkt)

    def _schedule_pacer_wake(self, when: float) -> None:
        if self._pacer_wake is not None and self.sim.event_pending(self._pacer_wake):
            return
        self._pacer_wake = self.sim.schedule_at(when, self._maybe_send)

    # ------------------------------------------------------------------
    # delivery-rate sampling
    # ------------------------------------------------------------------
    def _take_rate_sample(self, ack_seq: int, now: float) -> Optional[float]:
        record = None
        while self._rate_records and self._rate_records[0][0] <= ack_seq:
            record = self._rate_records.popleft()
        if record is None:
            return None
        _, sent_time, delivered_at_send, _ = record
        interval = now - sent_time
        if interval <= 0:
            return None
        return (self.delivered - delivered_at_send) / interval

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        if self._rto_handle is not None:
            self.sim.cancel_event(self._rto_handle)
        timeout = min(self.rtt.rto * self._rto_backoff, 120.0)
        self._rto_handle = self.sim.schedule(timeout, self._on_rto)

    def _on_rto(self) -> None:
        if self.completed:
            return
        self.rto_count += 1
        self._rto_backoff = min(self._rto_backoff * 2, MAX_RTO_BACKOFF)
        if not self.handshake_done:
            # Handshake packet lost: resend the SYN.
            syn = Packet(flow_id=self.flow_id, src=self.host.name,
                         dst=self.peer, kind=PacketKind.SYN,
                         sent_time=self.sim.now)
            self.host.transmit(syn)
            self._arm_rto()
            return
        now = self.sim.now
        self.cc.on_rto(now)
        self._sanitize_cc()
        if self.obs is not None:
            self._m_rto.add(1)
            self.obs.emit(now, obsrec.TCP_RTO, self.flow_id,
                          backoff=self._rto_backoff)
            self._emit_cwnd(now)
        # Go-back-N over un-SACKed space: the kernel walks the retransmit
        # queue from snd_una; _maybe_send skips SACKed intervals and the
        # receiver's reassembly buffer makes the cumulative ACK jump.
        self.in_recovery = False
        self._retx_marked.clear()
        self._retx_outstanding = 0
        self.dup_acks = 0
        self.snd_nxt = self.snd_una
        self._rate_records.clear()
        self.pacer.reset()
        self._arm_rto()
        self._maybe_send()

    # ------------------------------------------------------------------
    def _complete(self, now: float) -> None:
        self.completed = True
        self.completion_time = now
        self.cc.on_flow_complete(now)
        if self._rto_handle is not None:
            self.sim.cancel_event(self._rto_handle)
        if self._pacer_wake is not None:
            self.sim.cancel_event(self._pacer_wake)
        if self.telemetry is not None:
            self.telemetry.on_flow_complete(self.flow_id, now)
        if self.on_complete is not None:
            self.on_complete(self)
