"""Congestion-control interface, mirroring Linux ``tcp_congestion_ops``.

A :class:`CongestionControl` owns ``cwnd``/``ssthresh`` and optionally a
pacing rate; the TCP sender (:mod:`repro.tcp.sender`) owns sequence state,
loss detection, and timers, and feeds the CC per-ACK events.  Algorithms
register themselves in a global registry so experiments can select them by
name (``"cubic"``, ``"cubic+suss"``, ``"bbr"``, ...), the same way
``net.ipv4.tcp_congestion_control`` selects a kernel module.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.tcp.sender import TcpSender


@dataclass
class AckInfo:
    """Per-ACK information handed to the congestion control.

    Attributes:
        now: simulation time of the ACK arrival.
        acked_bytes: bytes newly acknowledged by this (cumulative) ACK.
        ack_seq: the cumulative acknowledgement sequence.
        rtt_sample: RTT measured from this ACK, or None (Karn).
        flight: bytes in flight after processing the ACK.
        delivery_rate: estimated delivery rate sample (bytes/s), or None.
        app_limited: True when the sender had no data to keep the pipe full.
        in_recovery: True while the sender is in fast recovery.
    """

    now: float
    acked_bytes: int
    ack_seq: int
    rtt_sample: Optional[float]
    flight: int
    delivery_rate: Optional[float] = None
    app_limited: bool = False
    in_recovery: bool = False


class CongestionControl(ABC):
    """Base class for congestion-control algorithms."""

    #: human-readable algorithm name (set by subclasses)
    name = "base"

    def __init__(self) -> None:
        self.sender: Optional["TcpSender"] = None

    # -- lifecycle -----------------------------------------------------
    def attach(self, sender: "TcpSender") -> None:
        """Bind to a sender.  Called once, before the first transmission."""
        self.sender = sender
        self.init()

    def init(self) -> None:
        """Algorithm-specific initialisation (cwnd is already at IW)."""

    # -- required state ------------------------------------------------
    @property
    @abstractmethod
    def cwnd(self) -> int:
        """Congestion window in bytes."""

    @property
    @abstractmethod
    def ssthresh(self) -> int:
        """Slow-start threshold in bytes."""

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    @property
    def pacing_rate(self) -> Optional[float]:
        """Pacing rate in bytes/second, or None for pure ACK clocking."""
        return None

    # -- event hooks ----------------------------------------------------
    @abstractmethod
    def on_ack(self, ack: AckInfo) -> None:
        """A cumulative ACK advanced ``snd_una``."""

    def on_dupack(self, now: float) -> None:
        """A duplicate ACK arrived (before any loss event is declared)."""

    @abstractmethod
    def on_loss(self, now: float) -> None:
        """Fast-retransmit loss event (at most once per window)."""

    def on_ecn(self, now: float) -> None:
        """ECN congestion echo (at most once per window).

        RFC 3168 mandates the same multiplicative decrease as a loss;
        algorithms with gentler ECN responses override this.
        """
        self.on_loss(now)

    @abstractmethod
    def on_rto(self, now: float) -> None:
        """Retransmission timeout fired."""

    def on_recovery_exit(self, now: float) -> None:
        """Fast recovery completed (``snd_una`` passed the recovery point)."""

    def on_round_start(self, now: float, round_index: int) -> None:
        """A new delivery round began (optional hook)."""

    def on_data_start(self, now: float) -> None:
        """The handshake completed and data transmission is about to begin.

        The handshake RTT is already folded into the sender's estimator,
        so schemes that size their initial behaviour from it (JumpStart,
        initial spreading, ...) hook in here.
        """

    def on_flow_complete(self, now: float) -> None:
        """The flow finished (optional hook, e.g. for cross-flow caches)."""

    # -- conveniences ----------------------------------------------------
    @property
    def mss(self) -> int:
        assert self.sender is not None
        return self.sender.mss

    @property
    def min_rtt(self) -> Optional[float]:
        assert self.sender is not None
        return self.sender.rtt.min_rtt


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
CcFactory = Callable[[], CongestionControl]
_REGISTRY: Dict[str, CcFactory] = {}


def register(name: str, factory: CcFactory) -> None:
    """Register a congestion-control factory under ``name``."""
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"congestion control {name!r} already registered")
    _REGISTRY[key] = factory


def create(name: str, **kwargs) -> CongestionControl:
    """Instantiate a registered congestion control by name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown congestion control {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[key](**kwargs) if kwargs else _REGISTRY[key]()


def available() -> list:
    """Names of all registered congestion-control algorithms."""
    return sorted(_REGISTRY)
