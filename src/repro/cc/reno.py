"""TCP Reno (NewReno window arithmetic).

Provided as the simplest baseline and as the shared base class for the
window bookkeeping other algorithms reuse (initial window, infinite initial
ssthresh, multiplicative decrease helpers).
"""

from __future__ import annotations

from repro.cc.base import AckInfo, CongestionControl, register

#: "Infinite" initial slow-start threshold.
INFINITE_SSTHRESH = 1 << 62


class Reno(CongestionControl):
    """Classic AIMD: slow start, congestion avoidance, halving on loss."""

    name = "reno"

    def __init__(self) -> None:
        super().__init__()
        self._cwnd = 0.0
        self._ssthresh = float(INFINITE_SSTHRESH)

    def init(self) -> None:
        self._cwnd = float(self.sender.iw_bytes)

    @property
    def cwnd(self) -> int:
        return int(self._cwnd)

    @property
    def ssthresh(self) -> int:
        return int(self._ssthresh)

    # ------------------------------------------------------------------
    def on_ack(self, ack: AckInfo) -> None:
        if ack.in_recovery:
            return
        if self.in_slow_start:
            self._cwnd += ack.acked_bytes
        else:
            # ~1 MSS per RTT of growth.
            self._cwnd += self.mss * ack.acked_bytes / self._cwnd

    def on_loss(self, now: float) -> None:
        self._ssthresh = max(self._cwnd / 2.0, 2.0 * self.mss)
        self._cwnd = self._ssthresh

    def on_rto(self, now: float) -> None:
        self._ssthresh = max(self._cwnd / 2.0, 2.0 * self.mss)
        self._cwnd = float(self.mss)


register("reno", Reno)
