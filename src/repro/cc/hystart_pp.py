"""HyStart++ (RFC 9406) — the related slow-start variant (paper Section 2).

HyStart++ replaces classic HyStart's ACK-train heuristic with a pure
RTT-increase test and inserts a *Conservative Slow Start* (CSS) phase:
when a delay increase is detected, growth continues at 1/4 speed for a few
rounds; if the delay increase persists, slow start ends, and if it proves
transient (RTT drops back), normal slow start resumes.

Included as a baseline/ablation: it answers "how does SUSS compare to the
other modern slow-start modification?", which the paper cites ([3]) but
does not evaluate.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import AckInfo, register
from repro.cc.cubic import Cubic

#: RFC 9406 parameters
MIN_RTT_THRESH = 0.004
MAX_RTT_THRESH = 0.016
MIN_RTT_DIVISOR = 8
N_RTT_SAMPLE = 8
CSS_GROWTH_DIVISOR = 4
CSS_ROUNDS = 5


class HyStartPP(Cubic):
    """CUBIC with HyStart++ (RFC 9406) instead of classic HyStart."""

    name = "cubic+hystartpp"

    def __init__(self, **cubic_kwargs) -> None:
        cubic_kwargs.setdefault("hystart_enabled", False)
        super().__init__(**cubic_kwargs)
        self.in_css = False
        self.css_round_count = 0
        self.css_baseline_min_rtt = float("inf")
        self._curr_round_min_rtt = float("inf")
        self._last_round_min_rtt = float("inf")
        self._rtt_sample_count = 0

    # ------------------------------------------------------------------
    def on_round_start(self, now: float, round_index: int) -> None:
        super().on_round_start(now, round_index)
        if not self.in_slow_start:
            return
        self._last_round_min_rtt = self._curr_round_min_rtt
        self._curr_round_min_rtt = float("inf")
        self._rtt_sample_count = 0
        if self.in_css:
            self.css_round_count += 1
            if self.css_round_count >= CSS_ROUNDS:
                # Delay increase persisted: slow start is over.
                self.exit_slow_start(now)

    # ------------------------------------------------------------------
    def slow_start_ack(self, ack: AckInfo) -> None:
        if ack.rtt_sample is not None:
            self._rtt_sample_count += 1
            self._curr_round_min_rtt = min(self._curr_round_min_rtt,
                                           ack.rtt_sample)
        if self.in_css:
            self._css_ack(ack)
        else:
            self._cwnd += ack.acked_bytes
            self._maybe_enter_css()

    def _rtt_thresh(self) -> float:
        base = self._last_round_min_rtt
        if base == float("inf"):
            return float("inf")
        return min(max(base / MIN_RTT_DIVISOR, MIN_RTT_THRESH), MAX_RTT_THRESH)

    def _maybe_enter_css(self) -> None:
        if self._rtt_sample_count < N_RTT_SAMPLE:
            return
        if self._last_round_min_rtt == float("inf") \
                or self._curr_round_min_rtt == float("inf"):
            return
        if self._curr_round_min_rtt >= self._last_round_min_rtt + self._rtt_thresh():
            self.in_css = True
            self.css_round_count = 0
            self.css_baseline_min_rtt = self._last_round_min_rtt

    def _css_ack(self, ack: AckInfo) -> None:
        # Conservative Slow Start: quarter-speed growth.
        self._cwnd += ack.acked_bytes / CSS_GROWTH_DIVISOR
        if self._rtt_sample_count >= N_RTT_SAMPLE \
                and self._curr_round_min_rtt < self.css_baseline_min_rtt:
            # The delay increase was transient: resume regular slow start.
            self.in_css = False
            self.css_round_count = 0

    def on_rto(self, now: float) -> None:
        super().on_rto(now)
        self.in_css = False
        self.css_round_count = 0


register("cubic+hystartpp", HyStartPP)
