"""Related-work slow-start schemes (paper Section 2).

The paper positions SUSS against a family of end-to-end slow-start
accelerators.  These are implemented here as comparison baselines, each a
simplified-but-faithful rendition of its core idea:

* :class:`LargeIwCubic` — just start bigger (RFC 3390 / RFC 6928 lineage);
  the knob the IETF keeps debating.
* :class:`InitialSpreadingCubic` — Sallantin et al.: a large initial
  window whose packets are *paced across the first RTT* instead of sent
  as a burst.
* :class:`JumpStart` — Liu et al.: skip slow start entirely; pace the
  locally queued data (capped by rwnd) across the first RTT, then fall
  back to standard congestion avoidance and loss handling.
* :class:`Halfback` — Li et al.: JumpStart's aggressive first RTT plus a
  *proactive protection phase*: while unacknowledged first-RTT data is
  outstanding, keep the pace up so losses are patched quickly (the real
  scheme retransmits ~50% of packets; our sender's SACK recovery plays
  that role, so Halfback here is "pace-first + stay-aggressive").
* :class:`StatefulCubic` — Guo & Lee: remember the previous flow's
  achieved window per destination and start the next flow from a fraction
  of it.

None of these perform SUSS's safety analysis, which is exactly the
contrast the paper draws: uncontrolled initial aggression risks loss and
disrupts HyStart, while history/measurement-based estimates are
unreliable in early RTTs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cc.base import AckInfo, register
from repro.cc.cubic import Cubic


class LargeIwCubic(Cubic):
    """CUBIC starting from a configurable, larger initial window."""

    name = "cubic-iw"

    def __init__(self, iw_segments: int = 32, **cubic_kwargs) -> None:
        super().__init__(**cubic_kwargs)
        self.iw_segments = iw_segments

    def init(self) -> None:
        self._cwnd = float(self.iw_segments * self.mss)


class InitialSpreadingCubic(LargeIwCubic):
    """Large IW, paced over the first RTT (initial spreading).

    The enlarged initial window is released at ``iw / handshakeRTT`` so it
    arrives as a spaced train rather than a burst; afterwards the flow
    behaves exactly like CUBIC (pacing off).

    Observable pathology (and the reason SUSS splits clocking from
    pacing, Section 4): the spread data elicits a spread ACK train, whose
    echo in the next rounds looks to HyStart like a train filling half the
    RTT — ending exponential growth far below cwnd*.  The comparison
    bench shows exactly this premature exit.
    """

    name = "cubic-spread-iw"

    def __init__(self, iw_segments: int = 32, **cubic_kwargs) -> None:
        super().__init__(iw_segments=iw_segments, **cubic_kwargs)
        self._pacing_rate: Optional[float] = None
        self._spreading = False

    @property
    def pacing_rate(self) -> Optional[float]:
        return self._pacing_rate

    def on_data_start(self, now: float) -> None:
        rtt = self.min_rtt
        if rtt:
            self._pacing_rate = self._cwnd / rtt
            self._spreading = True

    def on_ack(self, ack: AckInfo) -> None:
        if self._spreading:
            # First feedback: the spread window has crossed; stop pacing.
            self._spreading = False
            self._pacing_rate = None
        super().on_ack(ack)


class JumpStart(Cubic):
    """Congestion control without a startup phase (JumpStart).

    At data start the whole backlog (capped by the receive window and a
    configurable ceiling) becomes the window, paced across one handshake
    RTT.  The first ACK ends the jump phase; losses are handled by the
    inherited CUBIC machinery, which is what makes JumpStart risky on
    constrained paths — exactly the behaviour the comparison bench probes.
    """

    name = "jumpstart"

    def __init__(self, max_jump_segments: int = 2048, **cubic_kwargs) -> None:
        super().__init__(**cubic_kwargs)
        self.max_jump_segments = max_jump_segments
        self._pacing_rate: Optional[float] = None
        self._jumping = False
        self.jump_bytes = 0

    @property
    def pacing_rate(self) -> Optional[float]:
        return self._pacing_rate

    def on_data_start(self, now: float) -> None:
        sender = self.sender
        rtt = self.min_rtt
        backlog = sender.total_bytes
        cap = min(sender.rwnd, self.max_jump_segments * self.mss)
        self.jump_bytes = max(min(backlog, cap), sender.iw_bytes)
        self._cwnd = float(self.jump_bytes)
        if rtt:
            self._pacing_rate = self.jump_bytes / rtt
            self._jumping = True

    def on_ack(self, ack: AckInfo) -> None:
        if self._jumping:
            self._jumping = False
            self._pacing_rate = None
            # JumpStart terminates its initial phase on the first ACK and
            # continues in congestion avoidance from the jumped window.
            self._ssthresh = self._cwnd
        super().on_ack(ack)


class Halfback(JumpStart):
    """Halfback: jump-started first RTT that stays paced while exposed.

    Keeps the first-RTT pace active until the jumped data is fully
    acknowledged (the "protection" phase), so retransmissions of any
    first-RTT losses go out at the jump rate instead of stalling behind a
    collapsed window.  The window floor during protection models the
    scheme's redundancy budget.
    """

    name = "halfback"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._protecting = False

    def on_data_start(self, now: float) -> None:
        super().on_data_start(now)
        self._protecting = True

    def on_ack(self, ack: AckInfo) -> None:
        if self._protecting:
            if self._jumping:
                # First feedback: the jump phase ends as in JumpStart, but
                # the protection floor below stays armed.
                self._jumping = False
                self._pacing_rate = None
                self._ssthresh = self._cwnd
            if ack.ack_seq >= self.jump_bytes:
                self._protecting = False
            else:
                # Still covering the jumped data: hold the window open so
                # SACK retransmissions of first-RTT losses flow at full
                # speed instead of behind a collapsed window.
                self._cwnd = max(self._cwnd, float(self.jump_bytes))
                return
        super().on_ack(ack)

    def on_loss(self, now: float) -> None:
        if self._protecting:
            # Absorb first-RTT losses: recovery is handled by SACK
            # retransmissions at the held pace.
            return
        super().on_loss(now)


class StatefulCubic(Cubic):
    """Stateful-TCP: seed the initial window from per-destination history.

    A process-wide cache maps destination host name to the last flow's
    slow-start threshold (its learned capacity estimate); new flows to the
    same destination start from ``reuse_fraction`` of it.
    """

    name = "cubic-stateful"

    #: destination -> (ssthresh estimate in bytes, samples)
    _history: Dict[str, Tuple[float, int]] = {}

    def __init__(self, reuse_fraction: float = 0.5, **cubic_kwargs) -> None:
        super().__init__(**cubic_kwargs)
        self.reuse_fraction = reuse_fraction
        self.started_from_history = False

    @classmethod
    def reset_history(cls) -> None:
        cls._history.clear()

    def on_data_start(self, now: float) -> None:
        cached = self._history.get(self.sender.peer)
        if cached is not None:
            estimate, _ = cached
            seeded = max(self.reuse_fraction * estimate,
                         float(self.sender.iw_bytes))
            self._cwnd = seeded
            self.started_from_history = True

    def on_flow_complete(self, now: float) -> None:
        # Remember the achieved capacity estimate for the next flow.
        if self._ssthresh < (1 << 60):
            estimate = float(self._ssthresh)
        else:
            estimate = self._cwnd
        prev = self._history.get(self.sender.peer)
        if prev is None:
            self._history[self.sender.peer] = (estimate, 1)
        else:
            old, n = prev
            self._history[self.sender.peer] = (
                (old * n + estimate) / (n + 1), n + 1)


register("cubic-iw32", lambda: LargeIwCubic(iw_segments=32))
register("cubic-iw64", lambda: LargeIwCubic(iw_segments=64))
register("cubic-spread-iw32", lambda: InitialSpreadingCubic(iw_segments=32))
register("cubic-spread-iw64", lambda: InitialSpreadingCubic(iw_segments=64))
register("jumpstart", JumpStart)
register("halfback", Halfback)
register("cubic-stateful", StatefulCubic)
