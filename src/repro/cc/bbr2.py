"""BBRv2 (Cardwell et al., IETF 106) — loss-aware comparator.

BBRv2 keeps v1's model-based core but reacts to loss: it bounds inflight
with ``inflight_hi`` (backed off multiplicatively on loss events), exits
STARTUP when loss becomes persistent, and probes with gentler gains.  This
is the second comparator of the paper's Fig. 1 and Table 1(c).

The implementation is a structural simplification (no full
up/down/cruise/refill sub-states); DESIGN.md documents the substitution.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import AckInfo, register
from repro.cc.bbr import Bbr, BbrMode

#: multiplicative inflight_hi back-off on loss (BBRv2 beta)
LOSS_BETA = 0.7
#: STARTUP exits after this many loss events in a round trip
STARTUP_LOSS_EVENTS = 2
#: headroom kept below inflight_hi while cruising
HEADROOM = 0.85


class Bbr2(Bbr):
    """BBR version 2 (simplified)."""

    name = "bbr2"

    # gentler probing than v1
    PROBE_GAINS = (1.25, 0.9, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)

    def __init__(self) -> None:
        super().__init__()
        self.inflight_hi: Optional[float] = None
        self._loss_events_in_round = 0

    # ------------------------------------------------------------------
    def on_round_start(self, now: float, round_index: int) -> None:
        super().on_round_start(now, round_index)
        self._loss_events_in_round = 0

    def on_loss(self, now: float) -> None:
        self._loss_events_in_round += 1
        flight = self.sender.bytes_in_flight
        hi = self.inflight_hi if self.inflight_hi is not None else flight
        self.inflight_hi = max(LOSS_BETA * max(hi, flight), 4.0 * self.mss)
        if self.mode is BbrMode.STARTUP \
                and self._loss_events_in_round >= STARTUP_LOSS_EVENTS:
            # Persistent loss: consider the pipe full and stop accelerating.
            self.filled_pipe = True
            self.mode = BbrMode.DRAIN

    # ------------------------------------------------------------------
    def _gains(self) -> tuple:
        if self.mode is BbrMode.PROBE_BW:
            return self.PROBE_GAINS[self.cycle_index], 2.0
        return super()._gains()

    def _set_rates(self, ack: AckInfo) -> None:
        super()._set_rates(ack)
        if self.inflight_hi is None or self.mode is BbrMode.PROBE_RTT:
            return
        bound = self.inflight_hi
        if self.mode is BbrMode.PROBE_BW \
                and self.PROBE_GAINS[self.cycle_index] <= 1.0:
            bound *= HEADROOM
        self._cwnd = min(self._cwnd, max(bound, 4.0 * self.mss))


register("bbr2", Bbr2)
