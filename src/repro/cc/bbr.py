"""BBRv1 (Cardwell et al. 2016) — model-based comparator.

A structurally faithful simplification of the kernel module: the
STARTUP → DRAIN → PROBE_BW (8-phase gain cycle) → PROBE_RTT state machine,
a windowed-max bottleneck-bandwidth filter over delivery-rate samples, a
10-second min-RTT filter, pacing at ``pacing_gain × BtlBw`` and a cwnd of
``cwnd_gain × BDP``.  Loss is (as in BBRv1) not a primary congestion
signal.  The paper uses BBR purely as a comparator; what matters for the
reproduction is its startup dynamics (same exponential growth rate as slow
start, Section 2) and its loss tolerance (Fig. 2) — both of which this
model captures.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.cc.base import AckInfo, CongestionControl, register
from repro.cc.filters import windowed_max
from repro.cc.reno import INFINITE_SSTHRESH

#: 2 / ln(2): fills the pipe while doubling delivered data per RTT.
STARTUP_GAIN = 2.885
DRAIN_GAIN = 1.0 / STARTUP_GAIN
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
#: delivery rounds in the bandwidth max-filter window
BW_WINDOW_ROUNDS = 10
#: seconds before the min-RTT estimate is considered stale
MIN_RTT_WINDOW = 10.0
PROBE_RTT_DURATION = 0.2
#: startup is "full" after this many rounds without 25% bandwidth growth
FULL_BW_ROUNDS = 3
FULL_BW_GROWTH = 1.25


class BbrMode(Enum):
    STARTUP = "startup"
    DRAIN = "drain"
    PROBE_BW = "probe_bw"
    PROBE_RTT = "probe_rtt"


class Bbr(CongestionControl):
    """BBR version 1."""

    name = "bbr"

    def __init__(self) -> None:
        super().__init__()
        self.mode = BbrMode.STARTUP
        self.max_bw = windowed_max(BW_WINDOW_ROUNDS)
        self.rtprop: Optional[float] = None
        self.rtprop_stamp = 0.0
        # Packet-timed delivery rounds (as in the kernel): a round ends when
        # the data that was in flight at its start has been delivered.
        # Sender rounds stall during loss recovery; these do not.
        self._round = 0
        self._round_end_delivered = 0
        self.full_bw = 0.0
        self.full_bw_rounds = 0
        self.filled_pipe = False
        self.cycle_index = 2  # skip the 0.75 drain phase on entry
        self.cycle_stamp = 0.0
        self.probe_rtt_done_stamp: Optional[float] = None
        self._cwnd = 0.0
        self._pacing_rate: Optional[float] = None
        self._post_rto = False

    def init(self) -> None:
        self._cwnd = float(self.sender.iw_bytes)

    # ------------------------------------------------------------------
    @property
    def cwnd(self) -> int:
        return int(self._cwnd)

    @property
    def ssthresh(self) -> int:
        return INFINITE_SSTHRESH

    @property
    def in_slow_start(self) -> bool:
        return self.mode is BbrMode.STARTUP

    @property
    def pacing_rate(self) -> Optional[float]:
        return self._pacing_rate

    @property
    def bottleneck_bw(self) -> Optional[float]:
        return self.max_bw.get()

    def bdp(self, gain: float = 1.0) -> Optional[float]:
        bw = self.bottleneck_bw
        if bw is None or self.rtprop is None:
            return None
        return gain * bw * self.rtprop

    # ------------------------------------------------------------------
    def _advance_round(self) -> None:
        sender = self.sender
        if sender.delivered >= self._round_end_delivered:
            self._round += 1
            self._round_end_delivered = sender.delivered + sender.bytes_in_flight
            if self.mode is BbrMode.STARTUP:
                self._check_full_pipe()

    def _check_full_pipe(self) -> None:
        bw = self.bottleneck_bw
        if bw is None or self.filled_pipe:
            return
        if bw >= self.full_bw * FULL_BW_GROWTH:
            self.full_bw = bw
            self.full_bw_rounds = 0
            return
        self.full_bw_rounds += 1
        if self.full_bw_rounds >= FULL_BW_ROUNDS:
            self.filled_pipe = True
            self.mode = BbrMode.DRAIN

    # ------------------------------------------------------------------
    def on_ack(self, ack: AckInfo) -> None:
        now = ack.now
        self._advance_round()
        if ack.delivery_rate is not None:
            current = self.bottleneck_bw
            if not ack.app_limited or current is None \
                    or ack.delivery_rate > current:
                self.max_bw.update(self._round, ack.delivery_rate)
        if ack.rtt_sample is not None:
            if self.rtprop is None or ack.rtt_sample < self.rtprop \
                    or now - self.rtprop_stamp > MIN_RTT_WINDOW:
                self.rtprop = ack.rtt_sample
                self.rtprop_stamp = now

        self._update_mode(ack)
        self._set_rates(ack)

    def _update_mode(self, ack: AckInfo) -> None:
        now = ack.now
        if self.mode is BbrMode.DRAIN:
            bdp = self.bdp()
            if bdp is not None and ack.flight <= bdp:
                self.mode = BbrMode.PROBE_BW
                self.cycle_index = 2
                self.cycle_stamp = now
        elif self.mode is BbrMode.PROBE_BW:
            if self.rtprop is not None and now - self.cycle_stamp > self.rtprop:
                self.cycle_index = (self.cycle_index + 1) % len(PROBE_BW_GAINS)
                self.cycle_stamp = now
            if now - self.rtprop_stamp > MIN_RTT_WINDOW:
                self.mode = BbrMode.PROBE_RTT
                self.probe_rtt_done_stamp = now + PROBE_RTT_DURATION
        elif self.mode is BbrMode.PROBE_RTT:
            assert self.probe_rtt_done_stamp is not None
            if now > self.probe_rtt_done_stamp:
                self.rtprop_stamp = now
                self.mode = (BbrMode.PROBE_BW if self.filled_pipe
                             else BbrMode.STARTUP)
                self.cycle_stamp = now

    def _gains(self) -> tuple:
        if self.mode is BbrMode.STARTUP:
            return STARTUP_GAIN, STARTUP_GAIN
        if self.mode is BbrMode.DRAIN:
            return DRAIN_GAIN, STARTUP_GAIN
        if self.mode is BbrMode.PROBE_BW:
            return PROBE_BW_GAINS[self.cycle_index], 2.0
        return 1.0, 1.0  # PROBE_RTT

    def _set_rates(self, ack: AckInfo) -> None:
        pacing_gain, cwnd_gain = self._gains()
        bw = self.bottleneck_bw
        if bw is not None:
            self._pacing_rate = max(pacing_gain * bw, 1.0)
        if self.mode is BbrMode.PROBE_RTT:
            self._cwnd = 4.0 * self.mss
            return
        bdp = self.bdp(cwnd_gain)
        if self._post_rto:
            # Packet-conserving rebuild after a timeout (the kernel grows
            # cwnd from 1 segment instead of jumping back to the model
            # target, which would re-flood the queue that just overflowed).
            self._cwnd += ack.acked_bytes
            target = self.bdp(1.0)
            if target is not None and self._cwnd >= target:
                self._post_rto = False
            return
        if bdp is None:
            # No estimates yet: grow like slow start.
            self._cwnd += ack.acked_bytes
        elif ack.in_recovery:
            # Packet conservation while loss recovery drains the queue
            # (the kernel's conservative recovery behaviour).
            self._cwnd = max(self.bdp(1.0) or bdp, 4.0 * self.mss)
        else:
            self._cwnd = max(bdp, 4.0 * self.mss)

    # ------------------------------------------------------------------
    def on_loss(self, now: float) -> None:
        # BBRv1 does not react to isolated losses.
        pass

    def on_rto(self, now: float) -> None:
        # Conservative restart; cwnd is rebuilt ACK by ACK (see _set_rates).
        self._cwnd = float(self.mss)
        self._post_rto = True


register("bbr", Bbr)
