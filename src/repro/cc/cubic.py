"""CUBIC congestion control (Ha, Rhee, Xu — RFC 9438), with HyStart.

This is the algorithm SUSS extends: slow start with HyStart exit, then the
cubic window-growth function with fast convergence and the TCP-friendly
(Reno-tracking) region.  Window arithmetic follows the kernel implementation
in floating point (segments) for clarity; the shape — concave approach to
``w_max``, plateau, convex probing — is what matters for reproduction.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import AckInfo, CongestionControl, register
from repro.cc.hystart import HyStart
from repro.cc.reno import INFINITE_SSTHRESH
from repro.obs import records as obsrec


class Cubic(CongestionControl):
    """CUBIC with HyStart slow-start exit."""

    name = "cubic"

    #: cubic scaling constant (segments / s^3)
    C = 0.4
    #: multiplicative decrease factor
    BETA = 0.7

    def __init__(self, hystart: Optional[HyStart] = None,
                 hystart_enabled: bool = True,
                 fast_convergence: bool = True) -> None:
        super().__init__()
        self._cwnd = 0.0
        self._ssthresh = float(INFINITE_SSTHRESH)
        self.hystart = hystart if hystart is not None else HyStart()
        self.hystart_enabled = hystart_enabled
        self.fast_convergence = fast_convergence

        # cubic epoch state (all in segments)
        self._w_max = 0.0
        self._k = 0.0
        self._origin = 0.0
        self._w_est = 0.0
        self._epoch_start: Optional[float] = None

        self.slow_start_exits = 0

    def init(self) -> None:
        self._cwnd = float(self.sender.iw_bytes)

    # ------------------------------------------------------------------
    @property
    def cwnd(self) -> int:
        return int(self._cwnd)

    @property
    def ssthresh(self) -> int:
        return int(min(self._ssthresh, INFINITE_SSTHRESH))

    # ------------------------------------------------------------------
    def on_round_start(self, now: float, round_index: int) -> None:
        if self.in_slow_start:
            self.hystart.on_round_start(now)

    def on_ack(self, ack: AckInfo) -> None:
        if ack.in_recovery:
            return
        if self.in_slow_start:
            if self.hystart_enabled and self.hystart.on_ack(
                    ack.now, ack.rtt_sample, self.min_rtt,
                    self._cwnd / self.mss):
                self.exit_slow_start(ack.now)
            if self.in_slow_start:
                self.slow_start_ack(ack)
                return
        self._congestion_avoidance_ack(ack)

    # -- slow start ------------------------------------------------------
    def slow_start_ack(self, ack: AckInfo) -> None:
        """Traditional slow start: cwnd grows by the bytes acknowledged.

        SUSS overrides this hook to add accelerated growth.
        """
        self._cwnd += ack.acked_bytes

    def exit_slow_start(self, now: float) -> None:
        """Terminate exponential growth (HyStart fired): ssthresh = cwnd."""
        self._ssthresh = self._cwnd
        self.slow_start_exits += 1
        obs = getattr(self.sender, "obs", None)
        if obs is not None:
            obs.emit(now, obsrec.CC_SS_EXIT, self.sender.flow_id,
                     cwnd=self.cwnd, reason="hystart")

    # -- congestion avoidance ---------------------------------------------
    def _congestion_avoidance_ack(self, ack: AckInfo) -> None:
        mss = self.mss
        cwnd_segs = self._cwnd / mss
        if self._epoch_start is None:
            self._epoch_start = ack.now
            if self._w_max > cwnd_segs:
                self._k = ((self._w_max - cwnd_segs) / self.C) ** (1.0 / 3.0)
                self._origin = self._w_max
            else:
                self._k = 0.0
                self._origin = cwnd_segs
            self._w_est = cwnd_segs
        t = ack.now - self._epoch_start + (self.min_rtt or 0.0)
        target = self._origin + self.C * (t - self._k) ** 3
        acked_segs = ack.acked_bytes / mss
        if target > cwnd_segs:
            # At most +0.5 segment per acked segment (Linux caps cnt >= 2).
            inc = min((target - cwnd_segs) / cwnd_segs, 0.5)
        else:
            inc = 0.01 / cwnd_segs
        self._cwnd += mss * inc * acked_segs

        # TCP-friendly region: track what Reno would achieve.
        self._w_est += (3.0 * (1 - self.BETA) / (1 + self.BETA)
                        * acked_segs / cwnd_segs)
        if self._w_est * mss > self._cwnd:
            self._cwnd = self._w_est * mss

    # -- loss handling -----------------------------------------------------
    def on_loss(self, now: float) -> None:
        cwnd_segs = self._cwnd / self.mss
        self._epoch_start = None
        if cwnd_segs < self._w_max and self.fast_convergence:
            self._w_max = cwnd_segs * (2.0 - self.BETA) / 2.0
        else:
            self._w_max = cwnd_segs
        self._ssthresh = max(self._cwnd * self.BETA, 2.0 * self.mss)
        self._cwnd = self._ssthresh

    def on_rto(self, now: float) -> None:
        self._ssthresh = max(self._cwnd * self.BETA, 2.0 * self.mss)
        self._cwnd = float(self.mss)
        self._epoch_start = None
        self.hystart.reset()


register("cubic", Cubic)
register("cubic-nohystart", lambda: Cubic(hystart_enabled=False))
