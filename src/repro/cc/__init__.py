"""Congestion-control algorithms and their registry."""

from repro.cc.base import AckInfo, CongestionControl, available, create, register
from repro.cc.bbr import Bbr
from repro.cc.bbr2 import Bbr2
from repro.cc.cubic import Cubic
from repro.cc.filters import WindowedFilter, windowed_max, windowed_min
from repro.cc.hystart import HyStart
from repro.cc.hystart_pp import HyStartPP
from repro.cc.reno import Reno
from repro.cc.slowstart_variants import (
    Halfback,
    InitialSpreadingCubic,
    JumpStart,
    LargeIwCubic,
    StatefulCubic,
)

__all__ = [
    "AckInfo",
    "CongestionControl",
    "available",
    "create",
    "register",
    "Bbr",
    "Bbr2",
    "Cubic",
    "HyStart",
    "HyStartPP",
    "Reno",
    "WindowedFilter",
    "windowed_max",
    "windowed_min",
    "Halfback",
    "InitialSpreadingCubic",
    "JumpStart",
    "LargeIwCubic",
    "StatefulCubic",
]
