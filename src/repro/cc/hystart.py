"""HyStart: safe slow-start exit (Ha & Rhee 2011), as used by Linux CUBIC.

HyStart stops cwnd's exponential growth when either heuristic fires:

* **ACK train** (Condition 1 in the SUSS paper): ACKs that arrive closely
  spaced form a train; once the train's length — the time from the round
  start to the latest closely-spaced ACK — reaches ``minRTT / 2``, the
  window has grown large enough that a full round of ACKs occupies half
  the path, and growth should stop.
* **Delay increase** (Condition 2): once the minimum RTT observed in the
  current round exceeds ``1.125 × minRTT``, queueing delay signals the
  onset of congestion.

The thresholds mirror the paper's formulation (Section 3); Linux's extra
clamping of the delay threshold is intentionally omitted so that the
implementation matches the equations SUSS builds on.  SUSS's *modified*
HyStart (Section 5) subclasses this with ratio-scaled elapsed time and a
cwnd cap; see :mod:`repro.core.hystart_mod`.
"""

from __future__ import annotations

from typing import Optional

#: ACKs closer together than this extend the ACK train (Linux: 2 ms).
ACK_DELTA = 0.002
#: Minimum window (in segments) before HyStart heuristics engage.
LOW_WINDOW_SEGMENTS = 16
#: RTT samples per round used for the delay heuristic (Linux: 8).
MIN_DELAY_SAMPLES = 8


class HyStart:
    """Per-connection HyStart state machine.

    The owner calls :meth:`on_round_start` at each round boundary and
    :meth:`on_ack` per ACK while in slow start; ``on_ack`` returns True when
    exponential growth must stop (the owner then sets ``ssthresh = cwnd``).
    """

    def __init__(self, ack_train_fraction: float = 0.5,
                 delay_factor: float = 1.125,
                 ack_delta: float = ACK_DELTA,
                 low_window_segments: int = LOW_WINDOW_SEGMENTS,
                 min_delay_samples: int = MIN_DELAY_SAMPLES) -> None:
        self.ack_train_fraction = ack_train_fraction
        self.delay_factor = delay_factor
        self.ack_delta = ack_delta
        self.low_window_segments = low_window_segments
        self.min_delay_samples = min_delay_samples

        self.round_start = 0.0
        self.last_ack_time = 0.0
        self.train_length = 0.0
        self.mo_rtt: Optional[float] = None  # min observed RTT this round
        self.delay_samples = 0
        self.found = False  # exit already signalled

    # ------------------------------------------------------------------
    def on_round_start(self, now: float) -> None:
        self.round_start = now
        self.last_ack_time = now
        self.train_length = 0.0
        self.mo_rtt = None
        self.delay_samples = 0

    # ------------------------------------------------------------------
    def elapsed_since_round_start(self, now: float) -> float:
        """Elapsed time used by the ACK-train test (hook for SUSS scaling)."""
        return now - self.round_start

    def _ack_train_exceeds(self, now: float, min_rtt: float) -> bool:
        if now - self.last_ack_time <= self.ack_delta:
            self.train_length = self.elapsed_since_round_start(now)
        self.last_ack_time = now
        return self.train_length >= self.ack_train_fraction * min_rtt

    def _delay_exceeds(self, rtt_sample: Optional[float], min_rtt: float) -> bool:
        if rtt_sample is None:
            return False
        if self.mo_rtt is None or rtt_sample < self.mo_rtt:
            self.mo_rtt = rtt_sample
        self.delay_samples += 1
        if self.delay_samples < self.min_delay_samples:
            return False
        return self.mo_rtt > self.delay_factor * min_rtt

    # ------------------------------------------------------------------
    def on_ack(self, now: float, rtt_sample: Optional[float],
               min_rtt: Optional[float], cwnd_segments: float) -> bool:
        """Process an ACK during slow start; True means 'stop growth now'."""
        if self.found:
            return True
        if min_rtt is None or cwnd_segments < self.low_window_segments:
            return False
        if self._ack_train_exceeds(now, min_rtt) or \
                self._delay_exceeds(rtt_sample, min_rtt):
            self.found = True
            return True
        return False

    def reset(self) -> None:
        """Re-arm HyStart (after a timeout returns the flow to slow start)."""
        self.found = False
        self.train_length = 0.0
        self.mo_rtt = None
        self.delay_samples = 0
