"""Windowed min/max filters (the kernel's ``win_minmax`` analogue).

BBR tracks the maximum delivery rate over a sliding window of delivery
rounds and the minimum RTT over a sliding window of time.  These filters
keep every candidate sample inside the window, which is simple and exact;
window sizes here are tiny (tens of entries), so the kernel's 3-sample
approximation is unnecessary.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple


class WindowedFilter:
    """Tracks an extreme value of samples within a sliding key window."""

    def __init__(self, window: float, is_max: bool) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.is_max = is_max
        self._samples: Deque[Tuple[float, float]] = deque()  # (key, value)

    def update(self, key: float, value: float) -> None:
        """Add a sample at monotonically non-decreasing ``key``."""
        lo = key - self.window
        while self._samples and self._samples[0][0] < lo:
            self._samples.popleft()
        # Drop samples dominated by the new value: they can never be the
        # extreme again (the new sample is newer and at least as extreme).
        if self.is_max:
            while self._samples and self._samples[-1][1] <= value:
                self._samples.pop()
        else:
            while self._samples and self._samples[-1][1] >= value:
                self._samples.pop()
        self._samples.append((key, value))

    def get(self, key: Optional[float] = None) -> Optional[float]:
        """Current extreme, expiring entries older than ``key - window``."""
        if key is not None:
            lo = key - self.window
            while self._samples and self._samples[0][0] < lo:
                self._samples.popleft()
        if not self._samples:
            return None
        return self._samples[0][1]

    def reset(self) -> None:
        self._samples.clear()


def windowed_max(window: float) -> WindowedFilter:
    return WindowedFilter(window, is_max=True)


def windowed_min(window: float) -> WindowedFilter:
    return WindowedFilter(window, is_max=False)
