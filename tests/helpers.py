"""Shared test fixtures: tiny networks and instrumented transfers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.cc.base import CongestionControl
from repro.metrics import Telemetry
from repro.net import Dumbbell, bdp_bytes, build_path
from repro.net.netem import BandwidthProfile
from repro.sim import Simulator
from repro.tcp import Transfer, open_transfer

MSS = 1448


@dataclass
class Bench:
    """A single-flow testbench."""

    sim: Simulator
    net: Dumbbell
    transfer: Transfer
    telemetry: Telemetry

    @property
    def sender(self):
        return self.transfer.sender

    @property
    def receiver(self):
        return self.transfer.receiver

    @property
    def cc(self):
        return self.transfer.sender.cc

    def run(self, until: float = 300.0) -> "Bench":
        self.sim.run(until=until)
        return self


def make_transfer(cc: Union[str, CongestionControl] = "cubic",
                  size: int = 500 * MSS, rate: float = 12_500_000,
                  rtt: float = 0.1, buffer_bdp: float = 1.0,
                  bandwidth: Optional[BandwidthProfile] = None,
                  obs=None,
                  **kwargs) -> Bench:
    """Build a single-path network with one transfer, ready to run."""
    sim = Simulator() if obs is None else Simulator(obs=obs)
    buffer_bytes = max(int(buffer_bdp * bdp_bytes(rate, rtt)), 3000)
    net = build_path(sim, bandwidth if bandwidth is not None else rate,
                     rtt, buffer_bytes)
    telemetry = Telemetry()
    telemetry.attach_queue(net.bottleneck_queue)
    transfer = open_transfer(sim, net.servers[0], net.clients[0], flow_id=1,
                             size_bytes=size, cc=cc, telemetry=telemetry,
                             **kwargs)
    return Bench(sim=sim, net=net, transfer=transfer, telemetry=telemetry)
