"""Unit tests for telemetry collection and summary statistics."""

import pytest

from repro.metrics import Summary, Telemetry, improvement, summarize
from repro.net import DropTailQueue, Packet, PacketKind

from tests.helpers import MSS, make_transfer


def pkt(flow=1):
    return Packet(flow_id=flow, src="a", dst="b", kind=PacketKind.DATA,
                  payload=MSS)


class TestTelemetryUnit:
    def test_flow_created_on_demand(self):
        tel = Telemetry()
        trace = tel.flow(7)
        assert trace.flow_id == 7
        assert tel.flow(7) is trace

    def test_series_recorded(self):
        tel = Telemetry()
        tel.on_cwnd(1, 0.5, 14480, 7240)
        tel.on_rtt(1, 0.5, 0.1)
        tel.on_delivered(1, 0.5, 2896)
        trace = tel.flow(1)
        assert trace.cwnd.value_at(0.5) == 14480
        assert trace.inflight.value_at(0.5) == 7240
        assert trace.rtt.value_at(0.5) == 0.1
        assert trace.delivered.value_at(0.5) == 2896

    def test_sampling_can_be_disabled(self):
        tel = Telemetry(sample_cwnd=False, sample_rtt=False,
                        sample_delivered=False)
        tel.on_cwnd(1, 0.5, 1, 1)
        tel.on_rtt(1, 0.5, 0.1)
        tel.on_delivered(1, 0.5, 1)
        trace = tel.flow(1)
        assert trace.cwnd.empty and trace.rtt.empty and trace.delivered.empty

    def test_send_and_drop_counters(self):
        tel = Telemetry()
        tel.on_send(1, 0.0, pkt(), retransmit=False)
        tel.on_send(1, 0.1, pkt(), retransmit=True)
        tel.on_drop(pkt(), "btl")
        trace = tel.flow(1)
        assert trace.data_packets_sent == 2
        assert trace.retransmit_packets == 1
        assert trace.drops == 1
        assert trace.loss_rate == 0.5
        assert trace.retransmit_rate == 0.5
        assert tel.total_drops == 1

    def test_loss_rate_zero_when_nothing_sent(self):
        assert Telemetry().flow(1).loss_rate == 0.0

    def test_attach_queue_routes_drops(self):
        tel = Telemetry()
        q = DropTailQueue(1000)
        tel.attach_queue(q)
        q.push(pkt())  # too big -> dropped
        assert tel.flow(1).drops == 1

    def test_completion_time(self):
        tel = Telemetry()
        tel.on_flow_complete(1, 3.25)
        assert tel.flow(1).completion_time == 3.25


class TestTelemetryIntegration:
    def test_delivered_matches_flow_size(self):
        bench = make_transfer(size=100 * MSS).run()
        trace = bench.telemetry.flow(1)
        assert trace.delivered.max_value() == 100 * MSS
        assert trace.completion_time == bench.sender.completion_time

    def test_cwnd_series_nondecreasing_time(self):
        bench = make_transfer(size=300 * MSS).run()
        times = bench.telemetry.flow(1).cwnd.times
        assert times == sorted(times)


class TestSummary:
    def test_basic_stats(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == 2.0
        assert s.std == pytest.approx(1.0)
        assert (s.minimum, s.maximum) == (1.0, 3.0)

    def test_single_sample(self):
        s = summarize([5.0])
        assert s.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_improvement(self):
        assert improvement(2.0, 1.5) == pytest.approx(0.25)
        assert improvement(2.0, 2.5) == pytest.approx(-0.25)
        with pytest.raises(ValueError):
            improvement(0.0, 1.0)

    def test_str(self):
        assert "n=3" in str(summarize([1.0, 2.0, 3.0]))
