"""Unit tests for HyStart (classic) and HyStart++."""

import pytest

from repro.cc.hystart import HyStart

from tests.helpers import MSS, make_transfer


def feed_round(hs, start, acks, min_rtt, rtt=None, cwnd_segs=100,
               spacing=0.0005):
    """Simulate a round of closely spaced ACKs; returns True if exit fired."""
    hs.on_round_start(start)
    t = start
    for _ in range(acks):
        t += spacing
        if hs.on_ack(t, rtt, min_rtt, cwnd_segs):
            return True
    return False


class TestAckTrain:
    def test_short_train_no_exit(self):
        hs = HyStart()
        # 20 ACKs over 10 ms against minRTT 100 ms -> train < 50 ms.
        assert not feed_round(hs, 0.0, 20, min_rtt=0.1)

    def test_long_train_exits(self):
        hs = HyStart()
        # 200 ACKs x 0.5 ms = 100 ms train >= minRTT/2.
        assert feed_round(hs, 0.0, 200, min_rtt=0.1)

    def test_gap_breaks_train(self):
        hs = HyStart()
        hs.on_round_start(0.0)
        t = 0.0
        fired = False
        for _ in range(200):
            t += 0.005  # 5 ms gaps exceed ACK_DELTA: never a train
            fired = fired or hs.on_ack(t, None, 0.1, 100)
        assert not fired

    def test_low_window_gate(self):
        hs = HyStart()
        assert not feed_round(hs, 0.0, 500, min_rtt=0.1, cwnd_segs=8)

    def test_exit_latches(self):
        hs = HyStart()
        assert feed_round(hs, 0.0, 200, min_rtt=0.1)
        assert hs.on_ack(1.0, None, 0.1, 100)  # stays fired

    def test_reset_rearms(self):
        hs = HyStart()
        assert feed_round(hs, 0.0, 200, min_rtt=0.1)
        hs.reset()
        assert not hs.found
        assert not feed_round(hs, 10.0, 20, min_rtt=0.1)


class TestDelayIncrease:
    def test_inflated_rtt_exits(self):
        hs = HyStart()
        hs.on_round_start(0.0)
        fired = False
        for i in range(10):
            # RTT 20% above minRTT > 1.125 threshold; samples spaced widely
            fired = fired or hs.on_ack(0.01 * (i + 1) + 0.005 * i, 0.12,
                                       0.1, 100)
        assert fired

    def test_needs_min_samples(self):
        hs = HyStart()
        hs.on_round_start(0.0)
        fired = False
        for i in range(HyStart().min_delay_samples - 1):
            fired = fired or hs.on_ack(0.02 * (i + 1), 0.2, 0.1, 100)
        assert not fired

    def test_rtt_below_threshold_continues(self):
        hs = HyStart()
        hs.on_round_start(0.0)
        fired = False
        for i in range(20):
            fired = fired or hs.on_ack(0.02 * (i + 1), 0.11, 0.1, 100)
        assert not fired  # 1.1x < 1.125x threshold

    def test_mo_rtt_is_round_minimum(self):
        hs = HyStart()
        hs.on_round_start(0.0)
        for i, rtt in enumerate([0.2, 0.12, 0.3]):
            hs.on_ack(0.02 * (i + 1), rtt, 0.1, 100)
        assert hs.mo_rtt == 0.12


class TestHyStartPPBehaviour:
    def test_exits_before_heavy_overshoot(self):
        plain = make_transfer(cc="cubic-nohystart", size=2600 * MSS,
                              buffer_bdp=0.5).run()
        hpp = make_transfer(cc="cubic+hystartpp", size=2600 * MSS,
                            buffer_bdp=0.5).run()
        assert hpp.transfer.completed
        assert hpp.telemetry.flow(1).drops <= plain.telemetry.flow(1).drops

    def test_clean_path_transfer_completes(self):
        bench = make_transfer(cc="cubic+hystartpp", size=800 * MSS,
                              buffer_bdp=2.0).run()
        assert bench.transfer.completed
        assert bench.sender.retransmissions == 0

    def test_css_state_machine_engages_on_congested_path(self):
        # A long transfer over a queue-building path must leave slow start
        # one way or another: CSS persistence, CSS in progress, or loss.
        bench = make_transfer(cc="cubic+hystartpp", size=8000 * MSS,
                              buffer_bdp=1.0).run()
        cc = bench.cc
        assert bench.transfer.completed
        engaged = (cc.ssthresh < 1 << 60 or cc.in_css
                   or bench.telemetry.flow(1).drops > 0)
        assert engaged
