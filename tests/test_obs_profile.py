"""Unit tests for repro.obs.profile and engine profiling integration."""

import pytest

from repro.obs import profile as obs_profile
from repro.obs.profile import EventProfiler
from repro.obs.tracer import Observability
from repro.sim.engine import Simulator


@pytest.fixture(autouse=True)
def _clean_global():
    obs_profile.clear_global()
    yield
    obs_profile.clear_global()


class TestEventProfiler:
    def test_fire_runs_callback_and_aggregates(self):
        prof = EventProfiler()
        calls = []
        prof.fire(calls.append, (1,))
        prof.fire(calls.append, (2,))
        assert calls == [1, 2]
        assert prof.events == 2
        ((key, fires, total, mean, peak),) = prof.rows()
        assert fires == 2 and "append" in key
        assert total >= 0 and peak >= mean >= 0

    def test_fire_times_raising_callbacks(self):
        prof = EventProfiler()

        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            prof.fire(boom, ())
        assert prof.events == 1  # the failed fire is still accounted

    def test_note_tracks_max(self):
        prof = EventProfiler()
        prof.note("k", 0.1)
        prof.note("k", 0.3)
        prof.note("k", 0.2)
        (_, fires, total, mean, peak) = prof.rows()[0]
        assert fires == 3
        assert total == pytest.approx(0.6)
        assert peak == pytest.approx(0.3)

    def test_rows_sorted_by_total_descending(self):
        prof = EventProfiler()
        prof.note("small", 0.01)
        prof.note("big", 1.0)
        assert [row[0] for row in prof.rows()] == ["big", "small"]

    def test_format_report(self):
        prof = EventProfiler()
        assert prof.format_report() == "no events profiled"
        prof.note("Link._finish_transmission", 0.001)
        report = prof.format_report(top=5)
        assert "Link._finish_transmission" in report
        assert "1 events" in report

    def test_rows_sort_by_count_and_mean(self):
        prof = EventProfiler()
        # "often": many cheap fires; "rare": one expensive fire
        for _ in range(5):
            prof.note("often", 0.01)
        prof.note("rare", 0.2)
        assert [r[0] for r in prof.rows(sort="total")] == ["rare", "often"]
        assert [r[0] for r in prof.rows(sort="count")] == ["often", "rare"]
        assert [r[0] for r in prof.rows(sort="mean")] == ["rare", "often"]

    def test_rows_rejects_unknown_sort(self):
        with pytest.raises(ValueError, match="unknown sort key"):
            EventProfiler().rows(sort="bogus")

    def test_format_report_sort_changes_row_order(self):
        prof = EventProfiler()
        for _ in range(5):
            prof.note("often", 0.01)
        prof.note("rare", 0.2)
        by_total = prof.format_report(sort="total").splitlines()
        by_count = prof.format_report(sort="count").splitlines()
        assert by_total[2].startswith("rare")
        assert by_count[2].startswith("often")

    def test_format_report_top_truncates_after_sort(self):
        prof = EventProfiler()
        for _ in range(5):
            prof.note("often", 0.01)
        prof.note("rare", 0.2)
        report = prof.format_report(top=1, sort="count")
        assert "often" in report and "rare" not in report

    def test_reset(self):
        prof = EventProfiler()
        prof.note("k", 0.1)
        prof.reset()
        assert prof.events == 0 and prof.rows() == []


class TestGlobalProfiler:
    def test_install_and_clear(self):
        assert obs_profile.global_profiler() is None
        prof = obs_profile.install_global()
        assert obs_profile.global_profiler() is prof
        obs_profile.clear_global()
        assert obs_profile.global_profiler() is None

    def test_from_env_prefers_installed_global(self, monkeypatch):
        monkeypatch.delenv(obs_profile.ENV_VAR, raising=False)
        assert obs_profile.from_env() is None
        prof = obs_profile.install_global()
        assert obs_profile.from_env() is prof

    def test_env_var_lazily_installs_shared_instance(self, monkeypatch):
        monkeypatch.setenv(obs_profile.ENV_VAR, "1")
        assert obs_profile.profile_enabled()
        first = obs_profile.from_env()
        assert first is not None
        assert obs_profile.from_env() is first  # shared across Simulators

    def test_env_var_falsy_values(self, monkeypatch):
        monkeypatch.setenv(obs_profile.ENV_VAR, "0")
        assert not obs_profile.profile_enabled()


class TestEngineIntegration:
    def test_engine_routes_events_through_profiler(self):
        prof = EventProfiler()
        sim = Simulator(sanitizer=None,
                        obs=Observability(profiler=prof))
        fired = []
        for i in range(5):
            sim.schedule(0.1 * i, fired.append, i)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]
        assert prof.events == 5

    def test_step_also_profiles(self):
        prof = EventProfiler()
        sim = Simulator(sanitizer=None, obs=Observability(profiler=prof))
        sim.schedule(0.0, lambda: None)
        assert sim.step()
        assert prof.events == 1

    def test_simulator_picks_up_env_profiler(self, monkeypatch):
        monkeypatch.setenv(obs_profile.ENV_VAR, "1")
        sim = Simulator(sanitizer=None)
        assert sim.obs is not None
        assert sim.obs.profiler is obs_profile.global_profiler()

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(obs_profile.ENV_VAR, raising=False)
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert Simulator(sanitizer=None).obs is None


class TestCollapsedStacks:
    def _profiler_with(self, entries):
        prof = EventProfiler()
        for key, elapsed in entries:
            prof.note(key, elapsed)
        return prof

    def test_fold_format_and_sorting(self):
        prof = self._profiler_with([("Link.transmit", 0.002),
                                    ("Host.receive", 0.001),
                                    ("Link.transmit", 0.001)])
        lines = prof.collapsed_stacks()
        assert lines == ["Host;receive 1000", "Link;transmit 3000"]

    def test_tiny_totals_clamp_to_one_microsecond(self):
        prof = self._profiler_with([("X.y", 1e-9)])
        assert prof.collapsed_stacks() == ["X;y 1"]

    def test_round_trip_is_exact(self):
        prof = self._profiler_with([("Link.transmit", 0.0025),
                                    ("SussCubic._pacing_tick", 0.0103),
                                    ("Host.receive", 0.0001)])
        lines = prof.collapsed_stacks()
        parsed = obs_profile.parse_collapsed(lines)
        assert parsed == {"Link.transmit": 2500,
                          "SussCubic._pacing_tick": 10300,
                          "Host.receive": 100}
        # re-folding the parsed counts reproduces the lines verbatim
        refolded = [f"{k.replace('.', ';')} {v}"
                    for k, v in sorted(parsed.items())]
        assert refolded == lines

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            obs_profile.parse_collapsed(["nospacehere"])
        with pytest.raises(ValueError):
            obs_profile.parse_collapsed(["Frame;x notanint"])
