"""Unit tests for links: serialisation, propagation, queueing, impairments."""

import random

from repro.net import (
    ConstantBandwidth,
    DropTailQueue,
    JitterModel,
    Link,
    LossModel,
    Packet,
    PacketKind,
    SteppedBandwidth,
)
from repro.sim import Simulator


class Sink:
    def __init__(self):
        self.packets = []
        self.times = []

    def receive(self, packet):
        self.packets.append(packet)

    def receive_with_time(self, sim):
        outer = self

        class _S:
            def receive(self, packet):
                outer.packets.append(packet)
                outer.times.append(sim.now)

        return _S()


def pkt(payload=1448, flow=1):
    return Packet(flow_id=flow, src="a", dst="b", kind=PacketKind.DATA,
                  payload=payload)


class TestSerialization:
    def test_arrival_time_is_tx_plus_propagation(self):
        sim = Simulator()
        sink = Sink()
        dst = sink.receive_with_time(sim)
        link = Link(sim, dst, ConstantBandwidth(1500.0), delay=0.1)
        link.send(pkt(payload=1448))  # 1500 B at 1500 B/s = 1 s
        sim.run()
        assert len(sink.packets) == 1
        assert abs(sink.times[0] - 1.1) < 1e-9

    def test_back_to_back_packets_serialize(self):
        sim = Simulator()
        sink = Sink()
        dst = sink.receive_with_time(sim)
        link = Link(sim, dst, ConstantBandwidth(1500.0), delay=0.0)
        link.send(pkt())
        link.send(pkt())
        sim.run()
        assert abs(sink.times[0] - 1.0) < 1e-9
        assert abs(sink.times[1] - 2.0) < 1e-9

    def test_fifo_delivery_order(self):
        sim = Simulator()
        sink = Sink()
        link = Link(sim, sink, ConstantBandwidth(1e6), delay=0.01)
        sent = [pkt() for _ in range(10)]
        for p in sent:
            link.send(p)
        sim.run()
        assert sink.packets == sent

    def test_bandwidth_change_affects_tx_time(self):
        sim = Simulator()
        sink = Sink()
        dst = sink.receive_with_time(sim)
        profile = SteppedBandwidth([(0.0, 1500.0), (0.5, 3000.0)])
        link = Link(sim, dst, profile, delay=0.0)
        link.send(pkt())
        sim.run()  # sent at t=0 with rate 1500 -> arrives at 1.0
        assert abs(sink.times[0] - 1.0) < 1e-9
        link.send(pkt())  # now t=1.0, rate 3000 -> 0.5 s
        sim.run()
        assert abs(sink.times[1] - 1.5) < 1e-9

    def test_counters(self):
        sim = Simulator()
        sink = Sink()
        link = Link(sim, sink, ConstantBandwidth(1e6), delay=0.0)
        for _ in range(3):
            link.send(pkt())
        sim.run()
        assert link.packets_sent == 3
        assert link.bytes_sent == 3 * 1500


class TestQueueing:
    def test_full_queue_drops(self):
        # Packets enter the link directly (no Host.transmit), so the
        # conservation sanitizer would miscount; opt out explicitly.
        sim = Simulator(sanitizer=None)
        sink = Sink()
        queue = DropTailQueue(2 * 1500)
        link = Link(sim, sink, ConstantBandwidth(1500.0), delay=0.0,
                    queue=queue)
        results = [link.send(pkt()) for _ in range(5)]
        # First packet starts transmitting (leaves queue), two queue slots.
        assert results[0] and results[1] and results[2]
        assert not all(results)
        sim.run()
        assert len(sink.packets) + queue.drops == 5


class TestImpairments:
    def test_random_loss_drops_packets(self):
        # Direct link.send bypasses Host.transmit accounting; opt out.
        sim = Simulator(sanitizer=None)
        sink = Sink()
        link = Link(sim, sink, ConstantBandwidth(1e9), delay=0.0,
                    loss=LossModel(0.5, rng=random.Random(3)))
        for _ in range(200):
            link.send(pkt())
        sim.run()
        assert 40 < len(sink.packets) < 160
        assert link.packets_lost == 200 - len(sink.packets)

    def test_jitter_never_reorders(self):
        sim = Simulator()
        sink = Sink()
        dst = sink.receive_with_time(sim)
        link = Link(sim, dst, ConstantBandwidth(1e7), delay=0.01,
                    jitter=JitterModel(0.01, rng=random.Random(5)))
        sent = [pkt() for _ in range(100)]
        for p in sent:
            link.send(p)
        sim.run()
        assert sink.packets == sent
        assert sink.times == sorted(sink.times)

    def test_jitter_adds_delay(self):
        sim = Simulator()
        sink = Sink()
        dst = sink.receive_with_time(sim)
        link = Link(sim, dst, ConstantBandwidth(1e9), delay=0.01,
                    jitter=JitterModel(0.02, rng=random.Random(1)))
        link.send(pkt())
        sim.run()
        assert sink.times[0] > 0.01
