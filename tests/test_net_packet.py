"""Unit tests for the packet model."""

from repro.net import DEFAULT_MSS, HEADER_BYTES, Packet, PacketKind


def data_packet(seq=0, payload=DEFAULT_MSS, **kw):
    return Packet(flow_id=1, src="a", dst="b", kind=PacketKind.DATA,
                  seq=seq, payload=payload, **kw)


class TestPacket:
    def test_data_size_includes_header(self):
        pkt = data_packet(payload=1000)
        assert pkt.size == 1000 + HEADER_BYTES

    def test_ack_is_header_only(self):
        ack = Packet(flow_id=1, src="b", dst="a", kind=PacketKind.ACK,
                     ack_seq=5000)
        assert ack.size == HEADER_BYTES
        assert ack.is_ack and not ack.is_data

    def test_end_seq(self):
        pkt = data_packet(seq=1000, payload=500)
        assert pkt.end_seq == 1500

    def test_packet_ids_unique(self):
        a, b = data_packet(), data_packet()
        assert a.packet_id != b.packet_id

    def test_default_not_retransmit(self):
        assert not data_packet().retransmit

    def test_sack_default_none(self):
        assert data_packet().sack is None

    def test_kind_flags(self):
        syn = Packet(flow_id=1, src="a", dst="b", kind=PacketKind.SYN)
        assert not syn.is_data and not syn.is_ack
