"""Unit tests for the token pacer."""

import pytest

from repro.tcp import Pacer


class TestPacer:
    def test_unpaced_always_allows(self):
        pacer = Pacer()
        assert pacer.can_send(0.0)
        pacer.note_sent(0.0, 10 ** 9)
        assert pacer.can_send(0.0)

    def test_rate_spaces_departures(self):
        pacer = Pacer()
        pacer.set_rate(1000.0)
        assert pacer.can_send(0.0)
        pacer.note_sent(0.0, 500)
        assert not pacer.can_send(0.0)
        assert pacer.next_send_time(0.0) == 0.5
        assert pacer.can_send(0.5)

    def test_consecutive_sends_accumulate(self):
        pacer = Pacer()
        pacer.set_rate(1000.0)
        pacer.note_sent(0.0, 500)
        pacer.note_sent(0.0, 500)
        assert pacer.next_send_time(0.0) == 1.0

    def test_idle_time_does_not_bank_credit(self):
        pacer = Pacer()
        pacer.set_rate(1000.0)
        pacer.note_sent(10.0, 500)
        assert pacer.next_send_time(10.0) == 10.5

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Pacer().set_rate(0.0)

    def test_disable_pacing(self):
        pacer = Pacer()
        pacer.set_rate(1000.0)
        pacer.note_sent(0.0, 5000)
        pacer.set_rate(None)
        assert pacer.can_send(0.0)

    def test_reset(self):
        pacer = Pacer()
        pacer.set_rate(1000.0)
        pacer.note_sent(0.0, 5000)
        pacer.reset()
        assert pacer.can_send(0.0)

    def test_achieved_rate_close_to_configured(self):
        pacer = Pacer()
        pacer.set_rate(10_000.0)
        t, sent = 0.0, 0
        while sent < 100_000:
            t = pacer.next_send_time(t)
            pacer.note_sent(t, 1000)
            sent += 1000
        assert abs(sent / t - 10_000.0) < 1e-6 * 10_000 + 1200
