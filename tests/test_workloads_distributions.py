"""Tests for flow-size distributions and the traffic-mix experiment."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.experiments import ext_traffic_mix
from repro.workloads.distributions import (
    CAMPUS_FLOW_CDF,
    EmpiricalCdf,
    heavy_tailed_flow_sizes,
    web_object_sizes,
)


class TestWebObjects:
    def test_sizes_positive_and_bounded(self):
        sizes = web_object_sizes(500, random.Random(1), max_size=10 ** 6)
        assert all(100 <= s <= 10 ** 6 for s in sizes)

    def test_median_near_parameter(self):
        sizes = sorted(web_object_sizes(4000, random.Random(2),
                                        median=25_000))
        assert sizes[len(sizes) // 2] == pytest.approx(25_000, rel=0.3)

    def test_deterministic(self):
        a = web_object_sizes(50, random.Random(3))
        b = web_object_sizes(50, random.Random(3))
        assert a == b

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            web_object_sizes(0, random.Random(1))


class TestHeavyTailed:
    def test_bounds_respected(self):
        sizes = heavy_tailed_flow_sizes(1000, random.Random(4),
                                        minimum=10_000, maximum=10 ** 7)
        assert all(10_000 <= s <= 10 ** 7 for s in sizes)

    def test_mice_dominate(self):
        sizes = heavy_tailed_flow_sizes(3000, random.Random(5))
        small = sum(1 for s in sizes if s < 100_000)
        assert small / len(sizes) > 0.5

    def test_elephants_exist(self):
        sizes = heavy_tailed_flow_sizes(3000, random.Random(6))
        assert max(sizes) > 20 * min(sizes)

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            heavy_tailed_flow_sizes(10, rng, minimum=100, maximum=100)
        with pytest.raises(ValueError):
            heavy_tailed_flow_sizes(10, rng, alpha=0)

    def test_same_seed_identical_draws(self):
        a = heavy_tailed_flow_sizes(200, random.Random(11))
        b = heavy_tailed_flow_sizes(200, random.Random(11))
        assert a == b

    def test_different_seeds_differ(self):
        a = heavy_tailed_flow_sizes(200, random.Random(11))
        b = heavy_tailed_flow_sizes(200, random.Random(12))
        assert a != b

    def test_boundary_clamping(self):
        # A tiny span forces the Pareto tail against both clamps.
        sizes = heavy_tailed_flow_sizes(2000, random.Random(13),
                                        minimum=1_000, maximum=1_500)
        assert min(sizes) >= 1_000
        assert max(sizes) <= 1_500


class TestEmpiricalCdf:
    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([(1, 0.0)])
        with pytest.raises(ValueError):
            EmpiricalCdf([(1, 0.1), (2, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalCdf([(1, 0.0), (2, 0.9)])
        with pytest.raises(ValueError):
            EmpiricalCdf([(5, 0.0), (2, 1.0)])

    def test_rejects_fewer_than_two_breakpoints(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([])
        with pytest.raises(ValueError):
            EmpiricalCdf([(1, 0.0)])

    def test_same_seed_identical_draws(self):
        cdf = EmpiricalCdf([(10, 0.0), (100, 0.5), (1000, 1.0)])
        a = [cdf.sample(random.Random(21)) for _ in range(100)]
        b = [cdf.sample(random.Random(21)) for _ in range(100)]
        assert a == b
        # One shared stream across calls is equally reproducible.
        rng1, rng2 = random.Random(22), random.Random(22)
        assert cdf.sample_sizes(100, rng1) == cdf.sample_sizes(100, rng2)

    def test_samples_within_support(self):
        cdf = EmpiricalCdf([(10, 0.0), (100, 0.5), (1000, 1.0)])
        rng = random.Random(7)
        samples = [cdf.sample(rng) for _ in range(1000)]
        assert all(10 <= s <= 1000 for s in samples)

    def test_median_matches_breakpoint(self):
        cdf = EmpiricalCdf([(10, 0.0), (100, 0.5), (1000, 1.0)])
        rng = random.Random(8)
        samples = sorted(cdf.sample(rng) for _ in range(5000))
        assert samples[len(samples) // 2] == pytest.approx(100, rel=0.25)

    def test_campus_cdf_shape(self):
        """Half the flows are small; the tail reaches the elephants."""
        rng = random.Random(9)
        sizes = CAMPUS_FLOW_CDF.sample_sizes(5000, rng)
        small = sum(1 for s in sizes if s <= 100_000)
        assert 0.55 <= small / len(sizes) <= 0.85
        assert max(sizes) > 10_000_000

    @given(st.integers(min_value=0, max_value=2 ** 31))
    def test_sample_always_in_range(self, seed):
        rng = random.Random(seed)
        value = CAMPUS_FLOW_CDF.sample(rng)
        assert 1_000 <= value <= 100_000_000


class TestTrafficMixExperiment:
    def test_mix_mostly_improves(self):
        result = ext_traffic_mix.run(n_flows=12, max_size=5_000_000)
        assert result.mean_improvement > 0.0
        assert 0.0 <= result.fraction_improved <= 1.0
        assert "traffic mix" in ext_traffic_mix.format_report(result)

    def test_percentiles_ordered(self):
        result = ext_traffic_mix.run(n_flows=10, max_size=3_000_000)
        assert result.percentile(10) <= result.percentile(90)


class TestSampleMany:
    """The vectorised sampler path behind million-flow flowsim sweeps."""

    @given(st.integers(min_value=0, max_value=2 ** 31),
           st.integers(min_value=0, max_value=400))
    def test_batched_equals_one_at_a_time(self, seed, n):
        """``sample_many(n)`` consumes the rng stream exactly like ``n``
        successive ``sample()`` calls: same draws, same order."""
        batched = CAMPUS_FLOW_CDF.sample_many(n, random.Random(seed))
        serial_rng = random.Random(seed)
        serial = [CAMPUS_FLOW_CDF.sample(serial_rng) for _ in range(n)]
        assert batched == serial

    @given(st.integers(min_value=0, max_value=2 ** 31))
    def test_stream_position_identical_after_batch(self, seed):
        """Downstream draws after a batch match downstream draws after
        the equivalent serial sampling — no hidden rng consumption."""
        a, b = random.Random(seed), random.Random(seed)
        CAMPUS_FLOW_CDF.sample_many(37, a)
        for _ in range(37):
            CAMPUS_FLOW_CDF.sample(b)
        assert a.random() == b.random()

    def test_sample_sizes_uses_batched_path(self):
        sizes = CAMPUS_FLOW_CDF.sample_sizes(100, random.Random(5))
        values = CAMPUS_FLOW_CDF.sample_many(100, random.Random(5))
        assert sizes == [max(int(v), 1) for v in values]

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            CAMPUS_FLOW_CDF.sample_many(-1, random.Random(0))


class TestSampleFlowSizes:
    def test_named_distributions_dispatch(self):
        from repro.workloads.distributions import (
            SIZE_SAMPLERS,
            sample_flow_sizes,
        )
        for name in SIZE_SAMPLERS:
            sizes = sample_flow_sizes(name, 50, random.Random(2))
            assert len(sizes) == 50
            assert all(isinstance(s, int) and s >= 1 for s in sizes)

    def test_unknown_name_lists_known(self):
        from repro.workloads.distributions import sample_flow_sizes
        with pytest.raises(KeyError, match="campus"):
            sample_flow_sizes("pareto", 10, random.Random(0))
