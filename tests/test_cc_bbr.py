"""Unit/behaviour tests for BBRv1 and BBRv2."""

import pytest

from repro.cc.bbr import Bbr, BbrMode
from repro.cc.bbr2 import Bbr2

from tests.helpers import MSS, make_transfer


class TestBbrStateMachine:
    def test_startup_to_drain_to_probe_bw(self):
        bench = make_transfer(cc="bbr", size=4000 * MSS, rate=12_500_000,
                              rtt=0.05, buffer_bdp=3.0)
        cc = bench.cc
        modes = []

        orig = cc.on_ack

        def wrapped(ack):
            orig(ack)
            if not modes or modes[-1] != cc.mode:
                modes.append(cc.mode)

        cc.on_ack = wrapped
        bench.run()
        assert bench.transfer.completed
        assert modes[0] is BbrMode.STARTUP
        # DRAIN can be transited within a single ACK when inflight is
        # already at/below BDP, so only its outcome is asserted.
        assert BbrMode.PROBE_BW in modes
        assert cc.filled_pipe

    def test_bw_estimate_near_bottleneck(self):
        bench = make_transfer(cc="bbr", size=4000 * MSS, rate=12_500_000,
                              rtt=0.05, buffer_bdp=3.0).run()
        assert bench.cc.bottleneck_bw == pytest.approx(12_500_000, rel=0.25)

    def test_rtprop_near_path_rtt(self):
        bench = make_transfer(cc="bbr", size=2000 * MSS, rtt=0.08,
                              buffer_bdp=3.0).run()
        assert bench.cc.rtprop == pytest.approx(0.08, rel=0.1)

    def test_paces_in_steady_state(self):
        bench = make_transfer(cc="bbr", size=3000 * MSS, buffer_bdp=3.0)
        bench.sim.run(until=2.0)
        assert bench.cc.pacing_rate is not None

    def test_inflight_bounded_after_startup(self):
        """Post-drain, inflight should hover near cwnd_gain * BDP."""
        bench = make_transfer(cc="bbr", size=8000 * MSS, rate=12_500_000,
                              rtt=0.05, buffer_bdp=4.0).run()
        bdp = 12_500_000 * 0.05
        trace = bench.telemetry.flow(1)
        late = [v for t, v in trace.inflight
                if t > bench.transfer.fct * 0.6]
        assert late
        assert max(late) < 3.0 * bdp

    def test_completes_against_loss(self):
        import random
        from repro.net import LossModel
        bench = make_transfer(cc="bbr", size=1000 * MSS)
        bench.net.bottleneck_fwd.loss = LossModel(0.03, random.Random(5))
        bench.run()
        assert bench.transfer.completed


class TestBbr2:
    def test_inflight_hi_set_on_loss(self):
        bench = make_transfer(cc="bbr2", size=3000 * MSS,
                              buffer_bdp=0.3).run()
        assert bench.transfer.completed
        if bench.telemetry.flow(1).drops > 0:
            assert bench.cc.inflight_hi is not None

    def test_less_aggressive_than_v1_under_shallow_buffer(self):
        drops = {}
        for name in ("bbr", "bbr2"):
            bench = make_transfer(cc=name, size=6000 * MSS, rate=12_500_000,
                                  rtt=0.1, buffer_bdp=0.3).run()
            assert bench.transfer.completed
            drops[name] = bench.telemetry.flow(1).drops
        assert drops["bbr2"] <= drops["bbr"]

    def test_clean_path_same_speed_as_v1(self):
        fct = {}
        for name in ("bbr", "bbr2"):
            bench = make_transfer(cc=name, size=2000 * MSS,
                                  buffer_bdp=3.0).run()
            fct[name] = bench.transfer.fct
        assert fct["bbr2"] == pytest.approx(fct["bbr"], rel=0.2)


class TestBbrVsCubicShape:
    def test_bbr_loss_tolerant_vs_cubic(self):
        """Fig. 2's premise: random loss hurts CUBIC far more than BBR."""
        import random
        from repro.net import LossModel
        fct = {}
        for name in ("bbr", "cubic"):
            bench = make_transfer(cc=name, size=2000 * MSS, rate=12_500_000,
                                  rtt=0.1)
            bench.net.bottleneck_fwd.loss = LossModel(0.01, random.Random(9))
            bench.run()
            assert bench.transfer.completed
            fct[name] = bench.transfer.fct
        assert fct["bbr"] < fct["cubic"]
