"""Property-style invariants checked across randomized seeds.

These tests run short transfers under a tracing sink and assert
*structural* properties that must hold for every parameterisation — the
kind of contract a single golden trace cannot pin.  Each seed drives a
``random.Random`` that picks the path parameters, so 20 seeds cover 20
distinct RTT/buffer combinations.
"""

import random

import pytest

from tests.helpers import MSS, make_transfer
from repro.obs import records as obsrec
from repro.obs.sinks import MemorySink, RingBufferSink, TraceSink
from repro.obs.tracer import Observability, Tracer, tracing

SEEDS = list(range(20))


def _random_path(seed, salt=0):
    rng = random.Random(seed ^ salt)
    return {"rtt": rng.uniform(0.02, 0.2),
            "buffer_bdp": rng.uniform(0.3, 2.0)}


def _run(cc, seed, sink=None, salt=0, **kwargs):
    sink = sink if sink is not None else MemorySink()
    params = {**_random_path(seed, salt), **kwargs}
    bench = make_transfer(cc, obs=tracing(sink), size=150 * MSS,
                          **params).run()
    assert bench.transfer.completed
    return bench, sink


@pytest.mark.parametrize("seed", SEEDS)
def test_pacing_gaps_never_negative(seed):
    """Pacer departures are serialized: inter-send gaps are >= 0."""
    bench, _ = _run("cubic+suss", seed)
    pacer = bench.sender.pacer
    if pacer.departures > 1:
        assert pacer.min_gap >= 0.0


@pytest.mark.parametrize("seed", SEEDS)
def test_delivered_bytes_registry_matches_receiver(seed):
    """The per-flow rx counter equals the receiver's own accounting."""
    sink = RingBufferSink(capacity=64)  # bounded memory across 20 runs
    bench, sink = _run("cubic", seed, sink=sink, salt=0x1234)
    obs = bench.sim.obs
    assert obs.metrics.value("tcp.delivered_bytes_rx", flow=1) == \
        bench.receiver.bytes_delivered
    assert bench.receiver.bytes_delivered == bench.sender.total_bytes
    # the ring buffer really bounded the cost
    assert len(sink) <= 64 and sink.emitted > 64


class _CwndCheckSink:
    """Validating sink: every cc.cwnd record must match live sender state.

    Trace records are emitted synchronously, so at emission time the
    record's cwnd field and the congestion controller's cwnd must agree.
    """

    def __init__(self):
        self.sender = None
        self.checked = 0

    def emit(self, record):
        if record.kind == obsrec.CC_CWND:
            assert record.fields["cwnd"] == self.sender.cc.cwnd
            self.checked += 1

    def close(self):
        pass


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_cwnd_trace_matches_sender_state(seed):
    sink = _CwndCheckSink()
    assert isinstance(sink, TraceSink)  # duck-typed sinks satisfy the protocol
    obs = Observability(tracer=Tracer(sink))
    bench = make_transfer("cubic", obs=obs, size=150 * MSS,
                          **_random_path(seed, salt=0x777))
    sink.sender = bench.sender  # attach before the simulation runs
    bench.run()
    assert bench.transfer.completed
    assert sink.checked > 0


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_send_recv_drop_conservation(seed):
    """Every data packet sent is either delivered to a host or dropped."""
    bench, sink = _run("cubic", seed, salt=0x5EED)
    sends = len(sink.by_kind(obsrec.PKT_SEND))
    recvs = sum(1 for r in sink.by_kind(obsrec.PKT_RECV)
                if r.fields["ptype"] == "DATA")
    drops = sum(r.fields.get("count", 1)
                for r in sink.by_kind(obsrec.PKT_DROP))
    assert sends == recvs + drops
