"""Unit tests for repro.obs.sinks and the TraceRecord encoding."""

import hashlib
import io
import json

import pytest
from hypothesis import given, strategies as st

from repro.obs.records import ALL_KINDS, TraceRecord, parse_kinds
from repro.obs.sinks import (
    DigestSink,
    JsonlSink,
    MemorySink,
    RingBufferSink,
    TeeSink,
    TraceSink,
)


def rec(i, kind="pkt.send", flow=1, **fields):
    return TraceRecord(float(i), kind, flow, fields)


# ----------------------------------------------------------------------
# TraceRecord encoding
# ----------------------------------------------------------------------
class TestTraceRecord:
    def test_to_line_is_canonical_json(self):
        line = TraceRecord(1.25, "cc.cwnd", 3, {"cwnd": 14480},
                           eid=7, parent_eid=5).to_line()
        assert line == ('{"cwnd":14480,"eid":7,"flow":3,"kind":"cc.cwnd",'
                        '"peid":5,"t":1.25}')

    def test_provenance_defaults_to_root(self):
        record = TraceRecord(0.0, "pkt.send", 1)
        assert (record.eid, record.parent_eid) == (0, 0)
        assert '"eid":0' in record.to_line() and '"peid":0' in record.to_line()

    def test_provenance_roundtrips_and_compares(self):
        original = TraceRecord(0.5, "pkt.send", 1, {"seq": 0}, eid=12,
                               parent_eid=9)
        parsed = TraceRecord.from_line(original.to_line())
        assert (parsed.eid, parsed.parent_eid) == (12, 9)
        assert parsed == original
        assert parsed != TraceRecord(0.5, "pkt.send", 1, {"seq": 0}, eid=12,
                                     parent_eid=8)

    def test_roundtrip_through_line(self):
        original = TraceRecord(0.5, "pkt.send", 1, {"seq": 0, "retx": False})
        assert TraceRecord.from_line(original.to_line()) == original

    def test_float_repr_exactness(self):
        # json.dumps uses repr-exact floats: parsing back is lossless.
        t = 0.1 + 0.2
        parsed = json.loads(TraceRecord(t, "tcp.rtt", 1, {"rtt": t}).to_line())
        assert parsed["t"] == t and parsed["rtt"] == t

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(0.0, "tcp.rtt", 1, {"rtt": float("nan")}).to_line()

    def test_equality_ignores_nothing(self):
        a = rec(1, seq=0)
        assert a == rec(1, seq=0)
        assert a != rec(1, seq=1)
        assert a != rec(2, seq=0)

    def test_parse_kinds_validates(self):
        assert parse_kinds("pkt.send, cc.cwnd") == {"pkt.send", "cc.cwnd"}
        with pytest.raises(ValueError, match="unknown trace kind"):
            parse_kinds("pkt.send,bogus.kind")

    def test_all_kinds_are_namespaced(self):
        assert all("." in kind for kind in ALL_KINDS)


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
class TestMemorySink:
    def test_collects_and_filters(self):
        sink = MemorySink()
        sink.emit(rec(1, "pkt.send", flow=1))
        sink.emit(rec(2, "pkt.recv", flow=2))
        sink.emit(rec(3, "pkt.send", flow=2))
        assert len(sink) == 3
        assert [r.time for r in sink.by_kind("pkt.send")] == [1.0, 3.0]
        assert [r.time for r in sink.by_flow(2)] == [2.0, 3.0]
        sink.close()  # no-op, must not raise

    def test_satisfies_protocol(self):
        assert isinstance(MemorySink(), TraceSink)
        assert isinstance(JsonlSink(io.StringIO()), TraceSink)
        assert isinstance(DigestSink(), TraceSink)


class TestRingBufferSink:
    def test_keeps_only_newest(self):
        sink = RingBufferSink(capacity=3)
        for i in range(10):
            sink.emit(rec(i))
        assert len(sink) == 3
        assert [r.time for r in sink.records] == [7.0, 8.0, 9.0]
        assert sink.emitted == 10
        assert sink.dropped == 7

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)

    def test_by_kind_works_via_records_property(self):
        sink = RingBufferSink(capacity=2)
        sink.emit(rec(1, "pkt.send"))
        sink.emit(rec(2, "pkt.recv"))
        assert len(sink.by_kind("pkt.recv")) == 1

    def test_exact_wrap_has_no_drops(self):
        # Filling to exactly capacity must not count any drop; the
        # drop counter starts at the capacity+1'th emit.
        sink = RingBufferSink(capacity=4)
        for i in range(4):
            sink.emit(rec(i))
        assert len(sink) == 4 and sink.dropped == 0
        sink.emit(rec(4))
        assert len(sink) == 4 and sink.dropped == 1
        assert [r.time for r in sink.records] == [1.0, 2.0, 3.0, 4.0]

    def test_drain_returns_oldest_first_and_empties(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit(rec(i))
        drained = sink.drain()
        assert [r.time for r in drained] == [2.0, 3.0, 4.0]
        assert len(sink) == 0 and sink.records == []
        # lifetime counters survive the drain
        assert sink.emitted == 5
        assert sink.dropped == 2

    def test_drain_does_not_fake_drops(self):
        # Regression: dropped used to be derived as emitted - len, which
        # jumps to `emitted` after a drain empties the buffer.
        sink = RingBufferSink(capacity=8)
        for i in range(3):
            sink.emit(rec(i))
        assert sink.drain() and sink.dropped == 0
        sink.emit(rec(99))
        assert sink.dropped == 0 and len(sink) == 1

    @given(capacity=st.integers(min_value=1, max_value=64),
           n=st.integers(min_value=0, max_value=200),
           drain_at=st.integers(min_value=0, max_value=200))
    def test_ring_invariants_random_capacities(self, capacity, n, drain_at):
        sink = RingBufferSink(capacity=capacity)
        drained = []
        for i in range(n):
            sink.emit(rec(i))
            if i == drain_at:
                drained = sink.drain()
                assert len(sink) == 0
        in_ring = [r.time for r in sink.records]
        # contents: the newest min(pending, capacity) records, in order
        start = drain_at + 1 if drain_at < n else 0
        pending = list(range(start, n)) if drained else list(range(n))
        assert in_ring == [float(i) for i in pending[-capacity:]]
        assert len(sink) == min(len(pending), capacity)
        # conservation: every record offered is in the ring, drained,
        # or counted as dropped
        assert sink.emitted == n
        assert sink.dropped == n - len(sink) - len(drained)


class TestJsonlSink:
    def test_writes_one_line_per_record(self):
        out = io.StringIO()
        sink = JsonlSink(out)
        sink.emit(rec(1, seq=0))
        sink.emit(rec(2, seq=1448))
        sink.close()
        lines = out.getvalue().splitlines()
        assert len(lines) == 2 and sink.lines == 2
        assert json.loads(lines[1])["seq"] == 1448

    def test_path_target_is_lazily_opened(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        assert not path.exists()  # nothing emitted yet
        sink.emit(rec(1))
        sink.close()
        assert path.read_text().count("\n") == 1
        # closing an unused path sink never creates the file
        unused = JsonlSink(str(tmp_path / "never.jsonl"))
        unused.close()
        assert not (tmp_path / "never.jsonl").exists()


class TestDigestSink:
    def test_digest_matches_hashing_the_jsonl_file(self, tmp_path):
        records = [rec(i, seq=i * 1448) for i in range(20)]
        path = tmp_path / "t.jsonl"
        jsonl = JsonlSink(str(path))
        digest = DigestSink()
        for r in records:
            jsonl.emit(r)
            digest.emit(r)
        jsonl.close()
        assert digest.records == 20
        assert digest.digest() == hashlib.sha256(path.read_bytes()).hexdigest()

    def test_digest_readable_mid_stream(self):
        sink = DigestSink()
        empty = sink.digest()
        sink.emit(rec(1))
        assert sink.digest() != empty


class TestTeeSink:
    def test_replicates_to_all(self):
        a, b = MemorySink(), DigestSink()
        tee = TeeSink([a, b])
        tee.emit(rec(1))
        tee.emit(rec(2))
        tee.close()
        assert len(a) == 2 and b.records == 2

    def test_requires_at_least_one_sink(self):
        with pytest.raises(ValueError):
            TeeSink([])
