"""Unit tests for netem-style impairment models."""

import random

import pytest

from repro.net import (
    ConstantBandwidth,
    JitterModel,
    LossModel,
    RandomWalkBandwidth,
    SteppedBandwidth,
)


class TestConstantBandwidth:
    def test_rate_is_constant(self):
        bw = ConstantBandwidth(1e6)
        assert bw.rate_at(0.0) == bw.rate_at(100.0) == 1e6
        assert bw.mean_rate() == 1e6

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantBandwidth(0)
        with pytest.raises(ValueError):
            ConstantBandwidth(-125_000)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="positive and finite"):
            ConstantBandwidth(float("nan"))
        with pytest.raises(ValueError, match="positive and finite"):
            ConstantBandwidth(float("inf"))


class TestSteppedBandwidth:
    def test_steps_apply_in_order(self):
        bw = SteppedBandwidth([(0.0, 100.0), (10.0, 50.0)])
        assert bw.rate_at(5.0) == 100.0
        assert bw.rate_at(10.0) == 50.0
        assert bw.rate_at(99.0) == 50.0

    def test_unsorted_steps_accepted(self):
        bw = SteppedBandwidth([(10.0, 50.0), (0.0, 100.0)])
        assert bw.rate_at(0.0) == 100.0

    def test_must_cover_time_zero(self):
        with pytest.raises(ValueError):
            SteppedBandwidth([(5.0, 100.0)])

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            SteppedBandwidth([(0.0, -1.0)])

    def test_rejects_nonfinite_rate(self):
        with pytest.raises(ValueError, match="positive and finite"):
            SteppedBandwidth([(0.0, float("nan"))])
        with pytest.raises(ValueError, match="positive and finite"):
            SteppedBandwidth([(0.0, float("inf"))])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SteppedBandwidth([])


class TestRandomWalkBandwidth:
    def test_stays_within_span(self):
        bw = RandomWalkBandwidth(1000.0, span=0.4, hold_time=0.1,
                                 rng=random.Random(1))
        rates = [bw.rate_at(t * 0.05) for t in range(500)]
        assert all(600.0 <= r <= 1400.0 for r in rates)

    def test_deterministic_for_seed(self):
        a = RandomWalkBandwidth(1000.0, rng=random.Random(7))
        b = RandomWalkBandwidth(1000.0, rng=random.Random(7))
        ts = [i * 0.3 for i in range(50)]
        assert [a.rate_at(t) for t in ts] == [b.rate_at(t) for t in ts]

    def test_holds_within_epoch(self):
        bw = RandomWalkBandwidth(1000.0, hold_time=1.0, rng=random.Random(3))
        assert bw.rate_at(0.1) == bw.rate_at(0.9)

    def test_actually_varies(self):
        bw = RandomWalkBandwidth(1000.0, span=0.4, hold_time=0.1,
                                 rng=random.Random(5))
        rates = {bw.rate_at(t * 0.2) for t in range(100)}
        assert len(rates) > 10

    def test_mean_rate_is_base(self):
        bw = RandomWalkBandwidth(1234.0, rng=random.Random(0))
        assert bw.mean_rate() == 1234.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RandomWalkBandwidth(0.0)
        with pytest.raises(ValueError):
            RandomWalkBandwidth(1.0, span=1.0)
        with pytest.raises(ValueError):
            RandomWalkBandwidth(1.0, hold_time=0.0)
        with pytest.raises(ValueError, match="positive and finite"):
            RandomWalkBandwidth(float("nan"))
        with pytest.raises(ValueError, match="positive and finite"):
            RandomWalkBandwidth(float("-inf"))

    def test_requires_injected_rng(self):
        """A bandwidth walk is always stochastic: no silent default seed."""
        with pytest.raises(ValueError, match="injected random.Random"):
            RandomWalkBandwidth(1000.0)


class TestJitterModel:
    def test_zero_jitter_is_zero(self):
        jm = JitterModel(0.0)
        assert jm.sample(1.0) == 0.0

    def test_samples_bounded(self):
        jm = JitterModel(0.005, rng=random.Random(2))
        samples = [jm.sample(i * 0.01) for i in range(1000)]
        assert all(0.0 <= s <= 0.020 for s in samples)

    def test_correlated_over_short_times(self):
        """Consecutive packets see nearly the same delay offset."""
        jm = JitterModel(0.010, rng=random.Random(4), tau=0.1)
        jm.sample(0.0)
        a = jm.sample(1.0)
        b = jm.sample(1.0001)
        assert abs(a - b) < 0.004

    def test_deterministic_for_seed(self):
        a = JitterModel(0.005, rng=random.Random(9))
        b = JitterModel(0.005, rng=random.Random(9))
        ts = [i * 0.02 for i in range(100)]
        assert [a.sample(t) for t in ts] == [b.sample(t) for t in ts]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            JitterModel(-0.001)
        with pytest.raises(ValueError):
            JitterModel(0.001, tau=0.0, rng=random.Random(1))

    def test_requires_rng_when_stochastic(self):
        """Non-zero jitter samples the rng, so it must be injected."""
        with pytest.raises(ValueError, match="injected random.Random"):
            JitterModel(0.005)


class TestLossModel:
    def test_zero_loss_never_drops(self):
        lm = LossModel(0.0)
        assert not any(lm.drops() for _ in range(1000))

    def test_loss_rate_approximate(self):
        lm = LossModel(0.1, rng=random.Random(11))
        drops = sum(lm.drops() for _ in range(20000))
        assert 0.08 < drops / 20000 < 0.12

    def test_rejects_invalid_rate(self):
        with pytest.raises(ValueError):
            LossModel(1.0)
        with pytest.raises(ValueError):
            LossModel(-0.1)

    def test_requires_rng_when_stochastic(self):
        """Non-zero loss samples the rng, so it must be injected."""
        with pytest.raises(ValueError, match="injected random.Random"):
            LossModel(0.1)
