"""Tests for the experiment harnesses (fast, scaled-down configurations).

Each harness is exercised end-to-end with cheap parameters: the assertions
check the *shape* the paper reports, not absolute numbers.
"""

import pytest

from repro.experiments import (
    ablation_btlbw,
    ablation_kmax,
    fig01_motivation,
    fig09_cwnd_rtt,
    fig10_delivered,
    fig11_12_fct,
    fig13_large_flow,
    fig14_loss,
    fig17_18_all_scenarios,
)
from repro.experiments.report import pct, render_series, render_table
from repro.experiments.runner import fct_summary, run_single_flow
from repro.workloads import MB, get_scenario


class TestRunner:
    def test_single_flow_completes(self):
        res = run_single_flow(get_scenario("google-tokyo", "wired"),
                              "cubic", 1 * MB, seed=0)
        assert res.completed and res.fct is not None
        assert res.telemetry is None  # collect=False by default

    def test_collect_gives_series(self):
        res = run_single_flow(get_scenario("google-tokyo", "wired"),
                              "cubic", 1 * MB, seed=0, collect=True)
        assert res.telemetry is not None
        assert not res.telemetry.flow(1).delivered.empty

    def test_fct_summary_seeds_vary_wireless(self):
        s = fct_summary(get_scenario("google-tokyo", "4g"), "cubic",
                        1 * MB, iterations=3)
        assert s.n == 3 and s.mean > 0

    def test_seed_reproducibility(self):
        sc = get_scenario("google-tokyo", "4g")
        a = run_single_flow(sc, "cubic+suss", 1 * MB, seed=5).fct
        b = run_single_flow(sc, "cubic+suss", 1 * MB, seed=5).fct
        assert a == b

    def test_different_seeds_differ_on_wireless(self):
        sc = get_scenario("google-tokyo", "4g")
        a = run_single_flow(sc, "cubic", 1 * MB, seed=1).fct
        b = run_single_flow(sc, "cubic", 1 * MB, seed=2).fct
        assert a != b


class TestReport:
    def test_render_table(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["x", "yy"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_series(self):
        out = render_series("s", [(1, 2.0)], "t", "v")
        assert "s" in out and "2" in out

    def test_pct(self):
        assert pct(0.256) == "+25.6%"
        assert pct(-0.05) == "-5.0%"


class TestFig1:
    def test_slow_start_deficit_positive(self):
        results = fig01_motivation.run(size_bytes=25 * MB, ccas=("cubic",))
        r = results["cubic"]
        assert r.theta > 0
        # Early on, slow start delivers well under the optimal line.
        assert r.early_deficit > 0.2


class TestFig9and10:
    @pytest.fixture(scope="class")
    def results9(self):
        return fig09_cwnd_rtt.run(size_bytes=12 * MB)

    def test_suss_ramps_faster(self, results9):
        suss = results9["cubic+suss"]
        plain = results9["cubic"]
        assert suss.time_to_exit_cwnd < plain.time_to_exit_cwnd

    def test_exit_cwnd_similar(self, results9):
        suss = results9["cubic+suss"]
        plain = results9["cubic"]
        assert suss.exit_cwnd == pytest.approx(plain.exit_cwnd, rel=0.6)

    def test_no_rtt_blowup(self, results9):
        assert results9["cubic+suss"].early_rtt_inflation < 2.0

    def test_delivered_ratio_exceeds_one(self):
        results = fig10_delivered.run(size_bytes=12 * MB)
        ratio = fig10_delivered.delivered_ratio_at(results, 1.5)
        assert ratio > 1.2
        assert "Fig. 10" in fig10_delivered.format_report(results)


class TestFig11:
    def test_sweep_shape(self):
        sweep = fig11_12_fct.run_scenario(
            get_scenario("google-tokyo", "wired"),
            sizes=(1 * MB, 2 * MB), iterations=1)
        assert sweep.improvement_at(1 * MB) > 0.15
        report = fig11_12_fct.format_report({"wired": sweep})
        assert "Fig. 11/12" in report


class TestFig13:
    def test_improvement_tapers(self):
        result = fig13_large_flow.run(size_bytes=30 * MB,
                                      milestones_mb=(1, 5, 15, 30))
        assert result.early_improvement > result.late_improvement
        assert result.early_improvement > 0.15
        assert "Fig. 13" in fig13_large_flow.format_report(result)


class TestFig14:
    def test_suss_does_not_increase_loss(self):
        result = fig14_loss.run(sizes=(2 * MB, 6 * MB), iterations=2)
        for size in result.sizes:
            off = result.loss["cubic"][size].mean
            on = result.loss["cubic+suss"][size].mean
            assert on <= off + 0.002
        assert "Fig. 14" in fig14_loss.format_report(result)

    def test_off_curve_decreases_with_size(self):
        result = fig14_loss.run(sizes=(2 * MB, 16 * MB), iterations=2,
                                schemes=("cubic",))
        small = result.loss["cubic"][2 * MB].mean
        large = result.loss["cubic"][16 * MB].mean
        assert large <= small


class TestFig17_18:
    def test_submatrix_runs(self):
        rows = fig17_18_all_scenarios.run_matrix(
            servers=("google-tokyo",), links=("wired", "wifi"),
            sizes=(1 * MB,), iterations=1)
        assert len(rows) == 2
        for row in rows:
            assert row.suss_beats_cubic
        beats_cubic, beats_bbr, total = \
            fig17_18_all_scenarios.win_counts(rows)
        assert total == 2 and beats_cubic == 2
        assert "Fig. 18" in fig17_18_all_scenarios.format_fct_report(rows)
        assert "Fig. 17" in fig17_18_all_scenarios.format_loss_report(rows)


class TestAblations:
    def test_kmax_report(self):
        results = ablation_kmax.run(
            scenarios=(get_scenario("google-tokyo", "wired"),),
            size=1 * MB, iterations=1)
        assert results[0].improvement_over_cubic("cubic+suss") > 0
        assert "k_max" in ablation_kmax.format_report(results)

    def test_btlbw_drop_is_safe(self):
        results = ablation_btlbw.run(drop_times=(0.6,), size=3 * MB, seed=1)
        r = results[0]
        # SUSS must not lose meaningfully more than plain CUBIC under a
        # mid-ramp bandwidth drop (Appendix B).
        assert r.loss_regression <= 0.01
        assert "Appendix B" in ablation_btlbw.format_report(results)
