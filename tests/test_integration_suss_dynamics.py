"""Integration tests: SUSS round dynamics against the paper's Fig. 4-6.

On an ideal large-BDP path every early round satisfies Conditions 1-2, so
the window sequence should follow the paper's accelerated example:
``cwnd: iw -> 4iw -> 16iw -> ...`` with the blue (clocked) part doubling
per round.
"""

import pytest

from repro.cc import create

from tests.helpers import MSS, make_transfer


def ideal_bench(size=12_000 * MSS):
    """1 Gbit/s, 200 ms: BDP ~= 17k segments, conditions always hold."""
    return make_transfer(cc="cubic+suss", size=size, rate=125_000_000,
                         rtt=0.2, buffer_bdp=1.0)


class TestFig6Dynamics:
    @pytest.fixture(scope="class")
    def bench(self):
        bench = ideal_bench()
        cc = bench.cc
        bench.round_cwnds = {}
        orig = cc.on_round_start

        def wrapped(now, idx):
            bench.round_cwnds[idx] = cc.cwnd
            orig(now, idx)

        cc.on_round_start = wrapped
        return bench.run()

    def test_every_early_round_quadruples(self, bench):
        growth = dict(bench.cc.growth_history)
        assert growth[2] == 4
        assert growth[3] == 4
        assert growth[4] == 4

    def test_cwnd_sequence_follows_fig4(self, bench):
        """cwnd at round starts: iw, 4iw, 16iw, 64iw (G=4 throughout)."""
        cwnds = bench.round_cwnds
        iw = 10 * MSS
        assert cwnds[2] == pytest.approx(1 * iw, rel=0.05)
        assert cwnds[3] == pytest.approx(4 * iw, rel=0.10)
        assert cwnds[4] == pytest.approx(16 * iw, rel=0.10)
        assert cwnds[5] == pytest.approx(64 * iw, rel=0.15)

    def test_no_loss_on_ideal_path(self, bench):
        assert bench.telemetry.flow(1).drops == 0
        assert bench.sender.retransmissions == 0

    def test_acceleration_beats_doubling_exponent(self, bench):
        """Data delivered grows ~4x per round instead of 2x: the flow
        finishes in roughly half the rounds CUBIC needs."""
        plain = make_transfer(cc="cubic", size=12_000 * MSS,
                              rate=125_000_000, rtt=0.2,
                              buffer_bdp=1.0).run()
        assert bench.sender.round_index < plain.sender.round_index
        assert bench.transfer.fct < plain.transfer.fct * 0.75


class TestBlueTrainStructure:
    def test_blue_part_doubles_per_round(self):
        bench = ideal_bench()
        cc = bench.cc
        blues = []
        orig = cc.on_round_start

        def wrapped(now, idx):
            orig(now, idx)
            blues.append(cc._prev_blue_end - cc._prev_blue_start)

        cc.on_round_start = wrapped
        bench.run()
        # Skip the first entry (round 1 = iw); each blue part then doubles
        # while acceleration is active.
        for earlier, later in zip(blues[:3], blues[1:4]):
            assert later == pytest.approx(2 * earlier, rel=0.05)

    def test_plan_guard_positive_on_ideal_path(self):
        bench = ideal_bench().run()
        assert bench.cc.last_plan is not None
        assert bench.cc.last_plan.guard > 0


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        results = []
        for _ in range(2):
            bench = ideal_bench(size=3000 * MSS).run()
            results.append((bench.transfer.fct,
                            bench.sender.data_packets_sent,
                            tuple(bench.cc.growth_history)))
        assert results[0] == results[1]
