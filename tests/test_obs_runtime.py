"""Tests for repro.obs.runtime — spans, resource accounting, status.

The run-level telemetry collector must (a) keep span lineage across
retries, (b) aggregate live counters/gauges/histograms correctly,
(c) emit every span as a ``campaign.span`` trace record when an
Observability hub is attached, and (d) rewrite ``status.json``
atomically so ``repro top`` always sees a parseable snapshot.
"""

import json
import types

import pytest

from repro.obs import tracing
from repro.obs.records import CAMPAIGN_SPAN
from repro.obs.runtime import (
    RunTelemetry,
    add_engine_events,
    add_flows_modelled,
    counters,
    resource_delta,
    sample_resources,
)
from repro.obs.sinks import MemorySink

HASH_A = "a" * 64
HASH_B = "b" * 64


def _result(job_hash, kind="single_flow", label="job", value=None):
    """Duck-typed CampaignResult: spec.{job_hash,kind,label} + value."""
    spec = types.SimpleNamespace(job_hash=job_hash, kind=kind, label=label)
    return types.SimpleNamespace(spec=spec, value=value or {"x": 1})


class TestProcessCounters:
    def test_add_accumulates(self):
        before = counters.engine_events
        add_engine_events(100)
        add_engine_events(23)
        assert counters.engine_events == before + 123

    def test_flows_counter_independent(self):
        before = counters.flows_modelled
        add_flows_modelled(7)
        assert counters.flows_modelled == before + 7


class TestResourceSampling:
    def test_sample_fields(self):
        sample = sample_resources()
        assert sample.cpu_user >= 0.0
        assert sample.max_rss_kb > 0  # Linux always reports ru_maxrss

    def test_delta_counts_work_between_samples(self):
        before = sample_resources()
        add_engine_events(50)
        delta = resource_delta(before, sample_resources())
        assert delta["engine_events"] == 50
        assert delta["cpu_user"] >= 0.0
        # RSS is a high-water mark, reported absolute, never differenced.
        assert delta["max_rss_kb"] >= before.max_rss_kb

    def test_delta_clamps_cpu_at_zero(self):
        sample = sample_resources()
        delta = resource_delta(sample, sample)
        assert delta["cpu_user"] == 0.0 and delta["cpu_system"] == 0.0


class TestSpans:
    def test_span_id_and_shape(self):
        t = RunTelemetry()
        t.start(total=1)
        span = t.record_span(HASH_A, "single_flow", "lbl", status="ok",
                             attempt=1, worker=42, queue_wait=0.25,
                             exec_time=1.5)
        assert span.span_id == f"{HASH_A[:12]}#1"
        d = span.to_dict()
        assert d["span"] == span.span_id
        assert d["worker"] == 42
        assert d["queue_wait"] == 0.25 and d["exec"] == 1.5
        assert "retry_of" not in d and "error" not in d

    def test_retry_lineage_chains_attempts(self):
        t = RunTelemetry()
        t.start(total=1)
        first = t.record_span(HASH_A, "single_flow", "lbl", status="retry",
                              attempt=1, exec_time=0.5, error="boom")
        second = t.record_span(HASH_A, "single_flow", "lbl", status="ok",
                               attempt=2, exec_time=0.4)
        assert first.retry_of is None
        assert second.retry_of == first.span_id
        # a different job's span does not inherit the chain
        other = t.record_span(HASH_B, "single_flow", "o", status="ok",
                              attempt=1)
        assert other.retry_of is None

    def test_spans_emitted_as_trace_records(self):
        sink = MemorySink()
        t = RunTelemetry(obs=tracing(sink))
        t.start(total=1)
        t.record_span(HASH_A, "single_flow", "lbl", status="ok", attempt=1)
        kinds = [r.kind for r in sink.records]
        assert kinds == [CAMPAIGN_SPAN]
        assert sink.records[0].fields["hash"] == HASH_A


class TestAggregation:
    def test_outcome_counters(self):
        t = RunTelemetry()
        t.start(total=4)
        t.record_span(HASH_A, "a", "1", status="ok", cached=True)
        t.record_span(HASH_B, "a", "2", status="ok", attempt=1,
                      exec_time=1.0)
        t.record_span("c" * 64, "b", "3", status="retry", attempt=1,
                      exec_time=0.5)
        t.record_span("c" * 64, "b", "3", status="failed", attempt=2,
                      exec_time=0.5, error="x")
        assert (t.cached, t.executed, t.failed, t.retries) == (1, 1, 1, 1)
        assert t.done == 3                       # retry is not a done job
        assert t.by_kind == {"a": 2, "b": 1}
        assert t.retry_seconds == 0.5
        # exec_total: ok 1.0 + failed 0.5; retry time lives in
        # retry_seconds only, cached spans add nothing.
        assert t.exec_total == pytest.approx(1.5)
        jobs = t.metrics.counter("run.jobs", status="cached")
        assert jobs.value == 1

    def test_cached_spans_do_not_enter_histograms(self):
        t = RunTelemetry()
        t.start(total=2)
        t.record_span(HASH_A, "a", "1", status="ok", cached=True)
        t.record_span(HASH_B, "a", "2", status="ok", attempt=1,
                      exec_time=0.02)
        hist = t.metrics.histogram("run.exec_seconds")
        assert hist.count == 1

    def test_eta_charges_retry_time_to_executed_jobs(self):
        """Regression for ETA drift under retries: a retried job's lost
        time must raise the per-job mean, and finished jobs (including
        the failed ones) must leave the remaining count."""
        t = RunTelemetry()
        t.start(total=4, workers=2)
        assert t.eta is None                     # nothing executed yet
        t.record_span(HASH_A, "a", "1", status="retry", attempt=1,
                      exec_time=1.0)
        t.record_span(HASH_A, "a", "1", status="ok", attempt=2,
                      exec_time=1.0)
        # mean = (exec 1.0 + retry 1.0) / 1 executed; 3 remain on 2 lanes
        assert t.eta == pytest.approx(2.0 * 3 / 2)

    def test_lane_accounting(self):
        t = RunTelemetry()
        t.start(total=3)
        t.record_span(HASH_A, "a", "one", status="ok", attempt=1,
                      worker=10, exec_time=1.0)
        t.record_span(HASH_B, "a", "two", status="ok", attempt=1,
                      worker=10, exec_time=2.0)
        t.record_span("c" * 64, "a", "three", status="ok", attempt=1)
        lanes = t.snapshot()["lanes"]
        assert lanes["10"]["jobs"] == 2
        assert lanes["10"]["busy"] == pytest.approx(3.0)
        assert lanes["10"]["last"] == "two"
        assert lanes["inline"]["jobs"] == 1

    def test_worker_resources_absorbed(self):
        t = RunTelemetry()
        t.start(total=2)
        t.record_span(HASH_A, "a", "1", status="ok", attempt=1,
                      resources={"cpu_user": 1.5, "cpu_system": 0.5,
                                 "max_rss_kb": 1000, "engine_events": 10,
                                 "flows_modelled": 0})
        t.record_span(HASH_B, "a", "2", status="ok", attempt=1,
                      resources={"cpu_user": 0.5, "cpu_system": 0.0,
                                 "max_rss_kb": 900, "engine_events": 5,
                                 "flows_modelled": 3})
        res = t.snapshot()["resources"]
        assert res["cpu_user"] == pytest.approx(2.0)
        assert res["max_rss_kb"] == 1000        # high-water, not a sum
        assert res["engine_events"] == 15
        assert res["flows_modelled"] == 3


class TestStatusFile:
    def test_atomic_write_and_reload(self, tmp_path):
        path = tmp_path / "status.json"
        t = RunTelemetry(tool="validate", status_path=str(path))
        t.start(total=2, workers=2)
        t.record_span(HASH_A, "a", "1", status="ok", attempt=1,
                      exec_time=0.1)
        t.write_status(force=True)
        status = json.loads(path.read_text())
        assert status["tool"] == "validate"
        assert status["total"] == 2 and status["done"] == 1
        assert not status["finished"]
        assert not list(tmp_path.glob("*.tmp.*"))  # no temp debris

    def test_throttle_skips_rapid_writes(self, tmp_path):
        path = tmp_path / "status.json"
        t = RunTelemetry(status_path=str(path), status_interval=3600.0)
        t.start(total=2)                          # forced initial write
        first = path.read_text()
        t.record_span(HASH_A, "a", "1", status="ok", attempt=1)
        assert path.read_text() == first          # throttled, not rewritten
        t.write_status(force=True)
        assert path.read_text() != first

    def test_no_status_path_is_a_noop(self):
        t = RunTelemetry()
        t.start(total=1)
        t.write_status(force=True)                # must not raise


class TestComplete:
    def test_captures_spec_order_and_finishes(self, tmp_path):
        path = tmp_path / "status.json"
        t = RunTelemetry(status_path=str(path))
        t.start(total=2)
        results = [_result(HASH_A, label="first", value={"v": 1}),
                   _result(HASH_B, label="second", value={"v": 2})]
        t.complete(results)
        assert [j["hash"] for j in t.jobs] == [HASH_A, HASH_B]
        assert t.values == [{"v": 1}, {"v": 2}]
        assert json.loads(path.read_text())["finished"] is True

    def test_execution_record_shape(self):
        t = RunTelemetry()
        t.start(total=1)
        t.record_span(HASH_A, "a", "1", status="ok", attempt=1)
        record = t.execution_record()
        assert set(record) == {"status", "spans"}
        assert record["status"]["schema"] == 1
        assert record["spans"][0]["hash"] == HASH_A
        json.dumps(record)                        # JSON-serialisable
