"""Tests for repro.validate.stats — pure-stdlib estimators."""

import random

import pytest

from repro.validate.stats import (
    bootstrap_ci_bca,
    cliffs_delta,
    mann_whitney_u,
    normal_ppf,
    permutation_test,
    regularized_incomplete_beta,
    t_cdf,
    t_interval,
    t_ppf,
)


class TestStudentT:
    # Reference quantiles from standard t tables.
    @pytest.mark.parametrize("p,df,expected", [
        (0.975, 10, 2.2281),
        (0.975, 4, 2.7764),
        (0.95, 9, 1.8331),
        (0.995, 30, 2.7500),
    ])
    def test_ppf_matches_tables(self, p, df, expected):
        assert t_ppf(p, df) == pytest.approx(expected, abs=1e-3)

    def test_cdf_symmetry(self):
        assert t_cdf(0.0, 7) == pytest.approx(0.5)
        assert t_cdf(1.5, 7) + t_cdf(-1.5, 7) == pytest.approx(1.0)

    def test_ppf_inverts_cdf(self):
        for p in (0.05, 0.3, 0.9):
            assert t_cdf(t_ppf(p, 12), 12) == pytest.approx(p, abs=1e-9)

    def test_large_df_approaches_normal(self):
        assert t_ppf(0.975, 10_000) == pytest.approx(normal_ppf(0.975),
                                                     abs=1e-3)

    def test_incomplete_beta_edges(self):
        assert regularized_incomplete_beta(2.0, 3.0, 0.0) == 0.0
        assert regularized_incomplete_beta(2.0, 3.0, 1.0) == 1.0
        # I_x(1, 1) is the uniform CDF.
        assert regularized_incomplete_beta(1.0, 1.0, 0.3) == \
            pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            t_ppf(0.0, 5)
        with pytest.raises(ValueError):
            t_cdf(1.0, 0)
        with pytest.raises(ValueError):
            normal_ppf(1.0)


class TestTInterval:
    def test_covers_the_mean(self):
        lo, hi = t_interval([9.8, 10.1, 10.0, 10.3, 9.9])
        assert lo < 10.02 < hi

    def test_known_value(self):
        # mean 2, sd 1, n 3: half-width = 4.3027 * 1/sqrt(3).
        lo, hi = t_interval([1.0, 2.0, 3.0])
        assert hi - lo == pytest.approx(2 * 4.3027 / 3 ** 0.5, abs=1e-3)

    def test_degenerate_inputs_give_point_interval(self):
        assert t_interval([5.0]) == (5.0, 5.0)
        assert t_interval([2.0, 2.0, 2.0]) == (2.0, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            t_interval([])
        with pytest.raises(ValueError):
            t_interval([1.0], confidence=1.0)


class TestBootstrapBca:
    def test_single_arm_mean(self):
        rng = random.Random(1)
        samples = [rng.gauss(10.0, 1.0) for _ in range(40)]
        lo, hi = bootstrap_ci_bca(
            [samples], lambda a: sum(a) / len(a), random.Random(2))
        assert lo < sum(samples) / len(samples) < hi
        assert hi - lo < 1.5

    def test_two_arm_relative_effect(self):
        baseline = [10.0, 10.5, 9.5, 10.2, 9.8]
        treatment = [7.0, 7.4, 6.6, 7.2, 6.8]

        def effect(b, t):
            mb, mt = sum(b) / len(b), sum(t) / len(t)
            return (mb - mt) / mb

        lo, hi = bootstrap_ci_bca([baseline, treatment], effect,
                                  random.Random(3))
        assert 0.2 < lo < 0.3 < hi < 0.4

    def test_deterministic_given_seed(self):
        arms = [[1.0, 2.0, 3.0, 4.0], [2.0, 3.0, 4.0, 5.0]]
        stat = lambda a, b: sum(b) / len(b) - sum(a) / len(a)
        ci1 = bootstrap_ci_bca(arms, stat, random.Random(7))
        ci2 = bootstrap_ci_bca(arms, stat, random.Random(7))
        assert ci1 == ci2

    def test_degenerate_distribution_gives_point_interval(self):
        # Seed-invariant experiments produce identical samples per arm.
        lo, hi = bootstrap_ci_bca(
            [[3.0, 3.0, 3.0], [1.0, 1.0, 1.0]],
            lambda a, b: sum(a) / len(a) - sum(b) / len(b),
            random.Random(4))
        assert (lo, hi) == (2.0, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci_bca([[]], lambda a: 0.0, random.Random(0))
        with pytest.raises(ValueError):
            bootstrap_ci_bca([[1.0]], lambda a: 0.0, random.Random(0),
                             n_resamples=5)


class TestMannWhitney:
    def test_clean_separation_small_n(self):
        # 3-vs-3 with full separation: the quick validation mode relies
        # on this clearing alpha = 0.05.
        result = mann_whitney_u([1.0, 1.1, 1.2], [2.0, 2.1, 2.2],
                                alternative="less")
        assert result.p_value < 0.05

    def test_u_statistic_value(self):
        # a entirely below b: U_a = 0; entirely above: U_a = n*m.
        assert mann_whitney_u([1, 2], [3, 4]).u == 0.0
        assert mann_whitney_u([3, 4], [1, 2]).u == 4.0

    def test_all_tied_is_p_one(self):
        result = mann_whitney_u([2.0, 2.0], [2.0, 2.0])
        assert result.p_value == 1.0
        assert result.z == 0.0

    def test_two_sided_larger_than_one_sided(self):
        a, b = [1.0, 1.5, 2.0, 2.5], [3.0, 3.5, 4.0, 4.5]
        one = mann_whitney_u(a, b, alternative="less").p_value
        two = mann_whitney_u(a, b, alternative="two-sided").p_value
        assert one < two

    def test_validation(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])
        with pytest.raises(ValueError):
            mann_whitney_u([1.0], [1.0], alternative="sideways")


class TestPermutationTest:
    def test_detects_separation(self):
        p = permutation_test([1.0, 1.2, 1.1, 0.9], [5.0, 5.2, 5.1, 4.9],
                             random.Random(5), alternative="two-sided")
        assert p < 0.05

    def test_identical_samples_not_significant(self):
        p = permutation_test([1.0, 2.0, 3.0], [1.0, 2.0, 3.0],
                             random.Random(6))
        assert p > 0.5

    def test_deterministic_given_seed(self):
        a, b = [1.0, 2.0, 4.0], [2.0, 3.0, 5.0]
        p1 = permutation_test(a, b, random.Random(8))
        p2 = permutation_test(a, b, random.Random(8))
        assert p1 == p2

    def test_never_exactly_zero(self):
        p = permutation_test([0.0] * 5, [100.0] * 5, random.Random(9),
                             n_resamples=100)
        assert p > 0.0


class TestCliffsDelta:
    def test_full_separation(self):
        assert cliffs_delta([1, 2, 3], [4, 5, 6]) == -1.0
        assert cliffs_delta([4, 5, 6], [1, 2, 3]) == 1.0

    def test_identical_is_zero(self):
        assert cliffs_delta([1, 2], [1, 2]) == 0.0

    def test_partial_overlap(self):
        assert cliffs_delta([1, 3], [2, 4]) == pytest.approx(-0.5)
