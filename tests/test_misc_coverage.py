"""Odds-and-ends coverage: counters, formatting, CLI experiment dispatch."""

import pytest

from repro.cli import main
from repro.experiments.report import _fmt
from repro.net import ConstantBandwidth, Link, Packet, PacketKind
from repro.sim import Simulator


class TestLinkCounters:
    def test_utilization_rate(self):
        sim = Simulator()

        class Sink:
            def receive(self, p):
                pass

        link = Link(sim, Sink(), ConstantBandwidth(1500.0), delay=0.0)
        link.send(Packet(flow_id=1, src="a", dst="b",
                         kind=PacketKind.DATA, payload=1448))
        sim.run()
        # 1500 B over 1 s of simulated time.
        assert link.utilization_rate() == pytest.approx(1500.0)

    def test_utilization_zero_at_time_zero(self):
        sim = Simulator()

        class Sink:
            def receive(self, p):
                pass

        link = Link(sim, Sink(), ConstantBandwidth(1.0), delay=0.0)
        assert link.utilization_rate() == 0.0


class TestSimulatorCounters:
    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        sim.cancel_event(drop)
        assert sim.pending_events == 1


class TestReportFormatting:
    def test_float_formats(self):
        assert _fmt(1.23456) == "1.235"
        assert _fmt(0.0001) == "1.000e-04"
        assert _fmt(123456.0) == "1.235e+05"
        assert _fmt(0.0) == "0"
        assert _fmt("text") == "text"
        assert _fmt(7) == "7"


class TestCliExperiments:
    def test_burstiness_dispatch(self, capsys):
        assert main(["experiment", "burstiness"]) == 0
        assert "queue pressure" in capsys.readouterr().out

    def test_delack_dispatch(self, capsys):
        assert main(["experiment", "delack"]) == 0
        assert "delayed ACK" in capsys.readouterr().out
