"""Unit + golden tests for repro.obs.causal (provenance chain walking)."""

import pytest

from repro.experiments import goldens
from repro.obs.causal import (
    CausalIndex,
    explain_event,
    find_record,
    record_summary,
    render_explanation,
)
from repro.obs.records import TraceRecord


def rec(t, kind, flow=1, eid=0, peid=0, **fields):
    return TraceRecord(t, kind, flow, fields, eid, peid)


def simple_chain():
    """send(1) -> recv(2) -> decision(3); plus an unrelated root record."""
    return [
        rec(0.0, "pkt.send", eid=1, peid=0, seq=0),
        rec(0.1, "pkt.recv", eid=2, peid=1, seq=0),
        rec(0.2, "suss.decision", eid=3, peid=2, verdict="accelerate"),
        rec(0.0, "campaign.job", flow=-1, eid=0, peid=0, label="x"),
    ]


class TestCausalIndex:
    def test_records_of_groups_by_eid(self):
        index = CausalIndex([rec(0.0, "pkt.send", eid=5, seq=0),
                             rec(0.0, "cc.cwnd", eid=5, cwnd=10)])
        assert len(index.records_of(5)) == 2
        assert index.records_of(99) == []

    def test_membership_and_eids(self):
        index = CausalIndex(simple_chain())
        assert 2 in index and 99 not in index
        assert index.eids() == [1, 2, 3]  # root (0) excluded

    def test_parent_of(self):
        index = CausalIndex(simple_chain())
        assert index.parent_of(3) == 2
        assert index.parent_of(1) == 0
        assert index.parent_of(42) is None

    def test_children_of(self):
        index = CausalIndex(simple_chain())
        assert index.children_of(1) == [2]
        assert index.children_of(2) == [3]
        assert index.children_of(3) == []

    def test_chain_walks_to_root(self):
        index = CausalIndex(simple_chain())
        assert index.chain(3) == [3, 2, 1]
        assert index.chain(1) == [1]

    def test_chain_of_unknown_eid_is_empty(self):
        assert CausalIndex(simple_chain()).chain(42) == []

    def test_chain_stops_at_missing_parent(self):
        # the middle event's records were filtered out of this trace
        index = CausalIndex([rec(0.0, "pkt.send", eid=1, peid=0),
                             rec(0.2, "suss.decision", eid=3, peid=2)])
        assert index.chain(3) == [3]

    def test_chain_survives_cycles(self):
        # corrupt provenance (a->b->a) must terminate, not loop
        index = CausalIndex([rec(0.0, "pkt.send", eid=1, peid=2),
                             rec(0.1, "pkt.recv", eid=2, peid=1)])
        assert index.chain(1) == [1, 2]

    def test_chain_respects_max_hops(self):
        records = [rec(float(i), "pkt.send", eid=i + 1, peid=i)
                   for i in range(10)]
        index = CausalIndex(records)
        assert len(index.chain(10, max_hops=3)) == 3


class TestExplain:
    def test_structured_shape(self):
        index = CausalIndex(simple_chain())
        info = explain_event(index, 3)
        assert info["target"] == 3 and info["found"] and info["complete"]
        assert [h["eid"] for h in info["chain"]] == [3, 2, 1]
        assert info["chain"][0]["records"][0]["kind"] == "suss.decision"
        assert info["chain"][0]["peid"] == 2

    def test_unknown_event(self):
        info = explain_event(CausalIndex(simple_chain()), 42)
        assert not info["found"] and info["chain"] == []
        assert "no records" in render_explanation(info)

    def test_incomplete_chain_marked(self):
        index = CausalIndex([rec(0.2, "suss.decision", eid=3, peid=2)])
        info = explain_event(index, 3)
        assert not info["complete"]
        assert "truncated" in render_explanation(info)

    def test_render_mentions_every_hop(self):
        text = render_explanation(explain_event(CausalIndex(simple_chain()),
                                                3))
        assert "event 3" in text and "event 2" in text and "event 1" in text
        assert "caused by" in text
        assert "verdict=accelerate" in text

    def test_record_summary_compact(self):
        line = record_summary(rec(0.5, "cc.cwnd", cwnd=14480, flight=0))
        assert line == "cc.cwnd flow=1 cwnd=14480 flight=0"


class TestFindRecord:
    def test_most_recent_at_or_before(self):
        records = simple_chain()
        hit = find_record(records, at=0.15)
        assert hit.kind == "pkt.recv"

    def test_flow_and_kind_filters(self):
        records = simple_chain()
        hit = find_record(records, kinds={"pkt.send"})
        assert hit.kind == "pkt.send"
        assert find_record(records, flow=7) is None

    def test_no_match_before_time(self):
        assert find_record(simple_chain(), at=-1.0) is None


# ----------------------------------------------------------------------
# the acceptance-criterion walk on the committed golden trace
# ----------------------------------------------------------------------
class TestGoldenCausality:
    @pytest.fixture(scope="class")
    def golden_index(self):
        lines = goldens.golden_stream("cubic+suss")
        return CausalIndex([TraceRecord.from_line(line) for line in lines])

    def test_accelerate_decision_chains_to_original_send(self, golden_index):
        """A SUSS accelerate decision must walk back through the clocking
        ACK and the DATA delivery to the event that sent the data."""
        accelerate = next(
            r for r in golden_index.records
            if r.kind == "suss.decision"
            and r.fields.get("verdict") == "accelerate")
        info = explain_event(golden_index, accelerate.eid)
        assert info["complete"], "chain must reach the root context"
        assert len(info["chain"]) >= 3
        kinds_per_hop = [{r["kind"] for r in hop["records"]}
                         for hop in info["chain"]]
        # hop 0: the decision fired while processing the clocking ACK
        assert "suss.decision" in kinds_per_hop[0]
        assert "pkt.recv" in kinds_per_hop[0]
        # some ancestor delivered DATA to the receiver...
        assert any(
            any(r["kind"] == "pkt.recv" and r.get("ptype") == "DATA"
                for r in hop["records"])
            for hop in info["chain"][1:])
        # ...and an earlier ancestor performed the original (non-retx) send
        assert any(
            any(r["kind"] == "pkt.send" and not r.get("retx")
                for r in hop["records"])
            for hop in info["chain"][1:])

    def test_every_golden_eid_chain_terminates(self, golden_index):
        for eid in golden_index.eids():
            chain = golden_index.chain(eid)
            assert chain, f"eid {eid} must be walkable"
            assert golden_index.parent_of(chain[-1]) == 0, (
                f"chain from {eid} must end at the root, "
                f"stopped at {chain[-1]}")
