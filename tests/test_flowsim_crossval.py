"""Cross-validation suite: packet tier vs analytical tier agreement.

The committed golden file (``tests/golden/flowsim_crossval.json``,
regenerable with ``repro flowsim --cross-validate --update-golden``)
pins the agreement numbers of the full validation matrix.  Two kinds of
drift fail loudly here:

* **model drift** — any change to the analytical closed forms moves
  ``analytical_fct`` off its recorded value (exact float equality, the
  models are deterministic), and
* **packet-tier drift** — any change to the simulator/TCP/SUSS stack
  moves the fixed-seed packet FCTs off their recorded values.

Agreement itself (every cell within the documented 15% band) is
asserted both on the recorded numbers and on the fresh run.
"""

import json
from pathlib import Path

import pytest

from repro.flowsim.crossval import (
    SCHEME_PAIRS,
    TOLERANCE_REL_MEDIAN_FCT,
    all_cases,
    default_cases,
    perturbed_cases,
    quick_cases,
    run_case,
    run_crossval,
)
from repro.flowsim.model import PathParams, create_model

GOLDEN = Path(__file__).parent / "golden" / "flowsim_crossval.json"


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN, "r", encoding="utf-8") as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def fresh_report():
    """One full both-tier run shared by the agreement/drift tests."""
    return run_crossval(all_cases())


class TestGoldenFile:
    def test_covers_full_matrix(self, golden):
        names = {c["name"] for c in golden["cases"]}
        assert names == {c.name for c in all_cases()}
        gated = {c["name"] for c in golden["cases"] if c["gated"]}
        assert gated == {c.name for c in default_cases()}
        assert len(gated) >= 6  # the acceptance floor

    def test_recorded_agreement_within_tolerance(self, golden):
        assert golden["tolerance"] == TOLERANCE_REL_MEDIAN_FCT
        assert golden["passed"] is True
        for case in golden["cases"]:
            if case["gated"]:
                assert case["rel_median_error"] <= golden["tolerance"], (
                    case["name"])

    def test_recorded_class_errors(self, golden):
        """The perturbed classes' quantified error is in the report."""
        assert set(golden["class_errors"]) == {"clean", "jitter",
                                               "bw_variation"}
        for cls, stats in golden["class_errors"].items():
            errs = [c["rel_median_error"] for c in golden["cases"]
                    if c["scenario_class"] == cls]
            assert stats["cells"] == len(errs)
            assert stats["max_rel_error"] == max(errs)
            assert stats["mean_rel_error"] == pytest.approx(
                sum(errs) / len(errs))

    def test_recorded_errors_consistent(self, golden):
        for case in golden["cases"]:
            expect = (abs(case["analytical_fct"] - case["packet_median"])
                      / case["packet_median"])
            assert case["rel_median_error"] == pytest.approx(expect)

    def test_scheme_pairing_recorded(self, golden):
        for case in golden["cases"]:
            assert case["model"] == SCHEME_PAIRS[case["cc"]]


class TestAnalyticalDrift:
    def test_analytical_fcts_match_golden_exactly(self, golden):
        """The closed forms are deterministic: any deviation from the
        recorded value is a model change and must re-record the golden
        file deliberately."""
        by_name = {c.name: c for c in all_cases()}
        for case in golden["cases"]:
            spec = by_name[case["name"]]
            path = PathParams.from_scenario(spec.scenario)
            est = create_model(spec.model).estimate(spec.size_bytes, path)
            assert est.fct == case["analytical_fct"], case["name"]


class TestPacketDrift:
    def test_packet_fcts_match_golden_exactly(self, golden, fresh_report):
        """Fixed seeds make the packet tier deterministic: the fresh
        per-seed FCT vectors must be byte-identical to the recording."""
        recorded = {c["name"]: c["packet_fcts"] for c in golden["cases"]}
        for case in fresh_report.cases:
            assert list(case.packet_fcts) == recorded[case.name], case.name


class TestFreshAgreement:
    def test_every_gated_cell_within_tolerance(self, fresh_report):
        for case in fresh_report.gated_cases:
            assert case.within(), (
                f"{case.name}: rel error {case.rel_median_error:.3f} "
                f"exceeds {TOLERANCE_REL_MEDIAN_FCT:.0%}")
        assert fresh_report.passed

    def test_no_systematic_bias(self, fresh_report):
        """Cliff's delta between the tiers' FCT vectors stays far from
        ±1 — the analytical tier is not uniformly on one side by a
        distribution-dominating margin."""
        assert abs(fresh_report.delta) < 1.0

    def test_suss_direction_matches_packet_tier(self, fresh_report):
        """Fig. 11/12 direction in both tiers: each SUSS cell beats its
        base cell within the same scenario/size."""
        by_name = {c.name: c for c in fresh_report.cases}
        for name, case in by_name.items():
            if not name.endswith("-suss"):
                continue
            base = by_name[name[: -len("suss")] + "base"]
            assert case.packet_median < base.packet_median, name
            assert case.analytical_fct < base.analytical_fct, name


class TestQuickCases:
    def test_quick_subset_of_default(self):
        quick = quick_cases()
        assert len(quick) >= 6
        default_names = {c.name for c in default_cases()}
        for case in quick:
            assert case.name in default_names
            assert case.seeds == (1,)

    def test_run_case_scores_one_cell(self):
        result = run_case(quick_cases()[0])
        assert result.packet_fcts
        assert result.rel_median_error >= 0.0
        assert result.within()


class TestPerturbedCells:
    def test_perturbed_cases_are_ungated(self):
        for case in perturbed_cases():
            assert not case.gated
            assert case.scenario_class in ("jitter", "bw_variation")

    def test_default_matrix_is_gated_and_clean(self):
        for case in default_cases():
            assert case.gated
            assert case.scenario_class == "clean"

    def test_ungated_cells_never_fail_the_gate(self, fresh_report):
        """passed must hold even if an informational cell exceeds the
        tolerance band (they quantify error, they don't gate)."""
        gated_ok = all(c.within(fresh_report.tolerance)
                       for c in fresh_report.gated_cases)
        assert fresh_report.passed == gated_ok


class TestRunCrossval:
    def test_empty_case_list_rejected(self):
        with pytest.raises(ValueError):
            run_crossval([])

    def test_all_ungated_rejected(self):
        with pytest.raises(ValueError):
            run_crossval(perturbed_cases())
