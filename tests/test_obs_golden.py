"""Golden-trace machinery + the committed-golden regression suite."""

import gzip

import pytest

from repro.experiments import goldens
from repro.obs.golden import (
    Divergence,
    digest_lines,
    first_divergence,
    load_digests,
    load_stream,
    save_golden,
    stored_schema,
    stream_path,
    trace_digest,
)
from repro.obs.records import SCHEMA_VERSION, TraceRecord


# ----------------------------------------------------------------------
# pure digest/diff machinery
# ----------------------------------------------------------------------
class TestDigests:
    def test_digest_lines_is_newline_terminated_sha256(self):
        import hashlib
        lines = ['{"a":1}', '{"b":2}']
        expected = hashlib.sha256(b'{"a":1}\n{"b":2}\n').hexdigest()
        assert digest_lines(lines) == expected

    def test_trace_digest_matches_line_digest(self):
        records = [TraceRecord(0.1, "pkt.send", 1, {"seq": 0}),
                   TraceRecord(0.2, "pkt.recv", 1, {"seq": 0})]
        assert trace_digest(records) == \
            digest_lines([r.to_line() for r in records])


class TestFirstDivergence:
    def test_identical_streams(self):
        assert first_divergence(["a", "b"], ["a", "b"]) is None

    def test_mid_stream_divergence(self):
        d = first_divergence(["a", "b", "c"], ["a", "X", "c"])
        assert d == Divergence(1, "b", "X")
        text = d.describe()
        assert "line 1" in text and "golden: b" in text and "actual: X" in text

    def test_actual_stream_longer(self):
        d = first_divergence(["a"], ["a", "extra"])
        assert d.index == 1 and d.golden is None
        assert "extra line" in d.describe()

    def test_actual_stream_shorter(self):
        d = first_divergence(["a", "b"], ["a"])
        assert d.index == 1 and d.actual is None
        assert "ended after 1 lines" in d.describe()


class TestGoldenStore:
    def test_save_and_load_roundtrip(self, tmp_path):
        lines = ['{"kind":"x","t":1}', '{"kind":"y","t":2}']
        digest = save_golden(tmp_path, "cubic+suss", lines)
        assert digest == digest_lines(lines)
        assert load_stream(tmp_path, "cubic+suss") == lines
        index = load_digests(tmp_path)
        assert index["cubic+suss"] == {"digest": digest, "records": 2}

    def test_stream_path_sanitizes_name(self, tmp_path):
        path = stream_path(tmp_path, "bbr+suss/wired")
        assert path.name == "bbr_suss_wired.jsonl.gz"

    def test_regeneration_is_byte_identical(self, tmp_path):
        lines = ['{"t":1}']
        save_golden(tmp_path, "run", lines)
        first = stream_path(tmp_path, "run").read_bytes()
        save_golden(tmp_path, "run", lines)
        assert stream_path(tmp_path, "run").read_bytes() == first

    def test_load_digests_missing_dir(self, tmp_path):
        assert load_digests(tmp_path / "nope") == {}

    def test_gzip_mtime_pinned(self, tmp_path):
        save_golden(tmp_path, "run", ['{"t":1}'])
        raw = stream_path(tmp_path, "run").read_bytes()
        # gzip header bytes 4-7 are the mtime field
        assert raw[4:8] == b"\x00\x00\x00\x00"


# ----------------------------------------------------------------------
# capture side + the actual regression suite against committed goldens
# ----------------------------------------------------------------------
class TestCapture:
    def test_update_goldens_rejects_unknown_name(self, tmp_path):
        with pytest.raises(KeyError, match="unknown golden run"):
            goldens.update_goldens(golden_dir=tmp_path, names=["nope"])

    def test_run_to_run_digest_stability(self):
        name = "cubic"
        assert goldens.capture_digest(name) == goldens.capture_digest(name)

    def test_update_goldens_writes_store(self, tmp_path):
        digests = goldens.update_goldens(golden_dir=tmp_path,
                                         names=["cubic"])
        index = load_digests(tmp_path)
        assert index["cubic"]["digest"] == digests["cubic"]
        assert gzip.open(stream_path(tmp_path, "cubic"), "rt").read()


def test_golden_store_schema_is_current():
    """The committed store must match the live record schema.

    A digest mismatch caused by a schema change is unexplainable from
    the line diff alone; this check names the real cause.
    """
    assert stored_schema(goldens.DEFAULT_GOLDEN_DIR) == SCHEMA_VERSION, (
        f"tests/golden was captured under record-schema "
        f"v{stored_schema(goldens.DEFAULT_GOLDEN_DIR)}, but the code is at "
        f"v{SCHEMA_VERSION}; run `python -m repro trace --update-golden`")


def test_save_golden_stamps_schema(tmp_path):
    save_golden(tmp_path, "run", ['{"t":1}'])
    assert stored_schema(tmp_path) == SCHEMA_VERSION
    # the schema marker never shadows a stream entry
    assert "_schema" not in load_digests(tmp_path)


def test_unmarked_store_reads_as_schema_v1(tmp_path):
    save_golden(tmp_path, "run", ['{"t":1}'])
    index_file = tmp_path / "digests.json"
    import json
    index = json.loads(index_file.read_text())
    del index["_schema"]
    index_file.write_text(json.dumps(index))
    assert stored_schema(tmp_path) == 1


def test_golden_streams_carry_resolvable_provenance():
    """Every committed record's peid must resolve inside the same stream."""
    lines = goldens.golden_stream("cubic+suss")
    records = [TraceRecord.from_line(line) for line in lines]
    eids = {record.eid for record in records}
    assert all(record.eid > 0 for record in records)
    for record in records:
        assert record.parent_eid == 0 or record.parent_eid in eids, (
            f"dangling peid {record.parent_eid} at t={record.time}")


@pytest.mark.parametrize("name", sorted(goldens.GOLDEN_RUNS))
def test_golden_trace_regression(name):
    """Fixed-seed runs must reproduce the committed trace digests.

    On mismatch, the stored stream turns the bare hash failure into a
    first-divergence report; refresh deliberately with
    ``python -m repro trace --update-golden``.
    """
    index = load_digests(goldens.DEFAULT_GOLDEN_DIR)
    assert name in index, (
        f"no committed golden for {name!r}; run "
        "`python -m repro trace --update-golden`")
    actual_lines = goldens.capture_lines(name)
    actual = digest_lines(actual_lines)
    expected = index[name]["digest"]
    if actual != expected:
        golden_lines = goldens.golden_stream(name)
        diff = first_divergence(golden_lines, actual_lines)
        pytest.fail(
            f"golden trace {name!r} changed "
            f"(expected {expected[:12]}…, got {actual[:12]}…)\n"
            f"{diff.describe() if diff else 'streams equal, digest bug?'}\n"
            "If intentional: python -m repro trace --update-golden")
    assert len(actual_lines) == index[name]["records"]
