"""Unit tests for the event log and CSV export."""

import io

import pytest

from repro.metrics import TimeSeries
from repro.trace import (
    EventLog,
    write_events,
    write_multi_timeseries,
    write_timeseries,
)


class TestEventLog:
    def test_record_and_filter(self):
        log = EventLog()
        log.record(0.1, 1, "send", seq=0)
        log.record(0.2, 2, "send", seq=100)
        log.record(0.3, 1, "drop")
        assert len(log) == 3
        assert len(log.filter(flow_id=1)) == 2
        assert len(log.filter(kind="send")) == 2
        assert len(log.filter(flow_id=1, kind="drop")) == 1

    def test_kinds(self):
        log = EventLog()
        log.record(0.0, 1, "b")
        log.record(0.0, 1, "a")
        assert log.kinds() == ["a", "b"]

    def test_fields_preserved(self):
        log = EventLog()
        log.record(0.0, 1, "g", growth=4)
        assert log.events[0].fields["growth"] == 4


class TestCsv:
    def test_timeseries_roundtrip(self):
        ts = TimeSeries("cwnd")
        ts.append(0.0, 1.0)
        ts.append(1.0, 2.0)
        out = io.StringIO()
        write_timeseries(out, ts, value_label="cwnd")
        lines = out.getvalue().strip().splitlines()
        assert lines[0] == "time,cwnd"
        assert len(lines) == 3

    def test_multi_timeseries_grid(self):
        a = TimeSeries("a")
        b = TimeSeries("b")
        a.append(0.0, 1.0)
        a.append(1.0, 2.0)
        b.append(0.5, 10.0)
        out = io.StringIO()
        write_multi_timeseries(out, {"a": a, "b": b}, interval=0.5)
        lines = out.getvalue().strip().splitlines()
        assert lines[0] == "time,a,b"
        # grid: 0.0, 0.5, 1.0
        assert len(lines) == 4

    def test_multi_requires_series(self):
        with pytest.raises(ValueError):
            write_multi_timeseries(io.StringIO(), {}, 0.5)
        a = TimeSeries()
        a.append(0, 1)
        with pytest.raises(ValueError):
            write_multi_timeseries(io.StringIO(), {"a": a}, 0.0)

    def test_events_with_fields(self):
        log = EventLog()
        log.record(0.25, 3, "growth", g=4, round=2)
        out = io.StringIO()
        write_events(out, log, field_names=["g", "round"])
        lines = out.getvalue().strip().splitlines()
        assert lines[0] == "time,flow_id,kind,g,round"
        assert lines[1] == "0.250000,3,growth,4,2"
