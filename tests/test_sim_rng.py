"""Unit tests for seeded RNG streams."""

from repro.sim import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "loss") == derive_seed(42, "loss")

    def test_name_separates_streams(self):
        assert derive_seed(42, "loss") != derive_seed(42, "jitter")

    def test_seed_separates_streams(self):
        assert derive_seed(1, "loss") != derive_seed(2, "loss")

    def test_is_64_bit(self):
        assert 0 <= derive_seed(7, "x") < 2 ** 64


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(0)
        assert reg.stream("a") is reg.stream("a")

    def test_reproducible_across_registries(self):
        a = RngRegistry(5).stream("jitter")
        b = RngRegistry(5).stream("jitter")
        assert [a.random() for _ in range(10)] == \
               [b.random() for _ in range(10)]

    def test_streams_independent(self):
        reg = RngRegistry(5)
        jitter = reg.stream("jitter")
        # Drawing from one stream must not perturb another.
        before = RngRegistry(5).stream("loss").random()
        for _ in range(100):
            jitter.random()
        after = reg.stream("loss").random()
        assert before == after

    def test_reseed_clears(self):
        reg = RngRegistry(1)
        first = reg.stream("x").random()
        reg.reseed(2)
        second = reg.stream("x").random()
        assert first != second
