"""Unit and property tests for SUSS growth-factor theory (paper Section 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.growth import (
    condition1,
    condition2,
    estimate_ack_train,
    growth_factor,
    predict_mo_rtt,
)


class TestEstimateAckTrain:
    def test_eq9_scaling(self):
        # Data train twice its blue part -> full train twice the blue train.
        assert estimate_ack_train(0.01, 2000, 1000) == pytest.approx(0.02)

    def test_all_blue_is_identity(self):
        assert estimate_ack_train(0.015, 5000, 5000) == pytest.approx(0.015)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_ack_train(0.01, 1000, 0)
        with pytest.raises(ValueError):
            estimate_ack_train(0.01, 500, 1000)
        with pytest.raises(ValueError):
            estimate_ack_train(-0.01, 1000, 1000)

    @given(st.floats(0, 1, allow_nan=False), st.integers(1, 10 ** 9),
           st.integers(1, 10 ** 9))
    def test_monotone_in_ratio(self, dt, train, blue):
        if blue > train:
            train, blue = blue, train
        est = estimate_ack_train(dt, train, blue)
        assert est >= dt - 1e-12  # scaling never shrinks the estimate


class TestPredictMoRtt:
    def test_eq7_single_round(self):
        # minRTT 100 ms, observed 110 ms, updated 2 rounds ago:
        # +5 ms per round -> 115 ms next round.
        assert predict_mo_rtt(0.110, 0.100, r=2) == pytest.approx(0.115)

    def test_eq18_k_rounds(self):
        assert predict_mo_rtt(0.110, 0.100, r=2, k=3) == pytest.approx(0.125)

    def test_r_zero_rejected(self):
        with pytest.raises(ValueError):
            predict_mo_rtt(0.11, 0.1, r=0)

    def test_no_queue_trend_is_flat(self):
        assert predict_mo_rtt(0.1, 0.1, r=3, k=5) == pytest.approx(0.1)


class TestCondition1:
    def test_eq6_quadrupling_threshold(self):
        """Condition 1 at k=1 is Eq. 6: dt_at <= minRTT / 4."""
        assert condition1(0.024, 0.1, k=1)
        assert not condition1(0.026, 0.1, k=1)

    def test_k0_is_hystart_threshold(self):
        assert condition1(0.049, 0.1, k=0)
        assert not condition1(0.051, 0.1, k=0)

    def test_deeper_lookahead_is_stricter(self):
        dt = 0.02
        results = [condition1(dt, 0.1, k=k) for k in range(5)]
        # Once False, stays False.
        assert results == sorted(results, reverse=True)

    def test_invalid_min_rtt(self):
        with pytest.raises(ValueError):
            condition1(0.01, 0.0, k=1)


class TestCondition2:
    def test_eq8_threshold(self):
        # moRTT=110ms, minRTT=100ms, r=1: predicted 120ms <= 112.5? No.
        assert not condition2(0.110, 0.100, r=1, k=1)
        # moRTT=105ms: predicted 110ms <= 112.5 -> yes.
        assert condition2(0.105, 0.100, r=1, k=1)

    def test_r_zero_always_true(self):
        assert condition2(10.0, 0.1, r=0, k=1)

    def test_larger_k_stricter(self):
        assert condition2(0.105, 0.100, r=1, k=1)
        assert not condition2(0.105, 0.100, r=1, k=3)


class TestAlgorithm1:
    def test_traditional_when_train_too_long(self):
        assert growth_factor(dt_at=0.03, mo_rtt=0.1, min_rtt=0.1, r=1) == 2

    def test_quadruple_when_both_hold(self):
        assert growth_factor(dt_at=0.02, mo_rtt=0.1, min_rtt=0.1, r=1) == 4

    def test_k_max_caps_growth(self):
        # A tiny ACK train would justify G=16, but k_max=1 limits to 4.
        assert growth_factor(dt_at=0.001, mo_rtt=0.1, min_rtt=0.1, r=1,
                             k_max=1) == 4
        assert growth_factor(dt_at=0.001, mo_rtt=0.1, min_rtt=0.1, r=1,
                             k_max=3) == 16

    def test_condition2_vetoes(self):
        # Queueing trend: moRTT already 12% above minRTT, growing.
        assert growth_factor(dt_at=0.01, mo_rtt=0.112, min_rtt=0.1,
                             r=1) == 2

    def test_unknown_mo_rtt_conservative(self):
        assert growth_factor(dt_at=0.01, mo_rtt=None, min_rtt=0.1, r=2) == 2

    def test_unknown_mo_rtt_with_fresh_min(self):
        # r == 0: Condition 2 holds by definition (Algorithm 1, line 3).
        assert growth_factor(dt_at=0.01, mo_rtt=None, min_rtt=0.1, r=0) == 4

    def test_k_max_zero_disables_suss(self):
        assert growth_factor(dt_at=0.0001, mo_rtt=0.1, min_rtt=0.1, r=0,
                             k_max=0) == 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            growth_factor(0.01, 0.1, 0.1, r=1, k_max=-1)
        with pytest.raises(ValueError):
            growth_factor(0.01, 0.1, 0.0, r=1)

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           st.floats(min_value=1e-4, max_value=1.0, allow_nan=False),
           st.floats(min_value=1e-4, max_value=2.0, allow_nan=False),
           st.integers(min_value=0, max_value=10),
           st.integers(min_value=0, max_value=6))
    def test_growth_is_power_of_two_within_bounds(self, dt, min_rtt, mo_rtt,
                                                  r, k_max):
        g = growth_factor(dt, mo_rtt, min_rtt, r, k_max)
        assert g >= 2
        assert g <= 2 ** (k_max + 1)
        assert g & (g - 1) == 0  # power of two

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           st.floats(min_value=1e-4, max_value=1.0, allow_nan=False),
           st.integers(min_value=0, max_value=10))
    def test_growth_monotone_in_k_max(self, dt, min_rtt, r):
        gs = [growth_factor(dt, min_rtt, min_rtt, r, k_max=k)
              for k in range(5)]
        assert gs == sorted(gs)

    @given(st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
           st.floats(min_value=1e-4, max_value=1.0, allow_nan=False))
    def test_shorter_train_never_reduces_growth(self, dt, min_rtt):
        g_long = growth_factor(dt, min_rtt, min_rtt, r=0, k_max=4)
        g_short = growth_factor(dt / 2, min_rtt, min_rtt, r=0, k_max=4)
        assert g_short >= g_long
